"""Legacy setup shim.

The project metadata lives in pyproject.toml; this file only exists so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package required by PEP 660 editable installs.
"""

from setuptools import setup

setup()
