#!/usr/bin/env python
"""Smoke-execute the README's fenced ``bash`` blocks.

The README quickstart rotted once before (it stopped at PR 2 while the tree
grew four more subsystems), so CI now runs what the README shows: every
fenced ```` ```bash ```` block is extracted and executed from the repository
root with ``bash -euo pipefail`` and ``PYTHONPATH=src`` on the environment.
A block preceded (within two lines) by an HTML comment ``<!-- docs-ci:
skip -->`` is listed but not run — use it for commands that genuinely
cannot run headless, not as an escape hatch for slow ones.

Usage::

    python tools/check_readme.py              # run all bash blocks
    python tools/check_readme.py --list       # show what would run
    python tools/check_readme.py --file DESIGN.md
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

SKIP_MARKER = "<!-- docs-ci: skip -->"
_FENCE = re.compile(r"^```(\w*)\s*$")


def extract_bash_blocks(text: str) -> List[Tuple[int, str, bool]]:
    """Return ``(start_line, block_source, skipped)`` for every bash fence."""
    blocks: List[Tuple[int, str, bool]] = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        match = _FENCE.match(lines[index])
        if match and match.group(1) == "bash":
            start = index + 1
            skipped = any(
                SKIP_MARKER in lines[back]
                for back in range(max(0, index - 2), index)
            )
            body: List[str] = []
            index += 1
            while index < len(lines) and not _FENCE.match(lines[index]):
                body.append(lines[index])
                index += 1
            blocks.append((start, "\n".join(body), skipped))
        index += 1
    return blocks


def run_block(source: str, timeout_s: float) -> int:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    try:
        process = subprocess.run(
            ["bash", "-euo", "pipefail", "-c", source],
            cwd=REPO_ROOT,
            env=env,
            timeout=timeout_s,
        )
    except subprocess.TimeoutExpired:
        # A hanging block is a failure of that block, not of the checker:
        # report it like any nonzero exit and keep running the rest.
        print(f"    ... timed out after {timeout_s:.0f}s")
        return 124
    return process.returncode


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--file", default="README.md", help="markdown file to check")
    parser.add_argument("--list", action="store_true", help="list blocks, run nothing")
    parser.add_argument(
        "--timeout", type=float, default=1800.0, help="per-block timeout in seconds"
    )
    args = parser.parse_args(argv)

    path = REPO_ROOT / args.file
    blocks = extract_bash_blocks(path.read_text())
    if not blocks:
        print(f"{args.file}: no fenced bash blocks found")
        return 1

    failures = 0
    for number, (line, source, skipped) in enumerate(blocks, start=1):
        header = f"[{number}/{len(blocks)}] {args.file}:{line}"
        if args.list or skipped:
            status = "SKIP (marker)" if skipped else "would run"
            print(f"{header} — {status}:")
            for command in source.splitlines():
                print(f"    {command}")
            continue
        print(f"{header} — running:")
        for command in source.splitlines():
            print(f"    {command}")
        started = time.monotonic()
        returncode = run_block(source, timeout_s=args.timeout)
        elapsed = time.monotonic() - started
        verdict = "ok" if returncode == 0 else f"FAILED (rc={returncode})"
        print(f"{header} — {verdict} in {elapsed:.1f}s\n")
        if returncode != 0:
            failures += 1
    if failures:
        print(f"{failures} block(s) failed — the {args.file} quickstart has rotted")
        return 1
    print(f"all {len(blocks)} bash block(s) in {args.file} passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
