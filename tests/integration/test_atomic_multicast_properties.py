"""End-to-end correctness: all three protocols, random workloads, full checker.

These tests are the strongest safety net in the suite: they run each protocol
on the simulated WAN with randomized destination sets and adversarial
latencies, and validate every atomic multicast property from §2.2 on the
recorded delivery traces.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.checker import check_genuineness, check_trace
from repro.core.flexcast import FlexCastProtocol
from repro.core.message import ClientRequest, ClientResponse, Message, PAYLOAD_KINDS
from repro.overlay.builders import build_complete, build_o1, build_t1
from repro.protocols.base import RecordingSink
from repro.protocols.hierarchical import HierarchicalProtocol
from repro.protocols.skeen import SkeenProtocol
from repro.sim.events import EventLoop
from repro.sim.latencies import aws_latency_matrix
from repro.sim.network import Network
from repro.sim.transport import SimTransport

LATENCIES = aws_latency_matrix()


def deploy(protocol, jitter_ms=3.0, seed=0):
    """Deploy a protocol on the simulated WAN; returns (loop, network, groups, sink)."""
    loop = EventLoop()
    network = Network(loop, LATENCIES, jitter_ms=jitter_ms, seed=seed)
    sink = RecordingSink(clock=lambda: loop.now)
    groups = {}
    for gid in protocol.groups:
        transport = SimTransport(network, gid)
        group = protocol.create_group(gid, transport, sink)
        groups[gid] = group
        network.register(gid, site=gid, handler=group.on_envelope)
    return loop, network, groups, sink


def submit_random_workload(protocol, loop, network, seed, num_messages=60, spread_ms=400.0):
    """Multicast random global messages from a registered pseudo-client."""
    rng = random.Random(seed)
    network.register("client", site=rng.randrange(12), handler=lambda s, p: None)
    messages = []
    for i in range(num_messages):
        size = rng.choice([2, 2, 2, 3])
        dst = rng.sample(range(12), size)
        message = Message.create(dst, sender="client", msg_id=f"x{seed}-{i}")
        messages.append(message)
        delay = rng.uniform(0, spread_ms)
        for entry in protocol.entry_groups(message):
            loop.schedule(
                delay,
                lambda entry=entry, message=message: network.send(
                    "client", entry, ClientRequest(message=message)
                ),
            )
    return messages


PROTOCOL_BUILDERS = {
    "flexcast": lambda: FlexCastProtocol(build_o1(LATENCIES)),
    "hierarchical": lambda: HierarchicalProtocol(build_t1(LATENCIES)),
    "distributed": lambda: SkeenProtocol(build_complete(LATENCIES)),
}


class TestSafetyProperties:
    @pytest.mark.parametrize("name", sorted(PROTOCOL_BUILDERS))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_workload_satisfies_all_properties(self, name, seed):
        protocol = PROTOCOL_BUILDERS[name]()
        loop, network, groups, sink = deploy(protocol, seed=seed)
        messages = submit_random_workload(protocol, loop, network, seed)
        loop.run_until_idle()
        check_trace(sink, messages, expect_all_delivered=True).raise_if_failed()

    @pytest.mark.parametrize("seed", [4, 5])
    def test_flexcast_is_genuine_under_random_workloads(self, seed):
        protocol = PROTOCOL_BUILDERS["flexcast"]()
        loop, network, groups, sink = deploy(protocol, seed=seed)
        submit_random_workload(protocol, loop, network, seed)
        loop.run_until_idle()
        payload_received = {
            gid: sum(
                count
                for kind, count in network.traffic(gid).received_by_kind.items()
                if kind in PAYLOAD_KINDS
            )
            for gid in protocol.groups
        }
        delivered = {gid: groups[gid].delivered_count for gid in protocol.groups}
        check_genuineness(payload_received, delivered, protocol.groups).raise_if_failed()

    @pytest.mark.parametrize("seed", [6])
    def test_hierarchical_is_not_genuine_under_the_same_workload(self, seed):
        protocol = PROTOCOL_BUILDERS["hierarchical"]()
        loop, network, groups, sink = deploy(protocol, seed=seed)
        submit_random_workload(protocol, loop, network, seed)
        loop.run_until_idle()
        payload_received = {
            gid: sum(
                count
                for kind, count in network.traffic(gid).received_by_kind.items()
                if kind in PAYLOAD_KINDS
            )
            for gid in protocol.groups
        }
        delivered = {gid: groups[gid].delivered_count for gid in protocol.groups}
        assert not check_genuineness(payload_received, delivered, protocol.groups).ok


class TestHypothesisDrivenOrdering:
    @given(
        destinations=st.lists(
            st.sets(st.integers(0, 5), min_size=2, max_size=3), min_size=5, max_size=20
        ),
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_flexcast_prefix_and_acyclic_order_hold_for_arbitrary_destination_sets(
        self, destinations, data
    ):
        protocol = FlexCastProtocol(build_o1(LATENCIES))
        seed = data.draw(st.integers(0, 1_000))
        loop, network, groups, sink = deploy(protocol, seed=seed)
        network.register("client", site=0, handler=lambda s, p: None)
        messages = []
        rng = random.Random(seed)
        for i, dst in enumerate(destinations):
            message = Message.create(dst, sender="client", msg_id=f"h{seed}-{i}")
            messages.append(message)
            entry = protocol.entry_groups(message)[0]
            loop.schedule(
                rng.uniform(0, 200.0),
                lambda entry=entry, message=message: network.send(
                    "client", entry, ClientRequest(message=message)
                ),
            )
        loop.run_until_idle()
        check_trace(sink, messages, expect_all_delivered=True).raise_if_failed()

    #: The hypothesis-found witness (PR 9): three messages whose pairs each
    #: share exactly ONE group get their pairwise orders decided at three
    #: independent groups, which closed a 3-cycle the pivot guard never saw
    #: (h-8 < h-3 at group 4, h-3 < h-5 at group 5, h-5 < h-8 at group 3).
    THREE_CYCLE_DESTINATIONS = [
        {0, 1}, {0, 1}, {0, 1}, {2, 4, 5}, {0, 5},
        {3, 5}, {0, 1}, {0, 1}, {1, 3, 4},
    ]

    def _run_three_cycle_witness(self, conflict_shapes):
        seed = 0
        protocol = FlexCastProtocol(
            build_o1(LATENCIES), conflict_shapes=conflict_shapes
        )
        loop, network, groups, sink = deploy(protocol, seed=seed)
        network.register("client", site=0, handler=lambda s, p: None)
        messages = []
        rng = random.Random(seed)
        for i, dst in enumerate(self.THREE_CYCLE_DESTINATIONS):
            message = Message.create(dst, sender="client", msg_id=f"h{seed}-{i}")
            messages.append(message)
            entry = protocol.entry_groups(message)[0]
            loop.schedule(
                rng.uniform(0, 200.0),
                lambda entry=entry, message=message: network.send(
                    "client", entry, ClientRequest(message=message)
                ),
            )
        loop.run_until_idle()
        return check_trace(sink, messages, expect_all_delivered=True)

    def test_single_shared_group_three_cycle_counterexample(self):
        """Deterministic replay of a hypothesis-found acyclic-order violation,
        closed by the conflict-scoped order claims (ISSUE 10; was xfail)."""
        shapes = [frozenset(d) for d in self.THREE_CYCLE_DESTINATIONS]
        self._run_three_cycle_witness(shapes).raise_if_failed()

    def test_three_cycle_witness_still_fails_without_order_claims(self):
        """The same schedule on the claim-free protocol still closes the
        cycle — pinning that the hole was real and the claims fix it."""
        report = self._run_three_cycle_witness(None)
        assert not report.ok
        assert any("[acyclic-order]" in str(v) for v in report.violations)
