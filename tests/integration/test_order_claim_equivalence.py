"""Differential equivalence: order claims are invisible off the hot path.

The conflict-scoped order claims (ISSUE 10) must cost nothing — not even a
changed tiebreak — for workloads that cannot form a single-shared-group
pair: claims only activate for conflict components containing a pair of
declared shapes intersecting in exactly one group, and a scenario with no
such pair has no hot component, no timestamp authority, and therefore the
*identical* delivery schedule as the legacy claim-free protocol.

These tests pin that as a bit-identity: per-group delivery sequences from
``order_claims=False`` and the (claims-on) harness default must be equal,
element for element.  The harness adds the all-groups shape (GC flushes,
epoch barriers) to the declared universe, so the scenarios below are built
so no shape pair — including against the full-order shape — meets at
exactly one group.
"""

import pytest

from repro.core.flexcast import _hot_conflict_groups
from repro.fuzz import FuzzScenario, Submission, run_scenario
from repro.fuzz.harness import scenario_conflict_shapes
from repro.fuzz.strategies import single_shared_pairs


def _scenario(name, order, dsts, **kwargs):
    submissions = tuple(
        Submission(at_ms=round(3.7 * i, 1), msg_id=f"{name}-{i}", dst=dst)
        for i, dst in enumerate(dsts)
    )
    return FuzzScenario(
        name=name, order=order, submissions=submissions, **kwargs
    )


#: Workloads whose destination shapes pairwise intersect in 0 or >= 2 groups
#: (the full-order shape included): disjoint traffic, nested shapes, and
#: repeated identical shapes — the common production patterns.
COLD_SCENARIOS = [
    _scenario(
        "disjoint-pairs",
        (0, 1, 2, 3),
        [(0, 1), (2, 3), (0, 1), (2, 3), (0, 1), (2, 3)],
    ),
    _scenario(
        "nested-shapes",
        (0, 1, 2, 3),
        [(0, 1), (0, 1, 2, 3), (2, 3), (0, 1), (0, 1, 2, 3), (2, 3)],
    ),
    _scenario(
        "identical-shapes",
        (0, 1, 2),
        [(0, 1, 2)] * 5,
        jitter_ms=4.0,
        net_seed=11,
    ),
    _scenario(
        "gc-flush-traffic",
        (0, 1, 2, 3),
        [(0, 1), (0, 1, 2, 3), (0, 1)] * 3,
        gc_interval_ms=25.0,
    ),
]


@pytest.mark.parametrize(
    "scenario", COLD_SCENARIOS, ids=lambda s: s.name
)
class TestColdWorkloadsAreBitIdentical:
    def test_no_single_shared_pair_by_construction(self, scenario):
        assert single_shared_pairs(scenario) == []

    def test_no_hot_component(self, scenario):
        shapes = list(scenario_conflict_shapes(scenario))
        assert _hot_conflict_groups(shapes) == frozenset()

    def test_sequences_identical_with_and_without_claims(self, scenario):
        with_claims = run_scenario(scenario)
        without = run_scenario(scenario, order_claims=False)
        assert with_claims.strict_ok, (
            with_claims.violations + with_claims.ordering_anomalies
        )
        assert without.strict_ok
        assert with_claims.sequences == without.sequences
        assert with_claims.delivered == without.delivered


class TestHotWorkloadStaysDifferent:
    def test_single_shared_pair_activates_the_authority(self):
        """Control for the suite above: with a single-shared pair present
        the hot component is non-empty, so the bit-identity tests really
        are exercising the cold path and not a disabled feature."""
        scenario = _scenario(
            "hot-control", (0, 1, 2), [(0, 1), (1, 2), (0, 2)]
        )
        shapes = list(scenario_conflict_shapes(scenario))
        assert _hot_conflict_groups(shapes) != frozenset()
