"""Qualitative trends from the paper's evaluation, checked on scaled-down runs.

These assertions encode the *shape* of the paper's results (who wins where),
not absolute numbers — see EXPERIMENTS.md for the quantitative comparison.
"""

import pytest

from repro.experiments.config import (
    distributed_config,
    flexcast_config,
    hierarchical_config,
)
from repro.experiments.runner import run_experiment
from repro.metrics.stats import percentile

SCALE = dict(num_clients=24, duration_ms=2500.0, seed=2)


@pytest.fixture(scope="module")
def results():
    """One run per protocol at 90% locality (shared across trend tests)."""
    return {
        "flexcast": run_experiment(flexcast_config(locality=0.90, **SCALE)),
        "hierarchical": run_experiment(hierarchical_config(locality=0.90, **SCALE)),
        "distributed": run_experiment(distributed_config(locality=0.90, **SCALE)),
    }


def median_latency(result, rank):
    samples = result.latency.latencies_for_destination(rank)
    return percentile(samples, 50) if samples else None


class TestLatencyTrends:
    def test_flexcast_fastest_at_first_destination(self, results):
        """§5.6: FlexCast outperforms both baselines at the 1st destination."""
        flexcast = median_latency(results["flexcast"], 1)
        hierarchical = median_latency(results["hierarchical"], 1)
        distributed = median_latency(results["distributed"], 1)
        assert flexcast < hierarchical
        assert flexcast < distributed

    def test_flexcast_beats_distributed_at_second_destination(self, results):
        """§5.6: at the 2nd destination FlexCast still beats the distributed
        protocol (the hierarchical protocol may win there)."""
        assert median_latency(results["flexcast"], 2) < median_latency(results["distributed"], 2)

    def test_all_protocols_complete_their_workloads(self, results):
        for result in results.values():
            assert result.completed == result.issued > 0


class TestOverheadTrends:
    def test_only_the_hierarchical_protocol_has_overhead(self, results):
        """§5.8: genuine protocols have zero communication overhead."""
        assert results["flexcast"].overhead.mean_percent == pytest.approx(0.0, abs=1e-9)
        assert results["distributed"].overhead.mean_percent == pytest.approx(0.0, abs=1e-9)
        assert results["hierarchical"].overhead.mean_percent > 1.0

    def test_hierarchical_leaves_have_no_overhead(self, results):
        """§5.8: leaf groups always deliver what they receive."""
        from repro.overlay.builders import build_t1
        from repro.sim.latencies import aws_latency_matrix

        tree = build_t1(aws_latency_matrix())
        overhead = results["hierarchical"].overhead
        for group in tree.groups:
            if tree.is_leaf(group):
                assert overhead.overhead_percent(group) == pytest.approx(0.0, abs=1e-9)

    def test_hierarchical_overhead_decreases_with_locality(self):
        """Table 4 trend: T1's mean overhead shrinks as locality grows."""
        low = run_experiment(hierarchical_config(locality=0.90, **SCALE))
        high = run_experiment(hierarchical_config(locality=0.99, **SCALE))
        assert high.overhead.mean_percent < low.overhead.mean_percent


class TestLocalitySensitivity:
    def test_flexcast_first_destination_latency_improves_with_locality(self):
        """§5.6: FlexCast is the protocol most sensitive to locality."""
        low = run_experiment(flexcast_config(locality=0.90, **SCALE))
        high = run_experiment(flexcast_config(locality=0.99, **SCALE))
        assert median_latency(high, 1) <= median_latency(low, 1) * 1.05
