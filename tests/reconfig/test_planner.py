"""Unit tests for the workload-aware overlay planner."""

from repro.overlay.builders import home_ranked_order, traffic_weighted_order
from repro.reconfig.monitor import WorkloadMonitor
from repro.reconfig.planner import Planner
from repro.sim.latencies import clustered_latency_matrix


def two_clusters():
    # Sites 0-2 in cluster 0, sites 3-5 in cluster 1, 100 ms apart.
    return clustered_latency_matrix((3, 3), intra_ms=5.0, inter_ms=100.0)


def shifted_snapshot(samples=50):
    """Traffic homed in cluster 1 pairing with cluster-0 groups."""
    monitor = WorkloadMonitor(window_ms=1e9)
    for i in range(samples):
        monitor.observe(4, {4, i % 2}, at=float(i))
    return monitor.snapshot()


class TestCostModel:
    def test_home_as_lca_is_cheaper(self):
        planner = Planner(two_clusters())
        workload = {(4, frozenset({4, 0})): 1}
        stale = planner.predicted_cost([0, 1, 2, 3, 4, 5], workload)
        tuned = planner.predicted_cost([4, 5, 3, 0, 1, 2], workload)
        # Stale: the client pays a WAN hop to reach its lca before anything
        # is delivered; tuned: the home delivers immediately.
        assert tuned < stale * 0.6

    def test_ack_wait_makes_spread_middle_destination_expensive(self):
        planner = Planner(two_clusters())
        workload = {(0, frozenset({0, 1, 4})): 1}
        # Ranking the far group between the two near ones forces the top
        # destination to wait for the far ack.
        spread = planner.predicted_cost([0, 4, 1, 2, 3, 5], workload)
        tight = planner.predicted_cost([0, 1, 4, 2, 3, 5], workload)
        assert tight <= spread

    def test_empty_workload_costs_zero(self):
        planner = Planner(two_clusters())
        assert planner.predicted_cost([0, 1, 2, 3, 4, 5], {}) == 0.0


class TestPlanning:
    def test_proposes_switch_for_shifted_workload(self):
        planner = Planner(two_clusters(), min_samples=10, improvement_threshold=0.10)
        plan = planner.plan([0, 1, 2, 3, 4, 5], shifted_snapshot())
        assert plan is not None
        # The new order must make the observed home the lca of its own pairs.
        assert plan.order[0] == 4
        assert plan.improvement >= 0.3

    def test_no_plan_without_enough_samples(self):
        planner = Planner(two_clusters(), min_samples=100)
        assert planner.plan([0, 1, 2, 3, 4, 5], shifted_snapshot(samples=20)) is None

    def test_plan_for_subset_deployment_is_a_permutation_of_it(self):
        """A deployment covering only part of the latency matrix must still
        get valid (projected) orders, never a full-site order."""
        planner = Planner(two_clusters(), min_samples=10)
        current = [0, 1, 4, 5]  # 4 deployed groups on the 6-site matrix
        monitor = WorkloadMonitor(window_ms=1e9)
        for i in range(50):
            monitor.observe(4, {4, i % 2}, at=float(i))
        plan = planner.plan(current, monitor.snapshot())
        assert plan is not None
        assert set(plan.order) == set(current)
        assert plan.order[0] == 4

    def test_no_plan_when_current_overlay_already_fits(self):
        planner = Planner(two_clusters(), min_samples=10)
        monitor = WorkloadMonitor(window_ms=1e9)
        for i in range(50):
            monitor.observe(0, {0, 1 + (i % 2)}, at=float(i))
        # The current order already ranks home 0 first.
        assert planner.plan([0, 1, 2, 3, 4, 5], monitor.snapshot()) is None


class TestCandidateBuilders:
    def test_traffic_weighted_order_pulls_hot_pair_adjacent(self):
        latencies = two_clusters()
        # Sites 0 and 4 talk constantly; pure latency would keep them apart.
        weights = {frozenset({0, 4}): 100.0}
        order = traffic_weighted_order(latencies, weights, seed=0, alpha=50.0)
        assert abs(order.index(0) - order.index(4)) == 1

    def test_traffic_weighted_order_without_traffic_is_pure_latency(self):
        from repro.overlay.builders import nearest_neighbour_order

        latencies = two_clusters()
        assert traffic_weighted_order(latencies, {}, seed=2) == (
            nearest_neighbour_order(latencies, 2)
        )

    def test_home_ranked_order_puts_busiest_home_first(self):
        latencies = two_clusters()
        order = home_ranked_order(latencies, {4: 10.0, 5: 3.0})
        assert order[0] == 4
        assert order[1] == 5
        assert set(order) == set(range(6))
