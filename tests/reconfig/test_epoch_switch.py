"""Epoch state machine tests: group-level behaviour and a live mid-traffic
switch on the deterministic simulator, checker-verified across the boundary."""

import pytest

from repro.checker.properties import check_epochs, check_trace
from repro.core.message import (
    ClientRequest,
    EMPTY_DELTA,
    EpochBounce,
    EpochPrepare,
    EpochPrepareAck,
    EpochSwitch,
    EpochSwitchAck,
    FlexCastMsg,
    HistoryDelta,
    Message,
    QuiesceQuery,
    QuiesceReply,
)
from repro.core.flexcast import FlexCastGroup
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import ProtocolError, RecordingSink
from repro.reconfig.coordinator import EpochCoordinator
from repro.reconfig.group import (
    ReconfigurableFlexCastGroup,
    ReconfigurableFlexCastProtocol,
)
from repro.sim.events import EventLoop
from repro.sim.latencies import clustered_latency_matrix
from repro.sim.network import Network
from repro.sim.transport import RecordingTransport, SimTransport

COORD = "coord"


def make_group(gid=0, order=(0, 1, 2)):
    transport = RecordingTransport(gid)
    sink = RecordingSink()
    group = ReconfigurableFlexCastGroup(
        gid, CDagOverlay(list(order)), transport, sink
    )
    return group, transport, sink


def sent_kinds(transport, dst):
    return [type(p).__name__ for p in transport.sent_to(dst)]


class TestGroupEpochMachine:
    def test_prepare_acks_and_parks_client_requests(self):
        group, transport, sink = make_group()
        group.on_envelope(COORD, EpochPrepare(new_epoch=1, reply_to=COORD))
        assert group.quiescing
        acks = [p for p in transport.sent_to(COORD) if isinstance(p, EpochPrepareAck)]
        assert acks and acks[0].new_epoch == 1
        group.on_envelope(
            "client", ClientRequest(message=Message(msg_id="m1", dst=frozenset({0})))
        )
        assert sink.sequence(0) == []  # parked, not delivered
        assert group.stats["requests_parked"] == 1

    def test_announced_barrier_bypasses_parking(self):
        group, transport, sink = make_group()
        group.on_envelope(
            COORD, EpochPrepare(new_epoch=1, reply_to=COORD, barrier_id="b1")
        )
        barrier = Message(msg_id="b1", dst=frozenset({0, 1, 2}), is_flush=True)
        group.on_envelope(COORD, ClientRequest(message=barrier))
        assert sink.sequence(0) == ["b1"]  # the epoch barrier must drain

    def test_other_flushes_park_while_quiescing(self):
        """Only the announced barrier passes: a periodic GC flush slipping in
        after the drain would be delivered under two different epochs."""
        group, transport, sink = make_group()
        group.on_envelope(
            COORD, EpochPrepare(new_epoch=1, reply_to=COORD, barrier_id="b1")
        )
        gc_flush = Message(msg_id="f1", dst=frozenset({0, 1, 2}), is_flush=True)
        group.on_envelope("flush-coordinator", ClientRequest(message=gc_flush))
        assert sink.sequence(0) == []
        assert group.stats["requests_parked"] == 1
        group.on_envelope(
            COORD, EpochSwitch(new_epoch=1, order=(0, 1, 2), reply_to=COORD)
        )
        assert sink.sequence(0) == ["f1"]  # replayed in the new epoch

    def test_switch_releases_parked_requests(self):
        group, transport, sink = make_group()
        group.on_envelope(COORD, EpochPrepare(new_epoch=1, reply_to=COORD))
        group.on_envelope(
            "client", ClientRequest(message=Message(msg_id="m1", dst=frozenset({0})))
        )
        group.on_envelope(
            COORD, EpochSwitch(new_epoch=1, order=(0, 1, 2), reply_to=COORD)
        )
        assert group.epoch == 1
        assert not group.quiescing
        assert sink.sequence(0) == ["m1"]
        acks = [p for p in transport.sent_to(COORD) if isinstance(p, EpochSwitchAck)]
        assert acks and acks[-1].epoch == 1

    def test_switch_reroutes_parked_request_to_new_lca(self):
        group, transport, sink = make_group(gid=0, order=(0, 1, 2))
        group.on_envelope(COORD, EpochPrepare(new_epoch=1, reply_to=COORD))
        request = ClientRequest(message=Message(msg_id="m1", dst=frozenset({0, 1})))
        group.on_envelope("client", request)
        # Under the new order group 1 outranks group 0: the lca moved.
        group.on_envelope(
            COORD, EpochSwitch(new_epoch=1, order=(1, 0, 2), reply_to=COORD)
        )
        assert sink.sequence(0) == []
        forwarded = [p for p in transport.sent_to(1) if isinstance(p, ClientRequest)]
        assert [f.message.msg_id for f in forwarded] == ["m1"]
        assert group.stats["requests_rerouted"] == 1

    def test_stale_epoch_envelope_bounced_not_processed(self):
        group, transport, sink = make_group(gid=2, order=(0, 1, 2))
        group.on_envelope(COORD, EpochPrepare(new_epoch=1, reply_to=COORD))
        group.on_envelope(
            COORD, EpochSwitch(new_epoch=1, order=(0, 1, 2), reply_to=COORD)
        )
        stale = FlexCastMsg(
            message=Message(msg_id="m1", dst=frozenset({0, 2})),
            history=EMPTY_DELTA,
            epoch=0,
        )
        group.on_envelope(0, stale)
        assert sink.sequence(2) == []
        bounces = [p for p in transport.sent_to(0) if isinstance(p, EpochBounce)]
        assert bounces and bounces[0].message.msg_id == "m1" and bounces[0].epoch == 1
        assert group.stats["stale_bounced"] == 1

    def test_stale_bounce_counts_envelope_as_received(self):
        """A bounced envelope left the wire: it must appear in the received
        counters or every later drain's sent/received equality check would
        stay unsatisfiable forever."""
        group, transport, sink = make_group(gid=2, order=(0, 1, 2))
        group.on_envelope(COORD, EpochPrepare(new_epoch=1, reply_to=COORD))
        group.on_envelope(
            COORD, EpochSwitch(new_epoch=1, order=(0, 1, 2), reply_to=COORD)
        )
        before = group.stats["msgs_received"]
        group.on_envelope(
            0,
            FlexCastMsg(
                message=Message(msg_id="m1", dst=frozenset({0, 2})),
                history=EMPTY_DELTA,
                epoch=0,
            ),
        )
        assert group.stats["msgs_received"] == before + 1

    def test_resubmission_of_gc_forgotten_message_is_dropped(self):
        """The idempotence guard must survive the barrier's GC, which prunes
        ``delivered_in_g``: a bounced/re-routed message that was delivered
        and then garbage-collected must not be delivered again."""
        group, transport, sink = make_group(gid=0, order=(0, 1, 2))
        message = Message(msg_id="m1", dst=frozenset({0}))
        group.on_envelope("client", ClientRequest(message=message))
        barrier = Message(msg_id="b1", dst=frozenset({0, 1, 2}), is_flush=True)
        group.on_envelope(COORD, ClientRequest(message=barrier))
        assert group.history.is_forgotten("m1")  # GC pruned it
        group.on_envelope(2, EpochBounce(message=message, epoch=0, from_group=2))
        group.on_envelope("client", ClientRequest(message=message))
        assert sink.sequence(0) == ["m1", "b1"]  # still exactly once

    def test_switch_skipping_an_epoch_is_refused(self):
        group, transport, sink = make_group(gid=0, order=(0, 1, 2))
        group.on_envelope(
            COORD, EpochSwitch(new_epoch=3, order=(2, 1, 0), reply_to=COORD)
        )
        assert group.epoch == 0
        assert group.overlay.order == [0, 1, 2]
        acks = [p for p in transport.sent_to(COORD) if isinstance(p, EpochSwitchAck)]
        assert acks and acks[-1].epoch == 0

    def test_bounce_reroutes_message_at_current_epoch(self):
        group, transport, sink = make_group(gid=0, order=(0, 1, 2))
        bounce = EpochBounce(
            message=Message(msg_id="m1", dst=frozenset({0})), epoch=0, from_group=2
        )
        group.on_envelope(2, bounce)
        assert sink.sequence(0) == ["m1"]

    def test_bounced_message_already_delivered_is_dropped(self):
        group, transport, sink = make_group(gid=0, order=(0, 1, 2))
        message = Message(msg_id="m1", dst=frozenset({0}))
        group.on_envelope("client", ClientRequest(message=message))
        group.on_envelope(2, EpochBounce(message=message, epoch=0, from_group=2))
        assert sink.sequence(0) == ["m1"]  # exactly once

    def test_future_epoch_envelope_parked_until_switch(self):
        group, transport, sink = make_group(gid=2, order=(0, 1, 2))
        early = FlexCastMsg(
            message=Message(msg_id="m1", dst=frozenset({0, 2})),
            history=HistoryDelta(vertices=(("m1", frozenset({0, 2})),)),
            epoch=1,
        )
        group.on_envelope(0, early)
        assert sink.sequence(2) == []
        assert group.stats["future_parked"] == 1
        group.on_envelope(
            COORD, EpochSwitch(new_epoch=1, order=(0, 1, 2), reply_to=COORD)
        )
        assert sink.sequence(2) == ["m1"]

    def test_quiesce_reply_reports_drain_state(self):
        group, transport, sink = make_group(gid=0, order=(0, 1, 2))
        barrier = Message(msg_id="b1", dst=frozenset({0, 1, 2}), is_flush=True)
        group.on_envelope(COORD, ClientRequest(message=barrier))
        group.on_envelope(
            COORD,
            QuiesceQuery(new_epoch=1, round_id=7, barrier_id="b1", reply_to=COORD),
        )
        replies = [p for p in transport.sent_to(COORD) if isinstance(p, QuiesceReply)]
        assert len(replies) == 1
        reply = replies[0]
        assert reply.round_id == 7
        assert reply.quiescent
        assert reply.barrier_delivered
        # The barrier was forwarded to both descendants.
        assert reply.envelopes_sent == 2
        assert reply.envelopes_received == 0

    def test_install_overlay_requires_quiescence(self):
        group, transport, sink = make_group(gid=2, order=(0, 1, 2))
        # An undelivered message addressed to us is an open dependency.
        group.on_envelope(
            0,
            FlexCastMsg(
                message=Message(msg_id="m2", dst=frozenset({0, 2})),
                history=HistoryDelta(
                    vertices=(
                        ("m1", frozenset({1, 2})),
                        ("m2", frozenset({0, 2})),
                    ),
                    edges=(("m1", "m2"),),
                ),
                epoch=0,
            ),
        )
        assert not group.is_quiescent()
        with pytest.raises(ProtocolError):
            group.install_overlay(CDagOverlay([2, 1, 0]), epoch=1)

    def test_history_survives_switch_and_ships_to_new_descendant(self):
        """The journal/watermark handoff: after the switch, a group that only
        now became a descendant receives the full live history on first diff."""
        group, transport, sink = make_group(gid=1, order=(0, 1, 2))
        group.on_envelope(
            "client", ClientRequest(message=Message(msg_id="m1", dst=frozenset({1})))
        )
        group.on_envelope(COORD, EpochPrepare(new_epoch=1, reply_to=COORD))
        # New order makes former-ancestor 0 a descendant of 1.
        group.on_envelope(
            COORD, EpochSwitch(new_epoch=1, order=(1, 0, 2), reply_to=COORD)
        )
        delta = group.diff_tracker.diff_for(0, group.history)
        assert ("m1", frozenset({1})) in delta.vertices


def deploy(order, latencies):
    loop = EventLoop()
    network = Network(loop, latencies, jitter_ms=0.0, seed=3)
    protocol = ReconfigurableFlexCastProtocol(CDagOverlay(list(order)))
    recording = RecordingSink(clock=lambda: loop.now)
    groups = {}
    epochs = {gid: [] for gid in protocol.groups}

    def sink(gid, message):
        recording(gid, message)
        epochs[gid].append((message.msg_id, groups[gid].epoch))

    for gid in protocol.groups:
        group = protocol.create_group(gid, SimTransport(network, gid), sink)
        groups[gid] = group
        network.register(gid, site=gid, handler=group.on_envelope)
    return loop, network, protocol, groups, recording, epochs


class TestLiveSwitchOnSimulator:
    def test_mid_traffic_switch_is_safe_and_complete(self):
        latencies = clustered_latency_matrix((2, 2), intra_ms=5.0, inter_ms=80.0)
        loop, network, protocol, groups, recording, epochs = deploy(
            [0, 1, 2, 3], latencies
        )
        coordinator = EpochCoordinator(
            node_id=COORD,
            transport=SimTransport(network, COORD),
            protocol=protocol,
            quiesce_interval_ms=20.0,
        )
        network.register(COORD, site=0, handler=coordinator.on_message)

        messages = []

        def submit(mid, dst, at):
            message = Message(msg_id=mid, dst=frozenset(dst), sender="test")
            messages.append(message)

            def fire():
                # Clients route with whatever overlay is committed at submit
                # time — possibly mid-switch, exercising parking/re-routing.
                entry = protocol.entry_groups(message)[0]
                network.send(COORD, entry, ClientRequest(message=message))

            loop.schedule_at(at, fire)

        # A steady stream across the switch window, including multi-group
        # messages spanning both clusters.
        for i in range(40):
            at = 25.0 * i
            dst = [(i % 4), ((i + 1) % 4)] if i % 3 else [0, 1, 2, 3]
            submit(f"t{i}", dst, at)
        loop.schedule_at(300.0, lambda: coordinator.trigger_switch([3, 2, 1, 0]))
        loop.run_until_idle()

        assert coordinator.epoch == 1
        assert coordinator.state == "idle"
        assert protocol.overlay.order == [3, 2, 1, 0]
        assert all(g.epoch == 1 for g in groups.values())

        switch = coordinator.switches[0]
        assert switch.completed_ms is not None
        assert switch.duration_ms > 0

        all_messages = messages + coordinator.barrier_messages
        check_trace(recording, all_messages, expect_all_delivered=True).raise_if_failed()
        check_epochs(epochs, coordinator.barriers).raise_if_failed()
        # Both epochs actually carried traffic.
        delivered_epochs = {e for seq in epochs.values() for _, e in seq}
        assert delivered_epochs == {0, 1}

    def test_two_successive_switches(self):
        latencies = clustered_latency_matrix((2, 2), intra_ms=5.0, inter_ms=40.0)
        loop, network, protocol, groups, recording, epochs = deploy(
            [0, 1, 2, 3], latencies
        )
        coordinator = EpochCoordinator(
            node_id=COORD,
            transport=SimTransport(network, COORD),
            protocol=protocol,
            quiesce_interval_ms=10.0,
        )
        network.register(COORD, site=0, handler=coordinator.on_message)

        messages = []

        def submit(mid, dst, at):
            message = Message(msg_id=mid, dst=frozenset(dst), sender="test")
            messages.append(message)
            loop.schedule_at(
                at,
                lambda: network.send(
                    COORD,
                    protocol.entry_groups(message)[0],
                    ClientRequest(message=message),
                ),
            )

        for i in range(30):
            submit(f"t{i}", [i % 4, (i + 2) % 4], 40.0 * i)
        loop.schedule_at(200.0, lambda: coordinator.trigger_switch([1, 0, 3, 2]))
        loop.schedule_at(800.0, lambda: coordinator.trigger_switch([2, 3, 0, 1]))
        loop.run_until_idle()

        assert coordinator.epoch == 2
        assert all(g.epoch == 2 for g in groups.values())
        all_messages = messages + coordinator.barrier_messages
        check_trace(recording, all_messages, expect_all_delivered=True).raise_if_failed()
        check_epochs(epochs, coordinator.barriers).raise_if_failed()

    def test_trigger_rejected_while_switch_in_flight(self):
        latencies = clustered_latency_matrix((2, 2))
        loop, network, protocol, groups, recording, epochs = deploy(
            [0, 1, 2, 3], latencies
        )
        coordinator = EpochCoordinator(
            node_id=COORD,
            transport=SimTransport(network, COORD),
            protocol=protocol,
        )
        network.register(COORD, site=0, handler=coordinator.on_message)
        coordinator.trigger_switch([3, 2, 1, 0])
        with pytest.raises(RuntimeError):
            coordinator.trigger_switch([1, 2, 3, 0])
        loop.run_until_idle()
        assert coordinator.epoch == 1
