"""Acceptance test for the ISSUE-2 tentpole: under a workload shift, the
monitor → planner → coordinator loop swaps the overlay live, with zero
lost/duplicated/reordered deliveries across the epoch boundary, and the
post-switch delivery latency beats staying on the stale overlay."""

import pytest

from repro.experiments.scenarios import workload_shift_scenario
from repro.reconfig.experiment import run_workload_shift


@pytest.fixture(scope="module")
def runs():
    scenario = workload_shift_scenario()
    return (
        scenario,
        run_workload_shift(scenario, with_reconfig=True),
        run_workload_shift(scenario, with_reconfig=False),
    )


class TestSwitchHappens:
    def test_reconfiguration_triggered_by_the_shift(self, runs):
        scenario, reconfigured, _ = runs
        assert reconfigured.switched
        first = reconfigured.switches[0]
        # Triggered after the shift (the planner reacts to observed traffic,
        # not to the clock) and committed before the evaluation window.
        assert first.started_ms > scenario.shift_ms
        assert first.completed_ms < scenario.post_eval_ms
        # The re-planned order ranks a phase-2 home first.
        phase2_homes = {p.home for p in scenario.phase2}
        assert reconfigured.final_order[0] in phase2_homes

    def test_stale_run_never_switches(self, runs):
        _, _, stale = runs
        assert not stale.switched
        assert stale.final_order == stale.scenario.initial_order


class TestSafetyAcrossTheBoundary:
    def test_no_loss_duplication_or_reordering(self, runs):
        _, reconfigured, stale = runs
        reconfigured.raise_if_unsafe()
        stale.raise_if_unsafe()

    def test_traffic_flowed_in_both_epochs(self, runs):
        _, reconfigured, _ = runs
        epochs_seen = {
            epoch
            for seq in reconfigured.delivery_epochs.values()
            for _, epoch in seq
        }
        assert {0, 1} <= epochs_seen

    def test_every_client_message_completed(self, runs):
        _, reconfigured, stale = runs
        # Closed-loop clients drained: all issued multicasts completed even
        # though some were parked/re-routed mid-switch.
        assert len(reconfigured.transactions) > 100
        assert len(stale.transactions) > 100


class TestLatencyRecovers:
    def test_post_switch_latency_strictly_better_than_stale_overlay(self, runs):
        scenario, reconfigured, stale = runs
        window = (scenario.post_eval_ms, scenario.duration_ms)
        tuned = reconfigured.mean_delivery_latency(*window)
        stuck = stale.mean_delivery_latency(*window)
        assert tuned < stuck, (tuned, stuck)
        # The recovery is substantial on this geometry, not marginal.
        assert tuned < 0.75 * stuck

    def test_phase1_latency_was_fine_on_the_initial_overlay(self, runs):
        scenario, _, stale = runs
        phase1 = stale.mean_delivery_latency(0.0, scenario.shift_ms)
        phase2 = stale.mean_delivery_latency(scenario.post_eval_ms)
        # The initial overlay fits phase 1; the shift is what degrades it.
        assert phase1 < 0.5 * phase2

    def test_switch_cost_is_bounded(self, runs):
        scenario, reconfigured, _ = runs
        duration = reconfigured.switch_duration_ms
        assert duration is not None
        # The drain + handoff costs a few WAN round trips, not seconds.
        assert duration < 20 * scenario.inter_ms


class TestWithPeriodicGarbageCollection:
    def test_switch_remains_safe_with_flush_traffic(self):
        """Periodic GC flushes keep arriving during the drain (they bypass
        request parking); the switch must still complete safely."""
        import dataclasses

        scenario = dataclasses.replace(
            workload_shift_scenario(), gc_interval_ms=1_000.0
        )
        result = run_workload_shift(scenario, with_reconfig=True)
        assert result.switched
        result.raise_if_unsafe()
        # GC actually ran: histories were pruned beyond the epoch barrier.
        assert sum(s["gc_pruned"] for s in result.group_stats.values()) > 0
        window = (scenario.post_eval_ms, scenario.duration_ms)
        assert result.mean_delivery_latency(*window) < 150.0
