"""Unit tests for the sliding-window workload monitor."""

from repro.metrics import LatencyCollector
from repro.obs import Observability
from repro.reconfig.monitor import WorkloadMonitor
from repro.workload.clients import CompletedTransaction


def txn(home, dst, at):
    return CompletedTransaction(
        client_id="c",
        home=home,
        destinations=len(dst),
        submitted_at=at - 10.0,
        completed_at=at,
        latencies_by_arrival=[10.0],
        destination_set=frozenset(dst),
    )


class TestWindow:
    def test_counts_inside_window(self):
        monitor = WorkloadMonitor(window_ms=1_000.0)
        monitor.observe(0, {0, 1}, at=100.0)
        monitor.observe(0, {0, 1}, at=200.0)
        monitor.observe(2, {2, 3}, at=300.0)
        snap = monitor.snapshot()
        assert snap.sample_count == 3
        assert snap.traffic_dict()[(0, frozenset({0, 1}))] == 2
        assert snap.pair_weight_dict()[frozenset({0, 1})] == 2.0
        assert snap.home_weight_dict() == {0: 2.0, 2: 1.0}

    def test_old_entries_evicted(self):
        monitor = WorkloadMonitor(window_ms=1_000.0)
        monitor.observe(0, {0, 1}, at=0.0)
        monitor.observe(1, {1, 2}, at=1_500.0)
        snap = monitor.snapshot()
        assert snap.sample_count == 1
        assert (0, frozenset({0, 1})) not in snap.traffic_dict()
        assert frozenset({0, 1}) not in snap.pair_weight_dict()
        assert snap.home_weight_dict() == {1: 1.0}

    def test_snapshot_with_now_evicts_quiet_tail(self):
        monitor = WorkloadMonitor(window_ms=1_000.0)
        monitor.observe(0, {0, 1}, at=0.0)
        assert monitor.snapshot().sample_count == 1
        # Nothing new arrived but time moved on: the window must empty.
        assert monitor.snapshot(now=5_000.0).sample_count == 0

    def test_three_destination_message_counts_all_pairs(self):
        monitor = WorkloadMonitor(window_ms=1_000.0)
        monitor.observe(0, {0, 1, 2}, at=0.0)
        pairs = monitor.snapshot().pair_weight_dict()
        assert set(pairs) == {
            frozenset({0, 1}),
            frozenset({0, 2}),
            frozenset({1, 2}),
        }


class TestDeliveryFeed:
    def test_fed_from_latency_collector_via_obs_hub(self):
        obs = Observability()
        collector = LatencyCollector()
        collector.attach_obs(obs)
        monitor = WorkloadMonitor(window_ms=10_000.0)
        monitor.attach(obs)
        collector.record(txn(0, {0, 3}, at=50.0))
        collector.record(txn(3, {3, 4}, at=60.0))
        snap = monitor.snapshot()
        assert snap.sample_count == 2
        assert snap.home_weight_dict() == {0: 1.0, 3: 1.0}

    def test_legacy_transactions_without_destination_set_are_skipped(self):
        obs = Observability()
        collector = LatencyCollector()
        collector.attach_obs(obs)
        monitor = WorkloadMonitor()
        monitor.attach(obs)
        collector.record(txn(0, {}, at=10.0))
        assert monitor.snapshot().sample_count == 0

    def test_collector_counter_tracks_recorded_txns(self):
        obs = Observability()
        collector = LatencyCollector()
        collector.attach_obs(obs)
        collector.record(txn(0, {0, 1}, at=5.0))
        snap = obs.registry.snapshot()
        assert snap["counters"]["collector_transactions_total"] == 1
