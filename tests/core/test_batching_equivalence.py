"""Differential tests: the batching layer vs the unbatched delivery path.

Mirrors the :mod:`tests.core.test_history_equivalence` methodology: the same
deterministic scenarios are driven through two implementations — the plain
submission path (each message its own ``ClientRequest``) and the
:class:`~repro.core.batching.BatchingClient` — and the outcomes are compared.

Two claims are pinned, matching DESIGN.md "batching the delivery path":

* **batch_window=1 is bit-identical** — with a window of one the batching
  client ships the exact same envelopes at the exact same (virtual) times,
  so per-group delivery sequences are *equal as sequences*, in both plain
  and hybrid modes.  This is the contract that lets batching default off.
* **batch_window>1 preserves every guarantee** — the delivered message
  *sets* per group are unchanged, all oracle-checked invariants hold, and
  batches are delivered atomically (all-or-nothing, contiguous, in member
  order at every group).
"""

from dataclasses import replace

import pytest

from repro.fuzz.harness import run_scenario
from repro.fuzz.profiles import apply_profile
from repro.fuzz.workload import generate_scenario

#: Seeds chosen to cover the generator's shapes: hotspot conflicts, bursts,
#: GC flush traffic, and a mix of overlay sizes.
SEEDS = (3, 7, 11, 19)


def _scenario(seed, hybrid, batch_window, profile="none"):
    scenario = apply_profile(generate_scenario(seed, profile), profile)
    return replace(scenario, hybrid=hybrid, batch_window=batch_window)


class TestWindowOneBitIdentical:
    """The differential pin: a window of one changes nothing at all."""

    @pytest.mark.parametrize("hybrid", [False, True], ids=["plain", "hybrid"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sequences_identical(self, seed, hybrid):
        scenario = _scenario(seed, hybrid=hybrid, batch_window=1)
        unbatched = run_scenario(scenario)
        batched = run_scenario(scenario, use_batching_client=True)
        # Bit-identical: same per-group delivery *sequences*, same oracle
        # outcome, and the window-1 client never formed an actual batch.
        assert batched.sequences == unbatched.sequences
        assert batched.violations == unbatched.violations
        assert batched.ordering_anomalies == unbatched.ordering_anomalies
        assert batched.batches == []

    def test_flushes_bypass_the_window(self):
        # A GC-flush-heavy scenario: flush multicasts must never be
        # coalesced or delayed, so window 1 (and the bypass) stays
        # bit-identical even with periodic flush traffic interleaved.
        scenario = replace(
            _scenario(3, hybrid=False, batch_window=1), gc_interval_ms=200.0
        )
        unbatched = run_scenario(scenario)
        batched = run_scenario(scenario, use_batching_client=True)
        assert batched.sequences == unbatched.sequences
        assert batched.ok and unbatched.ok


class TestBatchedRunsPreserveGuarantees:
    @pytest.mark.parametrize("hybrid", [False, True], ids=["plain", "hybrid"])
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("window", [4, 16])
    def test_same_deliveries_all_invariants(self, seed, hybrid, window):
        reference = run_scenario(_scenario(seed, hybrid=hybrid, batch_window=1))
        batched = run_scenario(_scenario(seed, hybrid=hybrid, batch_window=window))
        assert batched.ok, batched.violations[:5]
        if hybrid:
            # Hybrid guarantees global acyclic order; batching must not
            # reintroduce anomalies the timestamp authority rules out.
            assert batched.strict_ok, batched.ordering_anomalies[:5]
        # Batching reorders legally (windows delay submissions) but must
        # deliver exactly the same messages everywhere.
        for group in batched.scenario.order:
            assert set(batched.sequences[group]) == set(reference.sequences[group])

    def test_batches_actually_form(self):
        # Guard against the axis silently degenerating: at least one
        # generated scenario must coalesce real batches under window 16.
        formed = sum(
            len(run_scenario(_scenario(seed, hybrid=False, batch_window=16)).batches)
            for seed in SEEDS
        )
        assert formed > 0

    def test_members_contiguous_in_batch_order(self):
        # Direct structural check on top of the harness's own oracle: each
        # delivered batch appears as one contiguous run, in member order.
        result = run_scenario(_scenario(3, hybrid=False, batch_window=16))
        assert result.batches
        for batch_id, members in result.batches:
            for group, sequence in result.sequences.items():
                positions = [
                    index for index, mid in enumerate(sequence) if mid in set(members)
                ]
                if not positions:
                    continue
                assert [sequence[i] for i in positions] == list(members), (
                    batch_id,
                    group,
                )
                assert positions == list(
                    range(positions[0], positions[0] + len(members))
                )
