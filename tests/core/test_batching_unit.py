"""Unit tests for :class:`repro.core.batching.BatchingClient` and the batch
message/envelope model (:meth:`Message.batch_of`, :class:`FlexCastBatch`)."""

import pytest

from repro.core.batching import BatchingClient
from repro.core.message import ClientRequest, FlexCastBatch, Message
from repro.core.flexcast import FlexCastProtocol
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.transport import RecordingTransport


def make_message(i, dst=(0, 1), **kwargs):
    return Message.create(destinations=dst, msg_id=f"m{i}", **kwargs)


# ------------------------------------------------------------- message model
class TestBatchOf:
    def test_carrier_shape(self):
        members = [make_message(i, payload_bytes=32) for i in range(3)]
        carrier = Message.batch_of(members, batch_id="b0")
        assert carrier.is_batch and carrier.msg_id == "b0"
        assert carrier.dst == frozenset({0, 1})
        assert carrier.members == tuple(members)
        assert carrier.payload_bytes == 96
        assert not carrier.is_flush

    def test_size_amortizes_headers(self):
        members = [make_message(i, payload_bytes=64) for i in range(16)]
        carrier = Message.batch_of(members, batch_id="b0")
        assert carrier.size_bytes() < sum(m.size_bytes() for m in members)

    def test_rejects_mixed_destinations(self):
        with pytest.raises(ValueError, match="destination set"):
            Message.batch_of([make_message(0, dst=(0, 1)), make_message(1, dst=(0, 2))])

    def test_rejects_flush_members(self):
        flush = Message.create(destinations=(0, 1), msg_id="f0", is_flush=True)
        with pytest.raises(ValueError, match="flush"):
            Message.batch_of([make_message(0), flush])

    def test_rejects_nesting_and_empty(self):
        inner = Message.batch_of([make_message(0)], batch_id="b-in")
        with pytest.raises(ValueError, match="nested"):
            Message.batch_of([inner])
        with pytest.raises(ValueError, match="at least one"):
            Message.batch_of([])

    def test_batch_envelope_is_a_client_request(self):
        # The whole reconfiguration story (parking, re-routing, idempotent
        # re-submission) rests on this subtyping.
        envelope = FlexCastBatch(message=Message.batch_of([make_message(0)]))
        assert isinstance(envelope, ClientRequest)
        assert envelope.kind == "batch"


# ------------------------------------------------------------------ client
def make_client(max_batch=4, max_delay_ms=10.0, schedule="transport"):
    protocol = FlexCastProtocol(CDagOverlay([0, 1, 2]))
    transport = RecordingTransport("client")
    client = BatchingClient(
        "client",
        protocol,
        send_request=transport.send,
        clock=transport.now,
        max_batch=max_batch,
        max_delay_ms=max_delay_ms,
        schedule=transport.schedule if schedule == "transport" else schedule,
    )
    return client, transport


class TestBatchingClient:
    def test_size_trigger_ships_one_batch(self):
        client, transport = make_client(max_batch=3)
        for i in range(3):
            client.multicast((0, 1), payload=i)
        [(dst, envelope)] = transport.sent
        assert dst == 0  # the lca of {0, 1}
        assert isinstance(envelope, FlexCastBatch)
        assert len(envelope.message.members) == 3
        assert client.buffered == 0
        assert client.stats["batches_sent"] == 1
        assert client.stats["messages_batched"] == 3

    def test_time_trigger_flushes_partial_window(self):
        client, transport = make_client(max_batch=16, max_delay_ms=5.0)
        client.multicast((0, 1), payload="a")
        client.multicast((0, 1), payload="b")
        assert transport.sent == [] and client.buffered == 2
        transport.advance(5.0)
        [(_, envelope)] = transport.sent
        assert isinstance(envelope, FlexCastBatch)
        assert len(envelope.message.members) == 2

    def test_single_message_window_ships_plain_request(self):
        client, transport = make_client(max_batch=16, max_delay_ms=5.0)
        client.multicast((0, 1), payload="solo")
        transport.advance(5.0)
        [(_, envelope)] = transport.sent
        assert type(envelope) is ClientRequest  # not a FlexCastBatch
        assert client.batch_log == []

    def test_windows_are_per_destination_set(self):
        client, transport = make_client(max_batch=2)
        client.multicast((0, 1), payload=1)
        client.multicast((1, 2), payload=2)
        assert transport.sent == []  # two open windows, neither full
        client.multicast((0, 1), payload=3)
        assert len(transport.sent) == 1  # only the {0,1} window closed
        assert client.buffered == 1

    def test_flush_messages_bypass_batching(self):
        client, transport = make_client(max_batch=16)
        client.multicast((0, 1), payload="app")
        flush = Message.create(destinations=(0, 1, 2), is_flush=True)
        client.submit(flush)
        # The flush left immediately as its own request; the app message is
        # still buffered behind it.
        [(_, envelope)] = transport.sent
        assert type(envelope) is ClientRequest and envelope.message.is_flush
        assert client.buffered == 1

    def test_window_of_one_dispatches_immediately(self):
        client, transport = make_client(max_batch=1)
        client.multicast((0, 1), payload="x")
        [(_, envelope)] = transport.sent
        assert type(envelope) is ClientRequest
        assert client.buffered == 0

    def test_explicit_flush_and_deterministic_ids(self):
        client, transport = make_client(max_batch=16, schedule=None)
        for i in range(2):
            client.multicast((0, 1), payload=i)
        for i in range(2):
            client.multicast((1, 2), payload=i)
        client.flush()
        batch_ids = [e.message.msg_id for _, e in transport.sent]
        assert batch_ids == ["client-b1", "client-b2"]
        assert [len(e.message.members) for _, e in transport.sent] == [2, 2]

    def test_response_tracking_is_per_member(self):
        client, transport = make_client(max_batch=2)
        first = client.multicast((0, 1), payload="a")
        second = client.multicast((0, 1), payload="b")
        assert client.outstanding == 2
        for msg in (first, second):
            for group in (0, 1):
                client.on_response(group, msg.msg_id)
        assert client.outstanding == 0
        assert {c.message.msg_id for c in client.completed} == {
            first.msg_id,
            second.msg_id,
        }


class TestBatchFanOutAtGate:
    def test_lca_fans_batch_into_member_deliveries(self):
        overlay = CDagOverlay([0, 1, 2])
        sink = RecordingSink()
        transport = RecordingTransport(0)
        group = FlexCastProtocol(overlay).create_group(0, transport, sink)
        members = [make_message(i, dst=(0, 1)) for i in range(3)]
        carrier = Message.batch_of(members, batch_id="b0")
        group.on_envelope("client", FlexCastBatch(message=carrier))
        # Members delivered in order; the carrier never reaches the sink.
        assert sink.sequence(0) == ["m0", "m1", "m2"]
        # One ordering unit: a single history vertex and one msg envelope
        # (to destination 1) for the whole batch.
        assert group.history_size() == 1
        assert "b0" in group.history
        assert len(transport.sent_to(1)) == 1

    def test_one_timestamp_convoy_per_batch(self):
        # Hybrid mode: the carrier — not the members — acquires the final
        # timestamp, so a batch of N costs |dst|-1 ts-propose envelopes
        # total, not N * (|dst|-1).
        overlay = CDagOverlay([0, 1, 2])
        group = FlexCastProtocol(overlay, hybrid=True).create_group(
            0, RecordingTransport(0), RecordingSink()
        )
        members = [make_message(i, dst=(0, 1, 2)) for i in range(8)]
        carrier = Message.batch_of(members, batch_id="b0")
        group.on_envelope("client", FlexCastBatch(message=carrier))
        assert group.stats["ts_proposals_sent"] == 2  # one per peer destination
        assert group.ts is not None and group.ts.is_pending("b0")
        # No member ever enters the timestamp authority.
        assert not any(group.ts.is_pending(m.msg_id) for m in members)

    def test_duplicate_msg_after_gc_leaks_no_state(self):
        # A duplicated/delayed FlexCastMsg for a carrier the group already
        # delivered *and garbage-collected* must not resurrect pending
        # state: forgotten ids never re-enter the history, so an entry (or
        # member-index row) created by the duplicate could never be pruned
        # by any later GC pass.
        from repro.core.message import EMPTY_DELTA, FlexCastMsg

        overlay = CDagOverlay([0, 1, 2])
        sink = RecordingSink()
        group = FlexCastProtocol(overlay).create_group(
            1, RecordingTransport(1), sink
        )
        members = [make_message(i, dst=(0, 1)) for i in range(2)]
        carrier = Message.batch_of(members, batch_id="b0")
        envelope = FlexCastMsg(message=carrier, history=EMPTY_DELTA)
        group.on_envelope(0, envelope)
        assert sink.sequence(1) == ["m0", "m1"]
        # A flush addressed to this group collects the carrier.
        group.on_client_request(
            Message.create(destinations=(1,), msg_id="f0", is_flush=True)
        )
        assert group.history.is_forgotten("b0")
        assert "b0" not in group.pending
        group.on_envelope(0, envelope)  # late duplicate of the pruned batch
        assert sink.sequence(1) == ["m0", "m1", "f0"]  # nothing re-delivered
        assert "b0" not in group.pending
        assert not group._batch_members

    def test_duplicate_batch_absorbed(self):
        overlay = CDagOverlay([0, 1, 2])
        sink = RecordingSink()
        group = FlexCastProtocol(overlay).create_group(
            0, RecordingTransport(0), sink
        )
        carrier = Message.batch_of([make_message(0, dst=(0, 1))], batch_id="b0")
        envelope = FlexCastBatch(message=carrier)
        group.on_envelope("client", envelope)
        group.on_envelope("client", envelope)  # duplicated submission
        assert sink.sequence(0) == ["m0"]
        assert group.has_delivered("b0")  # carrier id recorded for idempotence

    def test_member_retry_after_batch_delivery_absorbed(self):
        # A client that lost a ClientResponse may retry one *member* as a
        # plain request.  Members have no history vertex of their own, so
        # the enqueue guard must fall back to the permanent delivery record
        # — the retry is absorbed, exactly like an unbatched re-submission.
        overlay = CDagOverlay([0, 1, 2])
        sink = RecordingSink()
        group = FlexCastProtocol(overlay).create_group(
            0, RecordingTransport(0), sink
        )
        members = [make_message(i, dst=(0, 1)) for i in range(2)]
        carrier = Message.batch_of(members, batch_id="b0")
        group.on_envelope("client", FlexCastBatch(message=carrier))
        assert sink.sequence(0) == ["m0", "m1"]
        group.on_envelope("client", ClientRequest(message=members[1]))  # retry
        assert sink.sequence(0) == ["m0", "m1"]  # absorbed, no double delivery
        # Absorption must not leak pending state: members never gain history
        # vertices, so an entry created here could never be GC'd.
        assert "m1" not in group.pending

    def test_member_retry_while_batch_in_flight_absorbed(self):
        # The retry can also arrive while the batch is still undelivered —
        # here at a hybrid lca whose carrier waits in the convoy for the
        # peer's proposal.  The member index must absorb the retry before
        # it becomes a second ordering unit, and crucially before it mints
        # a timestamp proposal: an undeliverable entry at the convoy gate's
        # head would stall every later global message.
        from repro.core.message import FlexCastTsPropose

        overlay = CDagOverlay([0, 1, 2])
        sink = RecordingSink()
        group = FlexCastProtocol(overlay, hybrid=True).create_group(
            0, RecordingTransport(0), sink
        )
        members = [make_message(i, dst=(0, 1)) for i in range(2)]
        carrier = Message.batch_of(members, batch_id="b0")
        group.on_envelope("client", FlexCastBatch(message=carrier))
        assert sink.sequence(0) == []  # convoy: waiting on group 1's proposal
        group.on_envelope("client", ClientRequest(message=members[0]))  # retry
        assert sink.sequence(0) == []  # absorbed, not ordered solo
        assert group.ts is not None
        assert not group.ts.is_pending("m0")  # authority not poisoned
        # The peer's proposal decides the carrier; the batch delivers as
        # one contiguous unit.
        local_ts = group.ts.pending["b0"].local_timestamp
        group.on_envelope(
            1,
            FlexCastTsPropose(
                message=Message(msg_id="b0", dst=frozenset({0, 1})),
                timestamp=local_ts + 1,
                from_group=1,
            ),
        )
        assert sink.sequence(0) == ["m0", "m1"]
