"""Tests for the client-side multicast helpers."""

import pytest

from repro.core.client import MulticastCall, MulticastClient
from repro.core.flexcast import FlexCastProtocol
from repro.core.message import ClientRequest, Message
from repro.overlay.cdag import CDagOverlay


class TestMulticastCall:
    def _call(self):
        return MulticastCall(
            message=Message.create(["A", "B"], msg_id="m1"), submitted_at=100.0
        )

    def test_incomplete_until_all_destinations_respond(self):
        call = self._call()
        assert not call.complete
        assert not call.record_response("A", 150.0)
        assert call.record_response("B", 180.0)
        assert call.complete

    def test_latencies_sorted_by_arrival(self):
        call = self._call()
        call.record_response("B", 180.0)
        call.record_response("A", 150.0)
        assert call.latencies_by_arrival() == [50.0, 80.0]

    def test_duplicate_response_ignored(self):
        call = self._call()
        call.record_response("A", 150.0)
        call.record_response("A", 170.0)
        assert call.responses["A"] == 150.0

    def test_response_from_non_destination_rejected(self):
        call = self._call()
        with pytest.raises(ValueError):
            call.record_response("Z", 120.0)


class TestMulticastClient:
    def _client(self):
        overlay = CDagOverlay(["A", "B", "C"])
        protocol = FlexCastProtocol(overlay)
        sent = []
        clock = {"now": 0.0}
        client = MulticastClient(
            client_id="c1",
            protocol=protocol,
            send_request=lambda group, req: sent.append((group, req)),
            clock=lambda: clock["now"],
        )
        return client, sent, clock

    def test_multicast_routes_request_to_lca_only(self):
        client, sent, clock = self._client()
        message = client.multicast(["B", "C"], payload_bytes=10)
        assert [group for group, _ in sent] == ["B"]
        assert isinstance(sent[0][1], ClientRequest)
        assert client.outstanding == 1
        assert message.sender == "c1"

    def test_responses_complete_the_call(self):
        client, sent, clock = self._client()
        message = client.multicast(["B", "C"])
        clock["now"] = 40.0
        assert client.on_response("B", message.msg_id) is None
        clock["now"] = 90.0
        call = client.on_response("C", message.msg_id)
        assert call is not None and call.complete
        assert call.latencies_by_arrival() == [40.0, 90.0]
        assert client.outstanding == 0
        assert client.completed == [call]

    def test_unknown_response_ignored(self):
        client, sent, clock = self._client()
        assert client.on_response("B", "not-a-message") is None

    def test_submit_prebuilt_message(self):
        client, sent, clock = self._client()
        message = Message.create(["A", "C"], sender="c1")
        client.submit(message)
        assert [group for group, _ in sent] == ["A"]
