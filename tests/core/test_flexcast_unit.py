"""White-box unit tests for the FlexCast group logic.

Groups are driven directly with hand-crafted envelopes through a
RecordingTransport, which gives the tests full control over arrival order —
including the adversarial orderings of Figure 3 in the paper.
"""

import pytest

from repro.core.flexcast import FlexCastGroup, FlexCastProtocol
from repro.core.message import (
    ClientRequest,
    EMPTY_DELTA,
    FlexCastAck,
    FlexCastMsg,
    FlexCastNotif,
    HistoryDelta,
    Message,
)
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import ProtocolError, RecordingSink
from repro.sim.transport import RecordingTransport

A, B, C = "A", "B", "C"


@pytest.fixture
def overlay():
    return CDagOverlay([A, B, C])


def make_group(group_id, overlay):
    transport = RecordingTransport(group_id)
    sink = RecordingSink()
    group = FlexCastGroup(group_id, overlay, transport, sink)
    return group, transport, sink


def msg(mid, dst, **kwargs):
    return Message(msg_id=mid, dst=frozenset(dst), **kwargs)


def delta(vertices, edges=(), last=None):
    return HistoryDelta(
        vertices=tuple((mid, frozenset(dst)) for mid, dst in vertices),
        edges=tuple(edges),
        last_delivered=last,
    )


class TestLcaBehaviour:
    def test_lca_delivers_client_message_immediately(self, overlay):
        group, transport, sink = make_group(A, overlay)
        m = msg("m1", {A, C})
        group.on_client_request(m)
        assert sink.sequence(A) == ["m1"]

    def test_lca_forwards_to_all_other_destinations_only(self, overlay):
        group, transport, sink = make_group(A, overlay)
        m = msg("m1", {A, B, C})
        group.on_client_request(m)
        destinations = [dst for dst, env in transport.sent if isinstance(env, FlexCastMsg)]
        assert sorted(destinations) == [B, C]

    def test_lca_does_not_forward_local_messages(self, overlay):
        group, transport, sink = make_group(A, overlay)
        group.on_client_request(msg("m1", {A}))
        assert transport.sent == []
        assert sink.sequence(A) == ["m1"]

    def test_client_request_to_non_lca_rejected(self, overlay):
        group, _, _ = make_group(B, overlay)
        with pytest.raises(ProtocolError):
            group.on_client_request(msg("m1", {A, B}))

    def test_client_request_to_non_destination_rejected(self, overlay):
        group, _, _ = make_group(B, overlay)
        with pytest.raises(ProtocolError):
            group.on_client_request(msg("m1", {A, C}))

    def test_forwarded_msg_carries_history_diff(self, overlay):
        group, transport, _ = make_group(A, overlay)
        group.on_client_request(msg("m1", {A, B}))
        group.on_client_request(msg("m2", {A, B}))
        envelopes = [env for dst, env in transport.sent if isinstance(env, FlexCastMsg)]
        # The second forward must only ship the new vertex m2 (plus the edge),
        # not resend m1's vertex.
        second = envelopes[1]
        assert {v[0] for v in second.history.vertices} == {"m2"}
        assert ("m1", "m2") in second.history.edges


class TestNonLcaDelivery:
    def test_single_ancestor_message_delivers_immediately(self, overlay):
        group, transport, sink = make_group(C, overlay)
        group.on_envelope(A, FlexCastMsg(message=msg("m1", {A, C}), history=EMPTY_DELTA))
        assert sink.sequence(C) == ["m1"]

    def test_non_destination_msg_rejected(self, overlay):
        group, _, _ = make_group(B, overlay)
        with pytest.raises(ProtocolError):
            group.on_envelope(A, FlexCastMsg(message=msg("m1", {A, C}), history=EMPTY_DELTA))

    def test_middle_destination_sends_ack_to_higher_destinations(self, overlay):
        group, transport, sink = make_group(B, overlay)
        group.on_envelope(A, FlexCastMsg(message=msg("m1", {A, B, C}), history=EMPTY_DELTA))
        assert sink.sequence(B) == ["m1"]
        acks = [(dst, env) for dst, env in transport.sent if isinstance(env, FlexCastAck)]
        assert [dst for dst, _ in acks] == [C]
        assert acks[0][1].from_group == B

    def test_highest_destination_waits_for_middle_ack(self, overlay):
        group, transport, sink = make_group(C, overlay)
        m = msg("m1", {A, B, C})
        group.on_envelope(A, FlexCastMsg(message=m, history=EMPTY_DELTA))
        assert sink.sequence(C) == []  # blocked on B's ack
        group.on_envelope(B, FlexCastAck(message=m, history=EMPTY_DELTA, from_group=B))
        assert sink.sequence(C) == ["m1"]

    def test_ack_arriving_before_msg_is_buffered(self, overlay):
        group, transport, sink = make_group(C, overlay)
        m = msg("m1", {A, B, C})
        group.on_envelope(B, FlexCastAck(message=m, history=EMPTY_DELTA, from_group=B))
        assert sink.sequence(C) == []
        group.on_envelope(A, FlexCastMsg(message=m, history=EMPTY_DELTA))
        assert sink.sequence(C) == ["m1"]

    def test_duplicate_acks_are_idempotent(self, overlay):
        group, transport, sink = make_group(C, overlay)
        m = msg("m1", {A, B, C})
        group.on_envelope(A, FlexCastMsg(message=m, history=EMPTY_DELTA))
        ack = FlexCastAck(message=m, history=EMPTY_DELTA, from_group=B)
        group.on_envelope(B, ack)
        group.on_envelope(B, ack)
        assert sink.sequence(C) == ["m1"]
        assert group.delivered_count == 1

    def test_messages_from_same_lca_delivered_in_fifo_order(self, overlay):
        group, transport, sink = make_group(C, overlay)
        m1, m2 = msg("m1", {A, C}), msg("m2", {A, C})
        d1 = delta([("m1", {A, C})])
        d2 = delta([("m2", {A, C})], edges=[("m1", "m2")])
        group.on_envelope(A, FlexCastMsg(message=m1, history=d1))
        group.on_envelope(A, FlexCastMsg(message=m2, history=d2))
        assert sink.sequence(C) == ["m1", "m2"]


class TestNotifLogic:
    def test_lca_notifies_bypassed_group_it_already_contacted(self, overlay):
        """Strategy (c): A already talked to B, so forwarding m3 to C must
        trigger a notif to B (which is not in m3.dst)."""
        group, transport, sink = make_group(A, overlay)
        group.on_client_request(msg("m2", {A, B}))  # A has now contacted B
        transport.clear()
        group.on_client_request(msg("m3", {A, C}))
        notifs = [(dst, env) for dst, env in transport.sent if isinstance(env, FlexCastNotif)]
        assert [dst for dst, _ in notifs] == [B]
        # The forwarded msg carries B in its notified list so C waits for B's ack.
        msgs = [env for dst, env in transport.sent if isinstance(env, FlexCastMsg) and dst == C]
        assert msgs and B in msgs[0].notified

    def test_no_notif_without_prior_communication(self, overlay):
        """Minimality: A never talked to B, so no notif may be sent to B."""
        group, transport, sink = make_group(A, overlay)
        group.on_client_request(msg("m1", {A, C}))
        notifs = [env for _, env in transport.sent if isinstance(env, FlexCastNotif)]
        assert notifs == []

    def test_notified_group_acks_destinations_above_it(self, overlay):
        group, transport, sink = make_group(B, overlay)
        # B has delivered something already (so it has dependencies to share).
        group.on_envelope(A, FlexCastMsg(message=msg("m1", {A, B}), history=EMPTY_DELTA))
        transport.clear()
        m3 = msg("m3", {A, C})
        group.on_envelope(
            A, FlexCastNotif(message=m3, history=delta([("m3", {A, C})]), from_group=A)
        )
        acks = [(dst, env) for dst, env in transport.sent if isinstance(env, FlexCastAck)]
        assert [dst for dst, _ in acks] == [C]
        assert {v[0] for v in acks[0][1].history.vertices} >= {"m1"}

    def test_notif_with_open_dependency_waits_for_local_delivery(self, overlay):
        group, transport, sink = make_group(B, overlay)
        # B learns (from the notif's history) about a message addressed to B
        # that it has not delivered yet: the ack must be deferred.
        m1 = msg("m1", {A, B})
        m3 = msg("m3", {A, C})
        notif_history = delta([("m1", {A, B}), ("m3", {A, C})], edges=[("m1", "m3")])
        group.on_envelope(A, FlexCastNotif(message=m3, history=notif_history, from_group=A))
        assert not [env for _, env in transport.sent if isinstance(env, FlexCastAck)]
        assert len(group.pending_notifications) == 1
        # Delivering m1 unblocks the pending notification.
        group.on_envelope(A, FlexCastMsg(message=m1, history=EMPTY_DELTA))
        acks = [(dst, env) for dst, env in transport.sent if isinstance(env, FlexCastAck)]
        assert [dst for dst, _ in acks] == [C]
        assert group.pending_notifications == []

    def test_highest_destination_waits_for_notified_group_ack(self, overlay):
        group, transport, sink = make_group(C, overlay)
        m3 = msg("m3", {A, C})
        group.on_envelope(
            A,
            FlexCastMsg(message=m3, history=EMPTY_DELTA, notified=frozenset({B})),
        )
        assert sink.sequence(C) == []  # must wait for B (notified) to ack
        group.on_envelope(B, FlexCastAck(message=m3, history=EMPTY_DELTA, from_group=B))
        assert sink.sequence(C) == ["m3"]


class TestIncrementalDeliveryState:
    """The incrementally maintained open-dependency set and dirty queues."""

    def test_open_dependencies_tracks_merged_undelivered_messages(self, overlay):
        group, transport, sink = make_group(C, overlay)
        m3 = msg("m3", {A, C})
        # A's history says m1 (lca B, addressed to C) was ordered before m3.
        notif_history = delta([("m1", {B, C}), ("m3", {A, C})], edges=[("m1", "m3")])
        group.on_envelope(
            A, FlexCastMsg(message=m3, history=notif_history)
        )
        # m3 is blocked: its history says m1 (addressed to C) precedes it.
        assert sink.sequence(C) == []
        assert group.open_dependencies() == {"m1", "m3"}
        group.on_envelope(B, FlexCastMsg(message=msg("m1", {B, C}), history=EMPTY_DELTA))
        assert sink.sequence(C) == ["m1", "m3"]
        assert group.open_dependencies() == set()

    def test_open_dependencies_ignores_other_groups_messages(self, overlay):
        group, transport, sink = make_group(B, overlay)
        group.on_envelope(
            A,
            FlexCastNotif(
                message=msg("m3", {A, C}),
                history=delta([("m3", {A, C}), ("mC", {C})]),
                from_group=A,
            ),
        )
        assert group.open_dependencies() == set()

    def test_delivery_clears_queue_dirty_state(self, overlay):
        group, transport, sink = make_group(C, overlay)
        group.on_envelope(A, FlexCastMsg(message=msg("m1", {A, C}), history=EMPTY_DELTA))
        assert sink.sequence(C) == ["m1"]
        # Nothing left to examine: the dirty set must drain with the queues.
        assert group._dirty_queues == set()
        assert all(len(q) == 0 for q in group.queues.values())

    def test_blocked_head_stays_queued_until_ack(self, overlay):
        group, transport, sink = make_group(C, overlay)
        m = msg("m1", {A, B, C})
        group.on_envelope(A, FlexCastMsg(message=m, history=EMPTY_DELTA))
        assert group.queue_sizes()[A] == 1
        # Unrelated acks must not deliver the blocked head.
        other = msg("m9", {A, B, C})
        group.on_envelope(B, FlexCastAck(message=other, history=EMPTY_DELTA, from_group=B))
        assert sink.sequence(C) == []
        group.on_envelope(B, FlexCastAck(message=m, history=EMPTY_DELTA, from_group=B))
        assert sink.sequence(C) == ["m1"]
        assert group.queue_sizes()[A] == 0

    def test_gc_keeps_open_dependency_set_consistent(self, overlay):
        group, transport, sink = make_group(C, overlay)
        # C learns (via an ancestor's history) about m1 before receiving it.
        flush = msg("f1", {A, C}, is_flush=True)
        group.on_envelope(
            A,
            FlexCastMsg(
                message=flush,
                history=delta([("m1", {B, C}), ("f1", {A, C})], edges=[("m1", "f1")]),
            ),
        )
        assert sink.sequence(C) == []  # flush blocked behind m1
        assert group.open_dependencies() == {"m1", "f1"}
        group.on_envelope(B, FlexCastMsg(message=msg("m1", {B, C}), history=EMPTY_DELTA))
        assert sink.sequence(C) == ["m1", "f1"]
        # The flush garbage-collected m1; every index must agree.
        assert group.stats["gc_pruned"] > 0
        assert group.open_dependencies() == set()
        assert "m1" not in group.history


class TestStats:
    def test_stats_track_messages(self, overlay):
        group, transport, sink = make_group(B, overlay)
        group.on_envelope(A, FlexCastMsg(message=msg("m1", {A, B, C}), history=EMPTY_DELTA))
        assert group.stats["msgs_received"] == 1
        assert group.stats["acks_sent"] == 1
        # Every ancestor queue plus the group's own client queue.
        assert group.queue_sizes() == {A: 0, B: 0}
        assert group.history_size() == 1


class TestFlexCastProtocol:
    def test_requires_cdag_overlay(self):
        from repro.overlay.tree import TreeOverlay

        with pytest.raises(TypeError):
            FlexCastProtocol(TreeOverlay(A, {A: [B, C]}))

    def test_entry_group_is_lca(self, overlay):
        protocol = FlexCastProtocol(overlay)
        assert protocol.entry_groups(msg("m1", {B, C})) == [B]
        assert protocol.genuine
        assert protocol.name == "FlexCast"

    def test_create_group_builds_flexcast_group(self, overlay):
        protocol = FlexCastProtocol(overlay)
        group = protocol.create_group(A, RecordingTransport(A), RecordingSink())
        assert isinstance(group, FlexCastGroup)


class TestForgottenDuplicates:
    """A duplicated envelope that outlives the flush GC must be inert.

    After GC prunes a delivered message, ``delivered_in_g`` no longer
    remembers it — the history's forgotten-set is the only guard left, and
    the enqueue paths must honour it or the duplicate is re-delivered (and,
    in hybrid mode, could not even re-acquire a timestamp).
    """

    def _deliver_and_gc(self, group, ts=False):
        proposals = {"m1": ((B, 1),), "f1": ((A, 5),)} if ts else {}
        group.on_envelope(
            B,
            FlexCastMsg(
                message=msg("m1", {B, C}),
                history=EMPTY_DELTA,
                ts_proposals=proposals.get("m1", ()),
            ),
        )
        group.on_envelope(
            A,
            FlexCastMsg(
                message=msg("f1", {A, C}, is_flush=True),
                history=delta(
                    [("m1", {B, C}), ("f1", {A, C})], edges=[("m1", "f1")]
                ),
                ts_proposals=proposals.get("f1", ()),
            ),
        )

    def test_duplicate_of_gc_pruned_message_not_redelivered(self, overlay):
        group, transport, sink = make_group(C, overlay)
        self._deliver_and_gc(group)
        assert sink.sequence(C) == ["m1", "f1"]
        assert group.history.is_forgotten("m1")
        # The duplicate arrives after the GC discarded delivered_in_g.
        group.on_envelope(
            B, FlexCastMsg(message=msg("m1", {B, C}), history=EMPTY_DELTA)
        )
        assert sink.sequence(C) == ["m1", "f1"]
        assert all(size == 0 for size in group.queue_sizes().values())

    def test_duplicate_of_gc_pruned_message_inert_in_hybrid_mode(self, overlay):
        transport, sink = RecordingTransport(C), RecordingSink()
        group = FlexCastGroup(C, overlay, transport, sink, hybrid=True)
        self._deliver_and_gc(group, ts=True)
        assert sink.sequence(C) == ["m1", "f1"]
        assert group.history.is_forgotten("m1")
        # Without the forgotten-id enqueue guard this would re-enqueue a
        # message the authority refuses to re-propose, and the convoy gate
        # would (correctly) refuse to pass it — crashing the run instead of
        # absorbing the duplicate.
        group.on_envelope(
            B,
            FlexCastMsg(
                message=msg("m1", {B, C}),
                history=EMPTY_DELTA,
                ts_proposals=((B, 1),),
            ),
        )
        assert sink.sequence(C) == ["m1", "f1"]
        assert all(size == 0 for size in group.queue_sizes().values())
        assert group.ts is not None and not group.ts.is_pending("m1")
