"""Unit tests for FlexCast histories and diff tracking."""

import pytest

from repro.core.history import History, HistoryDiffTracker
from repro.core.message import HistoryDelta, Message


def msg(mid, dst):
    return Message(msg_id=mid, dst=frozenset(dst))


class TestRecordDelivery:
    def test_delivery_builds_total_order(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        h.record_delivery(msg("m2", {1, 2}))
        h.record_delivery(msg("m3", {1}))
        assert h.last_delivered == "m3"
        assert ("m1", "m2") in h.edges()
        assert ("m2", "m3") in h.edges()
        assert len(h) == 3 and h.num_edges == 2

    def test_first_delivery_has_no_predecessor(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        assert h.num_edges == 0

    def test_vertex_insertion_idempotent(self):
        h = History()
        h.add_vertex("m1", frozenset({1}))
        h.add_vertex("m1", frozenset({1}))
        assert len(h) == 1

    def test_self_edge_ignored(self):
        h = History()
        h.add_vertex("m1", frozenset({1}))
        h.add_edge("m1", "m1")
        assert h.num_edges == 0

    def test_edge_to_unknown_vertex_ignored(self):
        h = History()
        h.add_vertex("m1", frozenset({1}))
        h.add_edge("m1", "ghost")
        assert h.num_edges == 0


class TestMergeDelta:
    def test_merge_adds_vertices_and_edges(self):
        h = History()
        delta = HistoryDelta(
            vertices=(("m1", frozenset({1})), ("m2", frozenset({2}))),
            edges=(("m1", "m2"),),
        )
        h.merge_delta(delta)
        assert "m1" in h and "m2" in h
        assert h.depends("m2", "m1")

    def test_merge_none_or_empty_is_noop(self):
        h = History()
        h.merge_delta(None)
        h.merge_delta(HistoryDelta())
        assert len(h) == 0

    def test_merge_does_not_change_last_delivered(self):
        h = History()
        h.record_delivery(msg("mine", {1}))
        h.merge_delta(HistoryDelta(vertices=(("other", frozenset({2})),), last_delivered="other"))
        assert h.last_delivered == "mine"


class TestDependencies:
    def test_direct_and_transitive_dependency(self):
        h = History()
        for mid in ("m1", "m2", "m3"):
            h.record_delivery(msg(mid, {1}))
        assert h.depends("m2", "m1")
        assert h.depends("m3", "m1")  # transitive through m2
        assert not h.depends("m1", "m3")

    def test_depends_false_for_unknown_or_same_message(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        assert not h.depends("m1", "m1")
        assert not h.depends("m1", "ghost")

    def test_ancestors_of(self):
        h = History()
        for mid in ("m1", "m2", "m3"):
            h.record_delivery(msg(mid, {1}))
        assert h.ancestors_of("m3") == {"m1", "m2"}
        assert h.ancestors_of("m1") == set()

    def test_messages_addressed_to(self):
        h = History()
        h.add_vertex("m1", frozenset({1, 2}))
        h.add_vertex("m2", frozenset({2}))
        h.add_vertex("m3", frozenset({3}))
        assert set(h.messages_addressed_to(2)) == {"m1", "m2"}
        assert h.contains_message_to(3)
        assert not h.contains_message_to(4)

    def test_no_cycle_in_normal_histories(self):
        h = History()
        for mid in ("m1", "m2", "m3"):
            h.record_delivery(msg(mid, {1}))
        assert not h.has_cycle()

    def test_cycle_detection(self):
        h = History()
        h.add_vertex("a", frozenset({1}))
        h.add_vertex("b", frozenset({1}))
        h.add_edge("a", "b")
        h.add_edge("b", "a")
        assert h.has_cycle()


class TestPruning:
    def _history_with_chain(self, n=5):
        h = History()
        for i in range(n):
            h.record_delivery(msg(f"m{i}", {1}))
        return h

    def test_prune_before_removes_ancestors_of_pivot(self):
        h = self._history_with_chain()
        removed = h.prune_before("m3")
        assert removed == 3
        assert set(h.message_ids()) == {"m3", "m4"}

    def test_prune_keeps_protected_ids(self):
        h = self._history_with_chain()
        h.prune_before("m4", keep={"m2"})
        assert "m2" in h and "m1" not in h

    def test_pruned_messages_are_forgotten_on_merge(self):
        h = self._history_with_chain()
        h.prune_before("m3")
        h.merge_delta(HistoryDelta(vertices=(("m1", frozenset({1})),), edges=(("m1", "m3"),)))
        assert "m1" not in h
        assert h.forgotten_count == 3
        assert h.is_forgotten("m1")

    def test_prune_updates_edges(self):
        h = self._history_with_chain()
        h.prune_before("m3")
        assert all("m1" not in edge and "m2" not in edge for edge in h.edges())

    def test_full_delta_round_trip(self):
        h = self._history_with_chain(3)
        other = History()
        other.merge_delta(h.full_delta())
        assert set(other.message_ids()) == set(h.message_ids())
        assert set(other.edges()) == set(h.edges())


class TestDiffTracker:
    def test_first_diff_ships_everything(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        h.record_delivery(msg("m2", {1}))
        tracker = HistoryDiffTracker()
        delta = tracker.diff_for(7, h)
        assert {v[0] for v in delta.vertices} == {"m1", "m2"}
        assert ("m1", "m2") in delta.edges

    def test_second_diff_ships_only_new_content(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)
        h.record_delivery(msg("m2", {1}))
        delta = tracker.diff_for(7, h)
        assert {v[0] for v in delta.vertices} == {"m2"}

    def test_diff_tracked_per_descendant(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)
        delta_for_other = tracker.diff_for(8, h)
        assert {v[0] for v in delta_for_other.vertices} == {"m1"}

    def test_no_change_returns_empty_delta(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)
        assert tracker.diff_for(7, h).is_empty

    def test_forget_allows_bookkeeping_to_shrink(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)
        tracker.forget(["m1"])
        assert tracker.sent_to(7) == set()


class TestJournal:
    """The change journal / watermark contract (DESIGN.md)."""

    def test_version_counts_every_new_vertex_and_edge(self):
        h = History()
        assert h.version == 0
        h.record_delivery(msg("m1", {1}))
        assert h.version == 1  # vertex only, no predecessor edge
        h.record_delivery(msg("m2", {1}))
        assert h.version == 3  # vertex + edge

    def test_duplicate_insertions_do_not_grow_the_journal(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        h.record_delivery(msg("m2", {1}))
        before = h.version
        h.add_vertex("m1", frozenset({1}))
        h.add_edge("m1", "m2")
        assert h.version == before

    def test_changes_since_slices_past_the_watermark(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        watermark = h.version
        h.record_delivery(msg("m2", {1}))
        vertices, edges, snapshot, version = h.changes_since(watermark)
        assert [mid for mid, _ in vertices] == ["m2"]
        assert edges == (("m1", "m2"),)
        assert snapshot is None
        assert version == h.version
        assert h.changes_since(version) == ((), (), None, version)

    def test_compaction_keeps_full_snapshot_for_new_descendants(self):
        h = History()
        for i in range(4):
            h.record_delivery(msg(f"m{i}", {1}))
        h.compact_journal(h.version)
        assert h.journal_len == 0
        vertices, edges, snapshot, _ = h.changes_since(0)
        assert snapshot is not None and not vertices and not edges
        assert set(snapshot.ids) == {"m0", "m1", "m2", "m3"}
        assert set(snapshot.iter_edges()) == {
            ("m0", "m1"),
            ("m1", "m2"),
            ("m2", "m3"),
        }


class TestGcDiffTrackerInteraction:
    """Regression tests: pruning must never leak into later deltas."""

    def _chain(self, n):
        h = History()
        for i in range(n):
            h.record_delivery(msg(f"m{i}", {1}))
        return h

    def test_pruned_message_never_reappears_in_a_later_diff(self):
        # Vertices journaled *after* the descendant's watermark and then
        # pruned before the next diff must not be shipped.
        h = self._chain(3)
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)  # descendant knows m0..m2
        for i in range(3, 6):
            h.record_delivery(msg(f"m{i}", {1}))
        victims = h.collect_garbage("m5", keep={h.last_delivered})
        assert victims == {"m0", "m1", "m2", "m3", "m4"}
        tracker.forget(victims, history=h)
        delta = tracker.diff_for(7, h)
        shipped = {v[0] for v in delta.vertices}
        assert not (shipped & victims)
        assert all(a not in victims and b not in victims for a, b in delta.edges)

    def test_forget_leaves_watermarks_consistent(self):
        h = self._chain(4)
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)
        watermark = tracker.watermark(7)
        victims = h.collect_garbage("m3", keep={h.last_delivered})
        tracker.forget(victims, history=h)
        # Watermarks are absolute sequence numbers: compaction must not move
        # them, and a subsequent diff ships exactly the new content.
        assert tracker.watermark(7) == watermark
        h.record_delivery(msg("m4", {1}))
        delta = tracker.diff_for(7, h)
        assert {v[0] for v in delta.vertices} == {"m4"}
        assert delta.edges == (("m3", "m4"),)

    def test_forget_compacts_the_journal_up_to_the_lowest_watermark(self):
        h = self._chain(5)
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)
        assert h.journal_len == 9  # 5 vertices + 4 edges
        victims = h.collect_garbage("m4", keep=set())
        dropped = tracker.forget(victims, history=h)
        assert dropped == 9
        assert h.journal_len == 0 and h.journal_base == 9

    def test_lagging_descendant_blocks_compaction(self):
        h = self._chain(3)
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)
        lag_watermark = 1
        tracker._watermarks[8] = lag_watermark  # descendant 8 saw only m0
        victims = h.collect_garbage("m2", keep=set())
        tracker.forget(victims, history=h)
        assert h.journal_base == lag_watermark
        # Descendant 8 still receives everything live it has not seen.
        delta = tracker.diff_for(8, h)
        assert {v[0] for v in delta.vertices} == {"m2"}

    def test_stale_descendant_cannot_pin_the_journal_forever(self):
        # A descendant this group stopped sending to must not make the
        # journal grow without bound: compaction is capped relative to the
        # live history size and the stale descendant falls back to a full
        # live snapshot on its next diff.
        h = History()
        tracker = HistoryDiffTracker()
        h.record_delivery(msg("m0", {1}))
        tracker.diff_for(9, h)  # descendant 9 never contacted again
        stale_watermark = tracker.watermark(9)
        for i in range(1, 400):
            h.record_delivery(msg(f"m{i}", {1}))
        victims = h.collect_garbage(h.last_delivered, keep={h.last_delivered})
        tracker.forget(victims, history=h)
        live = len(h) + h.num_edges
        assert h.journal_len <= HistoryDiffTracker._JOURNAL_SLACK * live + HistoryDiffTracker._JOURNAL_MIN
        assert h.journal_base > stale_watermark
        # The lapsed descendant still converges: full live snapshot once
        # (shipped in packed form on the cold path).
        delta = tracker.diff_for(9, h)
        assert {v[0] for v in delta.iter_vertices()} == set(h.message_ids())
        assert tracker.diff_for(9, h).is_empty

    def test_new_descendant_after_gc_gets_only_live_history(self):
        h = self._chain(4)
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)
        victims = h.collect_garbage("m3", keep=set())
        tracker.forget(victims, history=h)
        delta = tracker.diff_for(8, h)  # brand-new descendant
        assert {v[0] for v in delta.iter_vertices()} == {"m3"}
        assert tuple(delta.iter_edges()) == ()
