"""Unit tests for FlexCast histories and diff tracking."""

import pytest

from repro.core.history import History, HistoryDiffTracker
from repro.core.message import HistoryDelta, Message


def msg(mid, dst):
    return Message(msg_id=mid, dst=frozenset(dst))


class TestRecordDelivery:
    def test_delivery_builds_total_order(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        h.record_delivery(msg("m2", {1, 2}))
        h.record_delivery(msg("m3", {1}))
        assert h.last_delivered == "m3"
        assert ("m1", "m2") in h.edges()
        assert ("m2", "m3") in h.edges()
        assert len(h) == 3 and h.num_edges == 2

    def test_first_delivery_has_no_predecessor(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        assert h.num_edges == 0

    def test_vertex_insertion_idempotent(self):
        h = History()
        h.add_vertex("m1", frozenset({1}))
        h.add_vertex("m1", frozenset({1}))
        assert len(h) == 1

    def test_self_edge_ignored(self):
        h = History()
        h.add_vertex("m1", frozenset({1}))
        h.add_edge("m1", "m1")
        assert h.num_edges == 0

    def test_edge_to_unknown_vertex_ignored(self):
        h = History()
        h.add_vertex("m1", frozenset({1}))
        h.add_edge("m1", "ghost")
        assert h.num_edges == 0


class TestMergeDelta:
    def test_merge_adds_vertices_and_edges(self):
        h = History()
        delta = HistoryDelta(
            vertices=(("m1", frozenset({1})), ("m2", frozenset({2}))),
            edges=(("m1", "m2"),),
        )
        h.merge_delta(delta)
        assert "m1" in h and "m2" in h
        assert h.depends("m2", "m1")

    def test_merge_none_or_empty_is_noop(self):
        h = History()
        h.merge_delta(None)
        h.merge_delta(HistoryDelta())
        assert len(h) == 0

    def test_merge_does_not_change_last_delivered(self):
        h = History()
        h.record_delivery(msg("mine", {1}))
        h.merge_delta(HistoryDelta(vertices=(("other", frozenset({2})),), last_delivered="other"))
        assert h.last_delivered == "mine"


class TestDependencies:
    def test_direct_and_transitive_dependency(self):
        h = History()
        for mid in ("m1", "m2", "m3"):
            h.record_delivery(msg(mid, {1}))
        assert h.depends("m2", "m1")
        assert h.depends("m3", "m1")  # transitive through m2
        assert not h.depends("m1", "m3")

    def test_depends_false_for_unknown_or_same_message(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        assert not h.depends("m1", "m1")
        assert not h.depends("m1", "ghost")

    def test_ancestors_of(self):
        h = History()
        for mid in ("m1", "m2", "m3"):
            h.record_delivery(msg(mid, {1}))
        assert h.ancestors_of("m3") == {"m1", "m2"}
        assert h.ancestors_of("m1") == set()

    def test_messages_addressed_to(self):
        h = History()
        h.add_vertex("m1", frozenset({1, 2}))
        h.add_vertex("m2", frozenset({2}))
        h.add_vertex("m3", frozenset({3}))
        assert set(h.messages_addressed_to(2)) == {"m1", "m2"}
        assert h.contains_message_to(3)
        assert not h.contains_message_to(4)

    def test_no_cycle_in_normal_histories(self):
        h = History()
        for mid in ("m1", "m2", "m3"):
            h.record_delivery(msg(mid, {1}))
        assert not h.has_cycle()

    def test_cycle_detection(self):
        h = History()
        h.add_vertex("a", frozenset({1}))
        h.add_vertex("b", frozenset({1}))
        h.add_edge("a", "b")
        h.add_edge("b", "a")
        assert h.has_cycle()


class TestPruning:
    def _history_with_chain(self, n=5):
        h = History()
        for i in range(n):
            h.record_delivery(msg(f"m{i}", {1}))
        return h

    def test_prune_before_removes_ancestors_of_pivot(self):
        h = self._history_with_chain()
        removed = h.prune_before("m3")
        assert removed == 3
        assert set(h.message_ids()) == {"m3", "m4"}

    def test_prune_keeps_protected_ids(self):
        h = self._history_with_chain()
        h.prune_before("m4", keep={"m2"})
        assert "m2" in h and "m1" not in h

    def test_pruned_messages_are_forgotten_on_merge(self):
        h = self._history_with_chain()
        h.prune_before("m3")
        h.merge_delta(HistoryDelta(vertices=(("m1", frozenset({1})),), edges=(("m1", "m3"),)))
        assert "m1" not in h
        assert h.forgotten_count == 3
        assert h.is_forgotten("m1")

    def test_prune_updates_edges(self):
        h = self._history_with_chain()
        h.prune_before("m3")
        assert all("m1" not in edge and "m2" not in edge for edge in h.edges())

    def test_full_delta_round_trip(self):
        h = self._history_with_chain(3)
        other = History()
        other.merge_delta(h.full_delta())
        assert set(other.message_ids()) == set(h.message_ids())
        assert set(other.edges()) == set(h.edges())


class TestDiffTracker:
    def test_first_diff_ships_everything(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        h.record_delivery(msg("m2", {1}))
        tracker = HistoryDiffTracker()
        delta = tracker.diff_for(7, h)
        assert {v[0] for v in delta.vertices} == {"m1", "m2"}
        assert ("m1", "m2") in delta.edges

    def test_second_diff_ships_only_new_content(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)
        h.record_delivery(msg("m2", {1}))
        delta = tracker.diff_for(7, h)
        assert {v[0] for v in delta.vertices} == {"m2"}

    def test_diff_tracked_per_descendant(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)
        delta_for_other = tracker.diff_for(8, h)
        assert {v[0] for v in delta_for_other.vertices} == {"m1"}

    def test_no_change_returns_empty_delta(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)
        assert tracker.diff_for(7, h).is_empty

    def test_forget_allows_bookkeeping_to_shrink(self):
        h = History()
        h.record_delivery(msg("m1", {1}))
        tracker = HistoryDiffTracker()
        tracker.diff_for(7, h)
        tracker.forget(["m1"])
        assert tracker.sent_to(7) == set()
