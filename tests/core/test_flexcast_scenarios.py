"""The three executions of Figure 3 in the paper, replayed against group C.

Each scenario feeds group C (the highest group of the A -> B -> C overlay) the
exact adversarial arrival order discussed in §4.1 and checks that C still
delivers messages in an order consistent with the rest of the system.
"""

import pytest

from repro.core.flexcast import FlexCastGroup
from repro.core.message import (
    EMPTY_DELTA,
    FlexCastAck,
    FlexCastMsg,
    FlexCastNotif,
    HistoryDelta,
    Message,
)
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.transport import RecordingTransport

A, B, C = "A", "B", "C"


@pytest.fixture
def overlay():
    return CDagOverlay([A, B, C])


def make_c(overlay):
    transport = RecordingTransport(C)
    sink = RecordingSink()
    return FlexCastGroup(C, overlay, transport, sink), sink


def msg(mid, dst):
    return Message(msg_id=mid, dst=frozenset(dst))


def delta(vertices, edges=(), last=None):
    return HistoryDelta(
        vertices=tuple((mid, frozenset(dst)) for mid, dst in vertices),
        edges=tuple(edges),
        last_delivered=last,
    )


class TestFigure3aHistories:
    """Scenario (a): m1 ≺ m2 at A and m2 ≺ m3 at B force m1 ≺ m3 at C,
    even though C receives m3 (from B) before m1 (from A)."""

    def test_c_delivers_m1_before_m3(self, overlay):
        group, sink = make_c(overlay)
        m1 = msg("m1", {A, C})
        m3 = msg("m3", {B, C})
        # B's forward of m3 carries B's history: m1 -> m2 -> m3.
        history_from_b = delta(
            [("m1", {A, C}), ("m2", {A, B}), ("m3", {B, C})],
            edges=[("m1", "m2"), ("m2", "m3")],
        )
        group.on_envelope(B, FlexCastMsg(message=m3, history=history_from_b))
        assert sink.sequence(C) == []  # m3 must wait: m1 precedes it and is addressed to C
        group.on_envelope(A, FlexCastMsg(message=m1, history=delta([("m1", {A, C})])))
        assert sink.sequence(C) == ["m1", "m3"]


class TestFigure3bAcks:
    """Scenario (b): B delivers m1 before m2; C hears about m2 (from A) first
    and must wait for B's ack before delivering it."""

    def test_c_delivers_m1_before_m2(self, overlay):
        group, sink = make_c(overlay)
        m1 = msg("m1", {B, C})
        m2 = msg("m2", {A, B, C})
        group.on_envelope(A, FlexCastMsg(message=m2, history=delta([("m2", {A, B, C})])))
        assert sink.sequence(C) == []  # waiting for B's ack on m2
        group.on_envelope(B, FlexCastMsg(message=m1, history=delta([("m1", {B, C})])))
        assert sink.sequence(C) == ["m1"]
        group.on_envelope(
            B,
            FlexCastAck(
                message=m2,
                history=delta(
                    [("m1", {B, C}), ("m2", {A, B, C})], edges=[("m1", "m2")]
                ),
                from_group=B,
            ),
        )
        assert sink.sequence(C) == ["m1", "m2"]


class TestFigure3cNotifs:
    """Scenario (c): the dependency m1 -> m2 is created at B *after* B talked
    to C, so only a notif from A makes B push its history (and an ack) to C."""

    def test_c_delivers_m1_before_m3(self, overlay):
        group, sink = make_c(overlay)
        m1 = msg("m1", {B, C})
        m3 = msg("m3", {A, C})
        # A forwards m3 with its own history (m2 -> m3) and the fact that it
        # notified B.
        group.on_envelope(
            A,
            FlexCastMsg(
                message=m3,
                history=delta([("m2", {A, B}), ("m3", {A, C})], edges=[("m2", "m3")]),
                notified=frozenset({B}),
            ),
        )
        assert sink.sequence(C) == []  # waits for B's ack
        # B's ack (triggered by the notif) carries m1 -> m2; now C knows the
        # full chain m1 -> m2 -> m3 but m1 is still missing.
        group.on_envelope(
            B,
            FlexCastAck(
                message=m3,
                history=delta([("m1", {B, C})], edges=[("m1", "m2")]),
                from_group=B,
            ),
        )
        assert sink.sequence(C) == []
        # m1 finally arrives from its lca B; everything unblocks in order.
        group.on_envelope(B, FlexCastMsg(message=m1, history=EMPTY_DELTA))
        assert sink.sequence(C) == ["m1", "m3"]

    def test_without_waiting_for_notified_ack_order_would_break(self, overlay):
        """Ablation guard: if C ignored the notified list it would deliver m3
        before learning that m1 precedes it — exactly the violation Strategy
        (c) exists to prevent.  This documents why the mechanism is needed."""
        group, sink = make_c(overlay)
        m3 = msg("m3", {A, C})
        group.on_envelope(
            A,
            FlexCastMsg(
                message=m3,
                history=delta([("m2", {A, B}), ("m3", {A, C})], edges=[("m2", "m3")]),
                notified=frozenset(),  # pretend A never notified B
            ),
        )
        # Without the notified entry C has no reason to wait and delivers m3
        # immediately — demonstrating the ordering hazard the notif closes.
        assert sink.sequence(C) == ["m3"]


class TestEndToEndOnSimulatedNetwork:
    """Same scenarios, but executed end-to-end through the simulator with
    latencies chosen to force the adversarial arrival orders."""

    def _deploy(self, latency_rows):
        from repro.sim.events import EventLoop
        from repro.sim.latencies import LatencyMatrix
        from repro.sim.network import Network
        from repro.sim.transport import SimTransport

        loop = EventLoop()
        matrix = LatencyMatrix(matrix=latency_rows, names=["a", "b", "c"], local_latency=0.1)
        network = Network(loop, matrix)
        overlay = CDagOverlay([A, B, C])
        sink = RecordingSink()
        groups = {}
        for site, gid in enumerate([A, B, C]):
            group = FlexCastGroup(gid, overlay, SimTransport(network, gid), sink)
            groups[gid] = group
            network.register(gid, site=site, handler=group.on_envelope)
        return loop, network, groups, sink

    def test_scenario_a_end_to_end(self):
        # A -> C is slow (100 ms); A -> B and B -> C are fast, so C receives
        # m3 (via B) before m1 (direct from A).
        loop, network, groups, sink = self._deploy(
            [[0.1, 5, 100], [5, 0.1, 5], [100, 5, 0.1]]
        )
        groups[A].on_client_request(Message(msg_id="m1", dst=frozenset({A, C})))
        groups[A].on_client_request(Message(msg_id="m2", dst=frozenset({A, B})))
        loop.run(until=20.0)
        groups[B].on_client_request(Message(msg_id="m3", dst=frozenset({B, C})))
        loop.run_until_idle()
        c_order = sink.sequence(C)
        assert c_order.index("m1") < c_order.index("m3")

    def test_scenario_b_end_to_end(self):
        # A -> C fast, B -> C slower: C hears about m2 from A before m1 from B.
        loop, network, groups, sink = self._deploy(
            [[0.1, 5, 5], [5, 0.1, 60], [5, 60, 0.1]]
        )
        groups[B].on_client_request(Message(msg_id="m1", dst=frozenset({B, C})))
        loop.run(until=2.0)
        groups[A].on_client_request(Message(msg_id="m2", dst=frozenset({A, B, C})))
        loop.run_until_idle()
        c_order = sink.sequence(C)
        b_order = sink.sequence(B)
        assert b_order.index("m1") < b_order.index("m2")
        assert c_order.index("m1") < c_order.index("m2")

    def test_scenario_c_end_to_end(self):
        loop, network, groups, sink = self._deploy(
            [[0.1, 5, 5], [5, 0.1, 80], [5, 80, 0.1]]
        )
        groups[B].on_client_request(Message(msg_id="m1", dst=frozenset({B, C})))
        loop.run(until=10.0)
        groups[A].on_client_request(Message(msg_id="m2", dst=frozenset({A, B})))
        loop.run(until=20.0)
        groups[A].on_client_request(Message(msg_id="m3", dst=frozenset({A, C})))
        loop.run_until_idle()
        c_order = sink.sequence(C)
        assert c_order.index("m1") < c_order.index("m3")
        # No group ever received an application message it should not have.
        for gid, group in groups.items():
            assert group.delivered_count == len(sink.sequence(gid))
