"""Tests for flush-based garbage collection (§4.3)."""

import pytest

from repro.core.flexcast import FlexCastGroup, FlexCastProtocol
from repro.core.garbage import FlushCoordinator
from repro.core.message import ClientRequest, Message
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.events import EventLoop
from repro.sim.latencies import LatencyMatrix
from repro.sim.network import Network
from repro.sim.transport import SimTransport

A, B, C = "A", "B", "C"


def deploy():
    loop = EventLoop()
    matrix = LatencyMatrix(matrix=[[0.1, 5, 5], [5, 0.1, 5], [5, 5, 0.1]], names=list("abc"))
    network = Network(loop, matrix)
    overlay = CDagOverlay([A, B, C])
    sink = RecordingSink()
    groups = {}
    for site, gid in enumerate([A, B, C]):
        group = FlexCastGroup(gid, overlay, SimTransport(network, gid), sink)
        groups[gid] = group
        network.register(gid, site=site, handler=group.on_envelope)
    return loop, network, overlay, groups, sink


class TestFlushCoordinator:
    def test_flush_now_submits_a_flush_message_to_all_groups(self):
        loop, network, overlay, groups, sink = deploy()
        submitted = []
        coordinator = FlushCoordinator(
            loop, groups=[A, B, C], submit=submitted.append, interval_ms=100
        )
        coordinator.flush_now()
        assert len(submitted) == 1
        flush = submitted[0]
        assert flush.is_flush and flush.dst == frozenset({A, B, C})
        assert coordinator.flushes_sent == 1

    def test_periodic_flushing_until_stopped(self):
        loop, *_ = deploy()
        submitted = []
        coordinator = FlushCoordinator(
            loop, groups=[A, B], submit=submitted.append, interval_ms=50
        )
        coordinator.start()
        assert coordinator.running
        loop.run(until=175)
        coordinator.stop()
        loop.run(until=500)
        assert len(submitted) == 3
        assert not coordinator.running

    def test_start_is_idempotent(self):
        loop, *_ = deploy()
        coordinator = FlushCoordinator(loop, groups=[A], submit=lambda m: None, interval_ms=50)
        coordinator.start()
        coordinator.start()
        loop.run(until=60)
        assert coordinator.flushes_sent == 1

    def test_requires_groups(self):
        with pytest.raises(ValueError):
            FlushCoordinator(EventLoop(), groups=[], submit=lambda m: None)


class TestHistoryPruning:
    def _run_workload(self, groups, loop, count=10):
        for i in range(count):
            groups[A].on_client_request(Message(msg_id=f"w{i}", dst=frozenset({A, C})))
        loop.run_until_idle()

    def test_flush_prunes_histories_at_every_group(self):
        loop, network, overlay, groups, sink = deploy()
        self._run_workload(groups, loop)
        size_before = groups[C].history_size()
        assert size_before >= 10
        flush = Message.create([A, B, C], is_flush=True, payload_bytes=8)
        groups[overlay.lca(flush.dst)].on_client_request(flush)
        loop.run_until_idle()
        assert groups[C].history_size() < size_before
        assert groups[A].history_size() < size_before
        assert groups[C].stats["gc_pruned"] > 0

    def test_ordering_still_correct_after_gc(self):
        loop, network, overlay, groups, sink = deploy()
        self._run_workload(groups, loop, count=5)
        flush = Message.create([A, B, C], is_flush=True)
        groups[A].on_client_request(flush)
        loop.run_until_idle()
        # Messages multicast after the flush still respect ordering.
        for i in range(5):
            groups[A].on_client_request(Message(msg_id=f"post{i}", dst=frozenset({A, C})))
        loop.run_until_idle()
        c_sequence = sink.sequence(C)
        post = [m for m in c_sequence if m.startswith("post")]
        assert post == [f"post{i}" for i in range(5)]

    def test_forgotten_messages_not_resurrected_by_late_histories(self):
        loop, network, overlay, groups, sink = deploy()
        self._run_workload(groups, loop, count=3)
        flush = Message.create([A, B, C], is_flush=True)
        groups[A].on_client_request(flush)
        loop.run_until_idle()
        forgotten = groups[C].history.forgotten_count
        assert forgotten > 0
        # Merging a delta that mentions a pruned message must not re-add it.
        from repro.core.message import HistoryDelta

        groups[C].history.merge_delta(
            HistoryDelta(vertices=(("w0", frozenset({A, C})),))
        )
        assert "w0" not in groups[C].history
