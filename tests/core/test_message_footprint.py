"""Memory-footprint regression tests for the slotted message core.

The per-``Message`` budget is the point of ``slots=True``: a history holds
|H| of these between GC flushes and every envelope carries at least one, so
an accidental ``__dict__`` (one stray non-slotted subclass or a removed
``slots=True``) multiplies resident memory by several times.  These tests
pin the structural properties rather than profiling a whole run:
``sys.getsizeof`` of the bare object, absence of per-instance dicts across
the envelope hierarchy, and the id interning that makes history indexes
share one string per message id.
"""

import sys

import pytest

from repro.core import message as msg
from repro.core.message import HistoryDelta, HistorySnapshot, Message

#: Upper bound on the bare Message object (CPython 3.10-3.12 measures 96
#: bytes with 10 slots; the headroom absorbs interpreter layout changes
#: without letting a __dict__ (+56 bytes, plus the dict itself) sneak in).
MESSAGE_SIZE_BUDGET = 120


def sample():
    return Message(msg_id="m1", dst=frozenset({1, 3}))


class TestSlottedCore:
    def test_message_fits_size_budget(self):
        assert sys.getsizeof(sample()) <= MESSAGE_SIZE_BUDGET

    def test_message_has_no_instance_dict(self):
        with pytest.raises(AttributeError):
            sample().__dict__

    def test_message_rejects_ad_hoc_attributes(self):
        # Protocol state must live in the protocol group, never be stashed
        # on the shared message object (the docstring's contract); slots
        # enforce it mechanically.
        with pytest.raises((AttributeError, TypeError)):
            object.__setattr__(sample(), "scratch", 1)

    def test_every_envelope_class_is_slotted(self):
        # One non-slotted subclass reintroduces __dict__ for the whole
        # instance; sweep the module so a future envelope cannot regress.
        classes = [
            obj
            for obj in vars(msg).values()
            if isinstance(obj, type)
            and issubclass(obj, (msg.Envelope, Message, HistoryDelta, HistorySnapshot))
        ]
        assert len(classes) > 10
        for cls in classes:
            assert "__slots__" in cls.__dict__ or not hasattr(
                cls, "__dict__"
            ), f"{cls.__name__} is not slotted"
            instance_dict = getattr(cls, "__dictoffset__", 0)
            assert instance_dict == 0, f"{cls.__name__} instances carry a __dict__"

    def test_msg_ids_are_interned(self):
        # Equal ids constructed from different string objects must collapse
        # to one object, so |H| index entries share a single string.
        a = Message(msg_id="inter" + "ned-id", dst=frozenset({1}))
        b = Message(msg_id="interned" + "-id", dst=frozenset({1}))
        assert a.msg_id is b.msg_id

    def test_batch_members_are_interned_too(self):
        members = [Message(msg_id=f"mm{i}", dst=frozenset({1})) for i in range(3)]
        carrier = Message.batch_of(members, batch_id="b1")
        assert carrier.members[0].msg_id is sys.intern("mm0")
