"""Unit tests for the shared Skeen timestamp ordering authority.

:class:`repro.core.timestamps.TimestampAuthority` is the one implementation
behind both the Distributed baseline (``protocols/skeen.py``) and FlexCast's
hybrid mode (``core/flexcast.py``), so these tests pin the three behaviours
both deployments lean on: proposal **max-merge**, the **convoy wait**, and
**duplicate-propose** absorption (what makes envelope duplication and epoch
re-routes harmless).
"""

import pytest

from repro.core.timestamps import PendingTimestamp, TimestampAuthority


@pytest.fixture
def authority():
    return TimestampAuthority(0)


class TestPropose:
    def test_first_contact_assigns_increasing_local_timestamps(self, authority):
        assert authority.propose("m1", {0, 1}) == 1
        assert authority.propose("m2", {0, 2}) == 2
        assert authority.clock == 2

    def test_own_proposal_recorded(self, authority):
        authority.propose("m1", {0, 1})
        assert authority.proposals_of("m1") == ((0, 1),)

    def test_duplicate_propose_refused(self, authority):
        first = authority.propose("m1", {0, 1})
        assert first == 1
        # Re-submissions / duplicated envelopes / epoch re-routes must not
        # mint a second proposal (that could retract a disseminated bound).
        assert authority.propose("m1", {0, 1}) is None
        assert authority.clock == 1
        assert authority.proposals_of("m1") == ((0, 1),)

    def test_propose_after_complete_refused(self, authority):
        authority.propose("m1", {0})
        authority.complete("m1")
        assert authority.propose("m1", {0}) is None
        assert not authority.is_pending("m1")

    def test_singleton_destination_decides_immediately(self, authority):
        authority.propose("m1", {0})
        assert authority.decided("m1")
        assert authority.final_timestamp("m1") == 1
        assert authority.next_deliverable() == "m1"


class TestMaxMerge:
    def test_final_timestamp_is_max_of_all_proposals(self, authority):
        authority.propose("m1", {0, 1, 2})  # local ts 1
        authority.observe("m1", 1, 7)
        assert not authority.decided("m1")
        authority.observe("m1", 2, 4)
        assert authority.decided("m1")
        assert authority.final_timestamp("m1") == 7

    def test_observe_advances_clock_lamport_rule(self, authority):
        authority.observe("mx", 1, 50)
        assert authority.clock == 50
        # The next proposal must exceed every timestamp ever seen.
        assert authority.propose("m1", {0, 1}) == 51

    def test_deciding_merges_final_into_clock(self, authority):
        authority.propose("m1", {0, 1})
        authority.observe("m1", 1, 30)
        assert authority.clock == 30
        assert authority.propose("m2", {0, 1}) == 31

    def test_duplicate_proposal_keeps_max(self, authority):
        authority.propose("m1", {0, 1, 2})
        authority.observe("m1", 1, 9)
        # A duplicated envelope re-delivers an older (smaller) proposal: the
        # recorded bound must never decrease.
        changed = authority.observe("m1", 1, 3)
        assert changed is False
        assert dict(authority.proposals_of("m1"))[1] == 9
        # A *larger* re-proposal (the proposer max-merged meanwhile) raises it.
        assert authority.observe("m1", 1, 12) is True
        assert dict(authority.proposals_of("m1"))[1] == 12

    def test_early_proposal_buffered_until_first_contact(self, authority):
        # The remote proposal races ahead of our own first contact.
        assert authority.observe("m1", 1, 5) is False
        assert not authority.is_pending("m1")
        authority.propose("m1", {0, 1})
        assert authority.decided("m1")
        assert authority.final_timestamp("m1") == 6  # local 6 > remote 5

    def test_early_duplicate_keeps_max(self, authority):
        authority.observe("m1", 1, 8)
        authority.observe("m1", 1, 2)  # stale duplicate, absorbed
        authority.propose("m1", {0, 1})
        assert dict(authority.proposals_of("m1"))[1] == 8

    def test_observe_for_completed_message_only_advances_clock(self, authority):
        authority.propose("m1", {0})
        authority.complete("m1")
        assert authority.observe("m1", 1, 40) is False
        assert authority.clock == 40
        assert not authority.is_pending("m1")


class TestConvoyWait:
    def test_decided_message_waits_for_undecided_smaller_key(self, authority):
        authority.propose("m1", {0, 1})  # local ts 1, undecided
        authority.propose("m2", {0, 2})  # local ts 2
        authority.observe("m2", 2, 2)    # m2 decided at 2
        # m1 could still decide below 2?  No — but its *key* (1, "m1") is
        # smaller than (2, "m2") and m1 is undecided, so m2 must wait.
        assert authority.decided("m2")
        assert not authority.deliverable("m2")
        assert authority.next_deliverable() is None
        assert authority.blocked_on("m2") == ["m1"]

    def test_convoy_releases_when_blocker_decides_higher(self, authority):
        authority.propose("m1", {0, 1})
        authority.propose("m2", {0, 2})
        authority.observe("m2", 2, 2)
        authority.observe("m1", 1, 7)  # m1 decides at 7 > 2
        assert authority.next_deliverable() == "m2"
        authority.complete("m2")
        assert authority.next_deliverable() == "m1"

    def test_delivery_order_follows_final_timestamp_not_arrival(self, authority):
        authority.propose("m1", {0, 1})
        authority.propose("m2", {0, 1})
        # Decisions arrive m2-first, but m1's final key is smaller.
        authority.observe("m2", 1, 9)
        authority.observe("m1", 1, 5)
        delivered = []
        while (nxt := authority.next_deliverable()) is not None:
            delivered.append(nxt)
            authority.complete(nxt)
        assert delivered == ["m1", "m2"]

    def test_timestamp_tie_broken_by_message_id(self, authority):
        a = TimestampAuthority(0)
        a.propose("mb", {0, 1})
        a.propose("ma", {0, 1})
        # Both decide with final timestamp 5: the id makes the key total.
        a.observe("mb", 1, 5)
        a.observe("ma", 1, 5)
        assert a.next_deliverable() == "ma"
        a.complete("ma")
        assert a.next_deliverable() == "mb"

    def test_undecided_smallest_key_blocks_everything(self, authority):
        authority.propose("m1", {0, 1})
        authority.propose("m2", {0, 1})
        authority.observe("m2", 1, 2)
        assert authority.next_deliverable() is None
        assert authority.deliverable("m1") is False  # undecided
        assert authority.deliverable("m2") is False  # undercut risk

    def test_effective_key_is_lower_bound_until_decided(self):
        entry = PendingTimestamp(msg_id="m1", dst=frozenset({0, 1}), local_timestamp=3)
        assert entry.effective_key() == (3, "m1")
        entry.final_timestamp = 11
        assert entry.effective_key() == (11, "m1")


class TestLifecycle:
    def test_complete_retires_pending_state(self, authority):
        authority.propose("m1", {0})
        authority.complete("m1")
        assert authority.pending_count() == 0
        assert authority.is_completed("m1")
        assert authority.final_timestamp("m1") is None

    def test_forget_drops_completed_memory_and_early_buffers(self, authority):
        authority.propose("m1", {0})
        authority.complete("m1")
        authority.observe("m2", 1, 4)  # early buffer for a never-proposed id
        authority.forget(["m1", "m2"])
        assert not authority.is_completed("m1")
        # After forget the caller's own forgotten-set is the only guard, so a
        # re-propose is accepted again (FlexCast gates on history.is_forgotten).
        assert authority.propose("m1", {0}) is not None
        # The early buffer for m2 is gone: proposing sees only the local ts.
        ts = authority.propose("m2", {0, 1})
        assert authority.proposals_of("m2") == ((0, ts),)

    def test_pending_count_tracks_live_entries(self, authority):
        authority.propose("m1", {0, 1})
        authority.propose("m2", {0, 1})
        assert authority.pending_count() == 2
        authority.observe("m1", 1, 1)
        authority.complete("m1")
        assert authority.pending_count() == 1
