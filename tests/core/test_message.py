"""Unit tests for messages and protocol envelopes."""

import pytest

from repro.core.message import (
    ClientRequest,
    ClientResponse,
    EMPTY_DELTA,
    FlexCastAck,
    FlexCastMsg,
    FlexCastNotif,
    HistoryDelta,
    Message,
    PAYLOAD_KINDS,
    SkeenPropose,
    SkeenTimestamp,
    TreeForward,
    fresh_message_id,
    reset_message_ids,
)


class TestMessage:
    def test_create_assigns_unique_ids(self):
        m1 = Message.create([1, 2])
        m2 = Message.create([1, 2])
        assert m1.msg_id != m2.msg_id

    def test_reset_message_ids_restarts_counter(self):
        reset_message_ids()
        assert Message.create([1]).msg_id == "m0"

    def test_local_vs_global(self):
        assert Message.create([3]).is_local
        assert not Message.create([3]).is_global
        assert Message.create([3, 4]).is_global

    def test_empty_destination_rejected(self):
        with pytest.raises(ValueError):
            Message.create([])

    def test_destinations_normalised_to_frozenset(self):
        m = Message.create([2, 1, 2])
        assert m.dst == frozenset({1, 2})

    def test_size_grows_with_payload_and_destinations(self):
        small = Message.create([1], payload_bytes=10)
        large = Message.create([1, 2, 3], payload_bytes=500)
        assert large.size_bytes() > small.size_bytes()

    def test_flush_flag_and_repr(self):
        flush = Message.create([1, 2], is_flush=True)
        assert flush.is_flush
        assert "flush" in repr(flush)

    def test_messages_are_immutable(self):
        m = Message.create([1])
        with pytest.raises(AttributeError):
            m.msg_id = "other"

    def test_fresh_message_id_prefix(self):
        assert fresh_message_id("x").startswith("x")


class TestHistoryDelta:
    def test_empty_delta(self):
        assert EMPTY_DELTA.is_empty
        assert len(EMPTY_DELTA) == 0
        assert EMPTY_DELTA.size_bytes() == 0

    def test_size_scales_with_content(self):
        delta = HistoryDelta(
            vertices=(("m1", frozenset({1})), ("m2", frozenset({1, 2}))),
            edges=(("m1", "m2"),),
            last_delivered="m2",
        )
        assert not delta.is_empty
        assert len(delta) == 3
        assert delta.size_bytes() > 0


class TestEnvelopes:
    def test_kinds(self):
        m = Message.create([1, 2])
        assert ClientRequest(message=m).kind == "request"
        assert ClientResponse(msg_id=m.msg_id, group=1).kind == "response"
        assert FlexCastMsg(message=m, history=EMPTY_DELTA).kind == "msg"
        assert FlexCastAck(message=m, history=EMPTY_DELTA, from_group=1).kind == "ack"
        assert FlexCastNotif(message=m, history=EMPTY_DELTA, from_group=1).kind == "notif"
        assert SkeenTimestamp(msg_id=m.msg_id, timestamp=1, from_group=1).kind == "timestamp"
        assert SkeenPropose(message=m).kind == "msg"
        assert TreeForward(message=m, sequence=1).kind == "msg"

    def test_payload_kinds_cover_payload_carriers_only(self):
        # request/batch are the client submission forms (single/coalesced);
        # msg is the only group-to-group envelope that ships payloads.
        assert PAYLOAD_KINDS == {"request", "msg", "batch"}

    def test_flexcast_msg_size_includes_history(self):
        m = Message.create([1, 2], payload_bytes=50)
        delta = HistoryDelta(
            vertices=tuple((f"m{i}", frozenset({1})) for i in range(10)),
            edges=tuple((f"m{i}", f"m{i+1}") for i in range(9)),
        )
        with_history = FlexCastMsg(message=m, history=delta)
        without = FlexCastMsg(message=m, history=EMPTY_DELTA)
        assert with_history.size_bytes() > without.size_bytes()

    def test_ack_smaller_than_msg_with_same_history(self):
        m = Message.create([1, 2], payload_bytes=300)
        assert (
            FlexCastAck(message=m, history=EMPTY_DELTA, from_group=1).size_bytes()
            < FlexCastMsg(message=m, history=EMPTY_DELTA).size_bytes()
        )

    def test_all_envelopes_report_positive_size(self):
        m = Message.create([1, 2])
        envelopes = [
            ClientRequest(message=m),
            ClientResponse(msg_id=m.msg_id, group=1),
            FlexCastMsg(message=m, history=EMPTY_DELTA),
            FlexCastAck(message=m, history=EMPTY_DELTA, from_group=1),
            FlexCastNotif(message=m, history=EMPTY_DELTA, from_group=1),
            SkeenTimestamp(msg_id=m.msg_id, timestamp=3, from_group=2),
            SkeenPropose(message=m),
            TreeForward(message=m, sequence=7),
        ]
        assert all(e.size_bytes() > 0 for e in envelopes)
