"""Property-based tests (hypothesis) for the history DAG."""

from hypothesis import given, settings, strategies as st

from repro.core.history import History, HistoryDiffTracker
from repro.core.message import Message


def deliveries(min_size=1, max_size=30):
    """A random per-group delivery sequence: unique ids with random dst sets."""
    return st.lists(
        st.tuples(st.integers(0, 200), st.sets(st.integers(0, 4), min_size=1, max_size=3)),
        min_size=min_size,
        max_size=max_size,
        unique_by=lambda t: t[0],
    )


def build_history(sequence):
    history = History()
    for idx, dst in sequence:
        history.record_delivery(Message(msg_id=f"m{idx}", dst=frozenset(dst)))
    return history


class TestHistoryInvariants:
    @given(deliveries())
    @settings(max_examples=60, deadline=None)
    def test_local_deliveries_form_an_acyclic_total_order(self, sequence):
        history = build_history(sequence)
        assert not history.has_cycle()
        ids = [f"m{idx}" for idx, _ in sequence]
        # Every earlier delivery is a (transitive) dependency of every later one.
        for i in range(len(ids) - 1):
            assert history.depends(ids[i + 1], ids[i])
        # And never the other way around.
        for i in range(1, len(ids)):
            assert not history.depends(ids[0], ids[i])

    @given(deliveries())
    @settings(max_examples=60, deadline=None)
    def test_last_delivered_is_final_message(self, sequence):
        history = build_history(sequence)
        assert history.last_delivered == f"m{sequence[-1][0]}"

    @given(deliveries(min_size=2))
    @settings(max_examples=60, deadline=None)
    def test_merge_is_idempotent(self, sequence):
        history = build_history(sequence)
        other = History()
        delta = history.full_delta()
        other.merge_delta(delta)
        before = (set(other.message_ids()), set(other.edges()))
        other.merge_delta(delta)
        assert (set(other.message_ids()), set(other.edges())) == before

    @given(deliveries(min_size=3))
    @settings(max_examples=60, deadline=None)
    def test_pruning_preserves_suffix_order(self, sequence):
        history = build_history(sequence)
        ids = [f"m{idx}" for idx, _ in sequence]
        pivot = ids[len(ids) // 2]
        history.prune_before(pivot)
        survivors = ids[len(ids) // 2 :]
        # The surviving suffix still forms a total order.
        for i in range(len(survivors) - 1):
            assert history.depends(survivors[i + 1], survivors[i])
        # Everything before the pivot is gone.
        for victim in ids[: len(ids) // 2]:
            assert victim not in history

    @given(deliveries(min_size=2), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_diff_tracker_never_resends_vertices(self, sequence, split):
        split = min(split, len(sequence) - 1)
        history = History()
        tracker = HistoryDiffTracker()
        for idx, dst in sequence[:split]:
            history.record_delivery(Message(msg_id=f"m{idx}", dst=frozenset(dst)))
        first = tracker.diff_for("peer", history)
        for idx, dst in sequence[split:]:
            history.record_delivery(Message(msg_id=f"m{idx}", dst=frozenset(dst)))
        second = tracker.diff_for("peer", history)
        first_ids = {v[0] for v in first.vertices}
        second_ids = {v[0] for v in second.vertices}
        assert not (first_ids & second_ids)
        assert first_ids | second_ids == {f"m{idx}" for idx, _ in sequence}
