"""Differential tests: snapshot-install merge vs the per-item merge path.

The cold-sync tentpole replaced "re-materialise and re-apply every vertex and
edge tuple" with a packed :class:`~repro.core.message.HistorySnapshot` that
:meth:`~repro.core.history.History.merge_delta` bulk-installs (wholesale index
swap on a fresh history, batched incremental application otherwise, one WAL
record either way).  This module pins the equivalence contract from DESIGN.md:
applying the same logical content through either path must produce

* identical indexes (destinations, successors/predecessors, per-group index)
  and identical ``version`` (so descendants' diff watermarks line up);
* WAL contents that :meth:`History.recover` replays to the identical DAG on
  both storage backends, including after a snapshot round-trip;
* bit-identical per-group delivery sequences when whole protocol runs are
  driven with the snapshot path forced on vs forced off, in plain, hybrid
  and batched modes.
"""

from dataclasses import replace

import pytest

from repro.core.history import History, HistoryDiffTracker
from repro.core.message import Message
from repro.fuzz.harness import run_scenario
from repro.fuzz.profiles import apply_profile
from repro.fuzz.workload import generate_scenario
from repro.storage import FileStorage, InMemoryStorage


def build_source(length=40, extra_edges=True, prune=False):
    """A source history with chain + cross edges, optionally GC'd."""
    history = History()
    for i in range(length):
        history.record_delivery(Message(msg_id=f"m{i}", dst=frozenset({i % 4})))
    if extra_edges:
        for i in range(0, length - 5, 5):
            history.add_edge(f"m{i}", f"m{i + 5}")
    if prune:
        history.collect_garbage(f"m{length // 2}", keep={history.last_delivered})
    return history


def per_item_copy(delta, target=None):
    """The reference path: apply the delta entry by entry."""
    if target is None:  # note: an empty History is falsy (len 0)
        target = History()
    for mid, dst in delta.iter_vertices():
        target.add_vertex(mid, dst)
    for before, after in delta.iter_edges():
        target.add_edge(before, after)
    return target


def assert_same_dag(a, b):
    assert a.destinations == b.destinations
    assert a.successors == b.successors
    assert a.predecessors == b.predecessors
    for group in range(4):
        assert set(a.messages_addressed_to(group)) == set(
            b.messages_addressed_to(group)
        )
        assert a.contains_message_to(group) == b.contains_message_to(group)


class TestIndexEquivalence:
    def test_fresh_install_matches_per_item_merge(self):
        source = build_source()
        delta = source.cold_delta()
        assert delta.snapshot is not None
        installed = History()
        installed.merge_delta(delta)
        reference = per_item_copy(delta)
        assert_same_dag(installed, reference)
        # Same version: a descendant's watermark advanced by either path
        # slices the same journal suffix afterwards.
        assert installed.version == reference.version

    def test_install_into_nonempty_history_matches(self):
        # The non-fresh path: the target already holds an overlapping prefix,
        # so both paths must idempotently skip the duplicates.
        source = build_source()
        delta = source.cold_delta()
        prefix = build_source(length=15, extra_edges=False)
        installed = per_item_copy(prefix.full_delta())
        reference = per_item_copy(prefix.full_delta())
        installed.merge_delta(delta)
        per_item_copy(delta, target=reference)
        assert_same_dag(installed, reference)
        assert installed.version == reference.version

    def test_forgotten_ids_never_resurrected_by_install(self):
        # A target that garbage-collected a message must filter it out of a
        # bulk install exactly like the per-entry path does.
        source = build_source()
        delta = source.cold_delta()
        installed = per_item_copy(build_source(length=20, extra_edges=False).full_delta())
        reference = per_item_copy(build_source(length=20, extra_edges=False).full_delta())
        for target in (installed, reference):
            target.collect_garbage("m10", keep=set())
        installed.merge_delta(delta)
        per_item_copy(delta, target=reference)
        assert_same_dag(installed, reference)
        assert not any(target.is_forgotten(mid) and mid in target.destinations
                       for target in (installed, reference)
                       for mid in ("m10",))
        assert "m9" not in installed.destinations  # ancestor of the pivot

    def test_gc_pruned_source_ships_only_live_content(self):
        source = build_source(prune=True)
        delta = source.cold_delta()
        installed = History()
        installed.merge_delta(delta)
        assert set(installed.message_ids()) == set(source.message_ids())
        assert set(installed.edges()) == set(source.edges())

    def test_installed_history_serves_full_cold_diff_to_descendants(self):
        # After a wholesale install the journal starts pre-compacted
        # (journal_base > 0): a fresh descendant's watermark falls below the
        # base and must receive the complete live content via the cold path.
        source = build_source()
        installed = History()
        installed.merge_delta(source.cold_delta())
        assert installed.journal_base > 0
        delta = HistoryDiffTracker().diff_for("peer", installed)
        assert set(delta.iter_vertices()) == set(
            source.full_delta().vertices
        )
        assert set(delta.iter_edges()) == set(source.edges())


class TestWalEquivalence:
    @pytest.fixture(params=["memory", "file"])
    def make_storage(self, request, tmp_path):
        if request.param == "memory":
            return InMemoryStorage
        counter = {"i": 0}

        def make():
            counter["i"] += 1
            return FileStorage(tmp_path / f"s{counter['i']}")

        return make

    def test_recovery_identical_after_either_merge_path(self, make_storage):
        source = build_source()
        delta = source.cold_delta()

        installed, reference = History(), History()
        storage_a, storage_b = make_storage(), make_storage()
        installed.attach_storage(storage_a, "h")
        reference.attach_storage(storage_b, "h")
        installed.merge_delta(delta)
        per_item_copy(delta, target=reference)

        # The bulk path paid ONE durable append for the whole transfer; the
        # per-entry path paid one per vertex/edge.  Both must recover to the
        # same DAG.
        assert len(storage_a.wal("h.journal")) == 1
        assert len(storage_b.wal("h.journal")) == len(delta)
        recovered_a = History.recover(storage_a, "h")
        recovered_b = History.recover(storage_b, "h")
        assert_same_dag(recovered_a, recovered_b)
        assert_same_dag(recovered_a, installed)

    def test_snapshot_round_trip_after_bulk_install(self, make_storage):
        # snapshot_now + recover after a bulk install: the durable snapshot
        # form must reproduce the installed DAG exactly.
        source = build_source(prune=True)
        installed = History()
        installed.attach_storage(make_storage(), "h")
        installed.merge_delta(source.cold_delta())
        installed.record_delivery(Message(msg_id="post", dst=frozenset({1})))
        installed.snapshot_now()
        recovered = History.recover(installed._storage, "h")
        assert_same_dag(recovered, installed)
        assert recovered.last_delivered == "post"
        assert recovered.delivered_locally == installed.delivered_locally


#: Seeds matching the batching differential suite's generator coverage.
SEEDS = (3, 7, 11)


class TestDeliverySequenceEquivalence:
    """Forcing the snapshot cold path on/off must not change any delivery.

    ``COLD_SYNC_MIN_ENTRIES = 1`` makes every first-contact diff ship a
    packed snapshot; a huge value keeps every such diff on the per-item
    journal-slice form.  Both carry the same logical content at the same
    simulated size, so whole runs must be *bit-identical* — same per-group
    delivery sequences, not just the same sets.
    """

    def _run(self, seed, hybrid, batch_window, monkeypatch, cold_min):
        monkeypatch.setattr(
            "repro.core.history.COLD_SYNC_MIN_ENTRIES", cold_min
        )
        scenario = apply_profile(generate_scenario(seed, "none"), "none")
        scenario = replace(scenario, hybrid=hybrid, batch_window=batch_window)
        return run_scenario(scenario)

    @pytest.mark.parametrize("hybrid", [False, True], ids=["plain", "hybrid"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sequences_identical(self, seed, hybrid, monkeypatch):
        snap = self._run(seed, hybrid, 1, monkeypatch, cold_min=1)
        item = self._run(seed, hybrid, 1, monkeypatch, cold_min=10**9)
        assert snap.sequences == item.sequences
        assert snap.violations == item.violations
        assert snap.ordering_anomalies == item.ordering_anomalies

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_sequences_identical_batched(self, seed, monkeypatch):
        snap = self._run(seed, False, 16, monkeypatch, cold_min=1)
        item = self._run(seed, False, 16, monkeypatch, cold_min=10**9)
        assert snap.sequences == item.sequences
        assert snap.violations == item.violations
