"""Unit tests for the pivot-consistency guard (the lost-delivery fix).

The guard closes the Strategy (c) ack race: a notified group's ack promises
the pivot's destinations that its dependency contribution is final, so the
group must not let unrelated messages overtake known predecessors of an
acked pivot.  See DESIGN.md "anatomy of a lost delivery".
"""

from collections import deque

import pytest

from repro.core.flexcast import FlexCastGroup, FlexCastProtocol
from repro.core.message import (
    EMPTY_DELTA,
    ClientRequest,
    FlexCastAck,
    FlexCastMsg,
    FlexCastNotif,
    HistoryDelta,
    Message,
)
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.transport import RecordingTransport

A, B, C, D = 0, 1, 2, 3


def make_group(gid, order=(A, B, C, D), pivot_guard=True):
    transport = RecordingTransport(gid)
    sink = RecordingSink()
    group = FlexCastGroup(
        gid, CDagOverlay(list(order)), transport, sink, pivot_guard=pivot_guard
    )
    return group, transport, sink


def msg(msg_id, dst):
    return Message(msg_id=msg_id, dst=frozenset(dst))


def delta(vertices, edges=()):
    return HistoryDelta(
        vertices=tuple((m, frozenset(d)) for m, d in vertices),
        edges=tuple(edges),
    )


class TestGuardBlocks:
    def test_candidate_waits_for_known_pivot_predecessor(self):
        """B acked pivot P; pending Y precedes P; unrelated X must wait."""
        group, transport, sink = make_group(B)
        # Notif for P (dst {A, C}) with empty history: acked immediately.
        group.on_envelope(A, FlexCastNotif(message=msg("P", {A, C}), history=EMPTY_DELTA, from_group=A))
        assert "P" in group._notif_pivots
        # Now B learns: Y (addressed to B) precedes P — Y's msg is pending.
        group.on_envelope(
            A,
            FlexCastMsg(
                message=msg("Y", {A, B}),
                history=delta([("Y", {A, B}), ("P", {A, C})], edges=[("Y", "P")]),
            ),
        )
        # Y needs nothing else; it delivers straight away, so re-inject a
        # blocked state: X (client message at its lca B) while Y pending.
        group2, transport2, sink2 = make_group(B)
        group2.on_envelope(A, FlexCastNotif(message=msg("P", {A, C}), history=EMPTY_DELTA, from_group=A))
        # Y arrives but cannot deliver yet (needs A's ack? no — make it
        # dependent on an undelivered local message W instead).
        group2._merge_history(
            delta(
                [("W", {A, B}), ("Y", {A, B}), ("P", {A, C})],
                edges=[("W", "Y"), ("Y", "P")],
            )
        )
        entry = group2._pending_for(msg("Y", {A, B}))
        group2.queues[A].append(msg("Y", {A, B}))
        entry.enqueued = True
        # X is unrelated to P: the guard must hold it behind Y.
        assert not group2._pivot_guard_allows("X")
        # Y itself precedes the pivot: allowed (delivers first).
        assert group2._pivot_guard_allows("Y")

    def test_unguarded_mode_lets_everything_through(self):
        group, transport, sink = make_group(B, pivot_guard=False)
        group.on_envelope(A, FlexCastNotif(message=msg("P", {A, C}), history=EMPTY_DELTA, from_group=A))
        group._merge_history(
            delta([("Y", {A, B}), ("P", {A, C})], edges=[("Y", "P")])
        )
        assert group._pivot_guard_allows("X")

    def test_client_message_parks_behind_pivot_predecessor(self):
        """The lca no longer jumps client messages ahead of a known
        pre-pivot message (the g8 half of the original bug)."""
        group, transport, sink = make_group(A, order=(A, B, C, D))
        # A is notified about P and acks (no open deps yet).
        group.on_envelope(B, FlexCastNotif(message=msg("P", {B, C}), history=EMPTY_DELTA, from_group=B))
        # Then A learns Y (addressed to A, lca B) precedes P; Y is pending.
        group.on_envelope(
            B,
            FlexCastMsg(
                message=msg("Y", {B, A, D}),
                history=delta(
                    [("Y", {B, A, D}), ("P", {B, C})], edges=[("Y", "P")]
                ),
            ),
        )
        # Y waits for nothing?  dst ancestors of A: only lca B — so Y
        # delivered already; force a pending Y variant instead:
        if "Y" in group.delivered_in_g:
            # Y delivered immediately: the client message flows through too.
            group.on_client_request(msg("X", {A, C}))
            assert sink.sequence(A)[-1] == "X"
            return
        group.on_client_request(msg("X", {A, C}))
        assert "X" not in sink.sequence(A)


class TestEscape:
    def test_mutual_standoff_is_broken_by_the_timer(self):
        """Two acked pivots imposing contradictory waits resolve after the
        grace period instead of deadlocking (and losing deliveries)."""
        group, transport, sink = make_group(C, order=(A, B, C, D))
        # Acked pivots P1, P2 (C is not a destination of either).
        group.on_envelope(A, FlexCastNotif(message=msg("P1", {A, D}), history=EMPTY_DELTA, from_group=A))
        group.on_envelope(B, FlexCastNotif(message=msg("P2", {B, D}), history=EMPTY_DELTA, from_group=B))
        # Y1 ≺ P1 and Y2 ≺ P2; both addressed to {A, B, C} (lca A), so both
        # stay pending until B's ack arrives — making them simultaneous.
        group.on_envelope(
            A,
            FlexCastMsg(
                message=msg("Y1", {A, B, C}),
                history=delta([("Y1", {A, B, C}), ("P1", {A, D})], edges=[("Y1", "P1")]),
            ),
        )
        group.on_envelope(
            A,
            FlexCastMsg(
                message=msg("Y2", {A, B, C}),
                history=delta([("Y2", {A, B, C}), ("P2", {B, D})], edges=[("Y2", "P2")]),
            ),
        )
        group.on_envelope(B, FlexCastAck(message=msg("Y1", {A, B, C}), history=EMPTY_DELTA, from_group=B))
        group.on_envelope(B, FlexCastAck(message=msg("Y2", {A, B, C}), history=EMPTY_DELTA, from_group=B))
        # Each is the other's guard blocker: neither delivered yet.
        assert sink.sequence(C) == []
        assert group._escape_timer is not None
        # The blocker sits *behind* the blocked head in the same queue, so
        # the mutual-stand-off fast path cannot see it; the stalled-progress
        # backstop forces the release after a few grace periods.
        for _ in range(8):
            transport.advance(group.guard_escape_ms + 1)
        assert sorted(sink.sequence(C)) == ["Y1", "Y2"]
        assert group.stats["guard_escapes"] >= 1


class TestPoisonTolerance:
    def test_cycle_contradiction_does_not_lose_deliveries(self):
        """A merged delta carrying a delivery cycle must not deadlock the
        group (the pre-fix 11/12 symptom)."""
        group, transport, sink = make_group(C, order=(A, B, C))
        poisoned = delta(
            [("X", {A, C}), ("Y", {B, C})],
            edges=[("X", "Y"), ("Y", "X")],  # contradictory upstream orders
        )
        group.on_envelope(A, FlexCastMsg(message=msg("X", {A, C}), history=poisoned))
        group.on_envelope(B, FlexCastMsg(message=msg("Y", {B, C}), history=EMPTY_DELTA))
        # Both deliver despite each being the other's "predecessor".
        assert sorted(sink.sequence(C)) == ["X", "Y"]


class TestReack:
    def test_forced_promise_violation_reacks_the_pivot(self):
        """Delivering a late-arriving predecessor of an acked pivot pushes a
        fresh ack so the pivot's destinations see the new chain."""
        group, transport, sink = make_group(B, order=(A, B, C, D))
        group.on_envelope(A, FlexCastNotif(message=msg("P", {A, C}), history=EMPTY_DELTA, from_group=A))
        acks_before = [
            (dst, e) for dst, e in transport.sent
            if isinstance(e, FlexCastAck) and e.message.msg_id == "P"
        ]
        assert len(acks_before) == 1  # the original notif-ack
        # Y ≺ P arrives afterwards and is delivered here.
        group.on_envelope(
            A,
            FlexCastMsg(
                message=msg("Y", {A, B}),
                history=delta([("Y", {A, B}), ("P", {A, C})], edges=[("Y", "P")]),
            ),
        )
        assert "Y" in sink.sequence(B)
        acks_after = [
            (dst, e) for dst, e in transport.sent
            if isinstance(e, FlexCastAck) and e.message.msg_id == "P"
        ]
        assert len(acks_after) == 2  # re-acked toward P's destinations
