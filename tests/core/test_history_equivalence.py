"""Differential tests: indexed ``History`` vs a naive reference model.

The production :class:`~repro.core.history.History` maintains incremental
indexes (per-group destination index, change journal, watermark-based diff
tracking — see DESIGN.md).  This module re-implements the *seed* semantics in
the most obvious way possible — full scans everywhere, sent-sets instead of
watermarks — and drives both implementations through the same randomly
generated operation sequences (deliveries, merges, prunes, interleaved diffs
for several descendants), asserting at every step that queries and shipped
deltas are identical.
"""

from hypothesis import given, settings, strategies as st

from repro.core.history import History, HistoryDiffTracker
from repro.core.message import HistoryDelta, Message


# --------------------------------------------------------------- naive model
class NaiveHistory:
    """Reference implementation with no indexes: scans for every query."""

    def __init__(self):
        self.destinations = {}
        self.edge_set = set()
        self.last_delivered = None
        self.forgotten = set()

    def add_vertex(self, mid, dst):
        if mid in self.forgotten or mid in self.destinations:
            return
        self.destinations[mid] = dst

    def add_edge(self, before, after):
        if before in self.forgotten or after in self.forgotten:
            return
        if before not in self.destinations or after not in self.destinations:
            return
        if before == after:
            return
        self.edge_set.add((before, after))

    def record_delivery(self, message):
        self.add_vertex(message.msg_id, message.dst)
        if self.last_delivered is not None and self.last_delivered != message.msg_id:
            self.add_edge(self.last_delivered, message.msg_id)
        self.last_delivered = message.msg_id

    def merge_delta(self, delta):
        for mid, dst in delta.vertices:
            self.add_vertex(mid, dst)
        for before, after in delta.edges:
            self.add_edge(before, after)

    def depends(self, later, earlier):
        if earlier == later or earlier not in self.destinations:
            return False
        frontier = {earlier}
        seen = set()
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            for a, b in self.edge_set:
                if a == node:
                    if b == later:
                        return True
                    frontier.add(b)
        return False

    def ancestors_of(self, mid):
        result = set()
        frontier = {a for a, b in self.edge_set if b == mid}
        while frontier:
            node = frontier.pop()
            if node in result:
                continue
            result.add(node)
            frontier.update(a for a, b in self.edge_set if b == node)
        return result

    def messages_addressed_to(self, group):
        return {mid for mid, dst in self.destinations.items() if group in dst}

    def prune_before(self, pivot, keep=frozenset()):
        victims = self.ancestors_of(pivot) - set(keep) - {pivot}
        for victim in victims:
            self.destinations.pop(victim, None)
            if self.last_delivered == victim:
                self.last_delivered = None
        self.edge_set = {
            (a, b) for a, b in self.edge_set if a not in victims and b not in victims
        }
        self.forgotten.update(victims)
        return victims


class NaiveDiffTracker:
    """The seed's sent-set diff: rescan everything, subtract what was sent."""

    def __init__(self):
        self.sent_v = {}
        self.sent_e = {}

    def diff_for(self, descendant, naive):
        sent_v = self.sent_v.setdefault(descendant, set())
        sent_e = self.sent_e.setdefault(descendant, set())
        vertices = {
            (mid, dst) for mid, dst in naive.destinations.items() if mid not in sent_v
        }
        edges = naive.edge_set - sent_e
        sent_v.update(mid for mid, _ in vertices)
        sent_e.update(edges)
        return vertices, edges

    def forget(self, victims):
        victims = set(victims)
        for sent in self.sent_v.values():
            sent -= victims
        for sent in self.sent_e.values():
            sent -= {e for e in sent if e[0] in victims or e[1] in victims}


# ---------------------------------------------------------------- operations
GROUPS = list(range(5))
DESCENDANTS = ["d1", "d2"]

_op_deliver = st.tuples(
    st.just("deliver"),
    st.integers(0, 60),
    st.sets(st.sampled_from(GROUPS), min_size=1, max_size=3),
)
_op_merge = st.tuples(
    st.just("merge"),
    st.lists(
        st.tuples(st.integers(0, 60), st.sets(st.sampled_from(GROUPS), min_size=1, max_size=2)),
        min_size=0,
        max_size=4,
    ),
    st.lists(st.tuples(st.integers(0, 60), st.integers(0, 60)), min_size=0, max_size=4),
)
_op_prune = st.tuples(st.just("prune"), st.integers(0, 60))
_op_diff = st.tuples(st.just("diff"), st.sampled_from(DESCENDANTS))

operations = st.lists(
    st.one_of(_op_deliver, _op_merge, _op_prune, _op_diff), min_size=1, max_size=40
)


def apply_op(op, indexed, tracker, naive, naive_tracker):
    """Apply one operation to both implementations; compare shipped deltas."""
    kind = op[0]
    if kind == "deliver":
        _, idx, dst = op
        message = Message(msg_id=f"m{idx}", dst=frozenset(dst))
        indexed.record_delivery(message)
        naive.record_delivery(message)
    elif kind == "merge":
        _, vertices, edges = op
        delta = HistoryDelta(
            vertices=tuple((f"m{i}", frozenset(dst)) for i, dst in vertices),
            edges=tuple((f"m{a}", f"m{b}") for a, b in edges),
        )
        indexed.merge_delta(delta)
        naive.merge_delta(delta)
    elif kind == "prune":
        _, idx = op
        pivot = f"m{idx}"
        if pivot not in indexed:
            return
        keep = {indexed.last_delivered} if indexed.last_delivered else set()
        victims = indexed.collect_garbage(pivot, keep=set(keep))
        naive_victims = naive.prune_before(pivot, keep=keep)
        assert victims == naive_victims
        tracker.forget(victims, history=indexed)
        naive_tracker.forget(naive_victims)
    else:  # diff
        _, descendant = op
        delta = tracker.diff_for(descendant, indexed)
        vertices, edges = naive_tracker.diff_for(descendant, naive)
        # iter_vertices/iter_edges cover both delta forms: a warm journal
        # slice and a cold packed snapshot + suffix must carry the same
        # logical content the naive tracker computes.
        assert set(delta.iter_vertices()) == vertices
        assert set(delta.iter_edges()) == edges
        assert delta.is_empty == (not vertices and not edges)


class TestDifferentialEquivalence:
    @given(operations)
    @settings(max_examples=120, deadline=None)
    def test_random_sequences_agree(self, ops):
        indexed, tracker = History(), HistoryDiffTracker()
        naive, naive_tracker = NaiveHistory(), NaiveDiffTracker()
        for op in ops:
            apply_op(op, indexed, tracker, naive, naive_tracker)

        # Structural equality.
        assert set(indexed.message_ids()) == set(naive.destinations)
        assert set(indexed.edges()) == naive.edge_set
        assert indexed.last_delivered == naive.last_delivered

        # Query equality: destination index vs full scan.
        for group in GROUPS:
            assert (
                set(indexed.messages_addressed_to(group))
                == naive.messages_addressed_to(group)
            )
            assert indexed.contains_message_to(group) == bool(
                naive.messages_addressed_to(group)
            )

        # Reachability equality over every live pair (histories are small).
        ids = sorted(indexed.message_ids())
        for later in ids:
            for earlier in ids:
                assert indexed.depends(later, earlier) == naive.depends(
                    later, earlier
                ), (later, earlier)

    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_final_diff_flushes_identical_remainder(self, ops):
        """After any sequence, one more diff ships the same remainder."""
        indexed, tracker = History(), HistoryDiffTracker()
        naive, naive_tracker = NaiveHistory(), NaiveDiffTracker()
        for op in ops:
            apply_op(op, indexed, tracker, naive, naive_tracker)
        for descendant in DESCENDANTS:
            delta = tracker.diff_for(descendant, indexed)
            vertices, edges = naive_tracker.diff_for(descendant, naive)
            assert set(delta.iter_vertices()) == vertices
            assert set(delta.iter_edges()) == edges
        # Both descendants are now fully caught up.
        for descendant in DESCENDANTS:
            assert tracker.diff_for(descendant, indexed).is_empty
