"""Crash-restart profile: schema, determinism, recovery oracle, end-to-end runs."""

from __future__ import annotations

from repro.checker import check_recovery
from repro.fuzz import generate_scenario, run_scenario
from repro.fuzz.profiles import apply_profile
from repro.fuzz.scenario import FuzzScenario, Restart, Submission


# -------------------------------------------------------------------- scenario
class TestScenarioSchema:
    def test_restart_round_trips_through_json(self):
        scenario = FuzzScenario(
            name="s",
            order=(0,),
            submissions=(Submission(at_ms=1.0, msg_id="m0", dst=(0,)),),
            replication_factor=3,
            crashes=(),
            restarts=(Restart(at_ms=50.0, replica=1),),
            client_retries=4,
        )
        restored = FuzzScenario.from_dict(scenario.to_dict())
        assert restored == scenario
        assert restored.restarts == (Restart(at_ms=50.0, replica=1),)
        assert restored.client_retries == 4

    def test_old_schema_without_new_fields_deserializes_unchanged(self):
        # A pre-durability schedule has neither key; it must load with the
        # old defaults (no restarts, no retries) — committed regression
        # schedules replay forever.
        data = FuzzScenario(
            name="old",
            order=(0, 1),
            submissions=(Submission(at_ms=1.0, msg_id="m0", dst=(0,)),),
        ).to_dict()
        del data["restarts"]
        del data["client_retries"]
        restored = FuzzScenario.from_dict(data)
        assert restored.restarts == ()
        assert restored.client_retries == 0


class TestProfile:
    def test_profile_is_deterministic(self):
        base = generate_scenario(7)
        assert apply_profile(base, "crash-restart") == apply_profile(
            base, "crash-restart"
        )

    def test_crash_instant_shared_with_plain_crash_profile(self):
        # The crash time is drawn before the victim, so the same seed crashes
        # at the same virtual instant under both profiles (back-compat with
        # pre-existing crash seeds).
        base = generate_scenario(11)
        crash = apply_profile(base, "crash")
        crash_restart = apply_profile(base, "crash-restart")
        assert crash.crashes[0].at_ms == crash_restart.crashes[0].at_ms
        assert crash.crashes[0].replica == crash_restart.crashes[0].replica

    def test_every_crash_gets_a_later_restart(self):
        for seed in range(30):
            scenario = apply_profile(generate_scenario(seed), "crash-restart")
            assert len(scenario.restarts) == len(scenario.crashes)
            for crash, restart in zip(scenario.crashes, scenario.restarts):
                assert restart.replica == crash.replica
                assert restart.at_ms > crash.at_ms
            assert scenario.client_retries > 0
            assert scenario.expect_all_delivered

    def test_victim_varies_across_seeds(self):
        victims = {
            apply_profile(generate_scenario(seed), "crash-restart").crashes[0].replica
            for seed in range(40)
        }
        assert victims == {0, 1, 2}


# -------------------------------------------------------------- recovery oracle
class TestRecoveryOracle:
    def test_clean_recovery_passes(self):
        report = check_recovery(
            pre_crash=["a", "b"],
            rejoined=["a", "b", "c", "d"],
            reference=["a", "b", "c", "d"],
        )
        assert report.ok

    def test_duplicate_delivery_flagged(self):
        report = check_recovery(pre_crash=["a"], rejoined=["a", "b", "a"])
        assert [v.property_name for v in report.violations] == ["recovery-dup"]

    def test_lost_delivery_flagged(self):
        report = check_recovery(pre_crash=["a", "b"], rejoined=["a", "c"])
        assert "recovery-loss" in [v.property_name for v in report.violations]

    def test_reordered_prefix_flagged(self):
        report = check_recovery(pre_crash=["a", "b"], rejoined=["b", "a", "c"])
        assert [v.property_name for v in report.violations] == ["recovery-prefix"]

    def test_divergence_from_survivor_flagged(self):
        report = check_recovery(
            pre_crash=[], rejoined=["a", "x"], reference=["a", "b"]
        )
        assert "recovery-divergence" in [v.property_name for v in report.violations]

    def test_order_disagreement_with_survivor_flagged(self):
        report = check_recovery(
            pre_crash=[], rejoined=["b", "a"], reference=["a", "b"]
        )
        assert [v.property_name for v in report.violations] == ["recovery-order"]


# ------------------------------------------------------------------ end to end
class TestEndToEnd:
    def test_crash_restart_seeds_run_clean(self):
        # A small deterministic slice of the sweep; the CI sweep and the
        # nightly matrix run the wide version.
        for seed in range(6):
            scenario = apply_profile(generate_scenario(seed), "crash-restart")
            result = run_scenario(scenario)
            assert result.ok, (seed, [str(v) for v in result.violations])

    def test_double_crash_seed_runs_clean(self):
        # Find a seed whose schedule has two crash/restart pairs (the 34%
        # branch) and run it: exercises WAL reuse across incarnations.
        seed = next(
            s
            for s in range(100)
            if len(apply_profile(generate_scenario(s), "crash-restart").crashes) == 2
        )
        scenario = apply_profile(generate_scenario(seed), "crash-restart")
        result = run_scenario(scenario)
        assert result.ok, [str(v) for v in result.violations]

    def test_restarted_replica_converges_with_survivors(self):
        scenario = apply_profile(generate_scenario(3), "crash-restart")
        result = run_scenario(scenario)
        assert result.ok, [str(v) for v in result.violations]
        # The run's oracle already compared the rejoined replica against a
        # survivor; spot-check the run really did restart someone.
        assert scenario.restarts
