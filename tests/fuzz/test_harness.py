"""The fuzz harness itself: determinism, profiles, oracle wiring."""

import dataclasses

import pytest

from repro.fuzz import (
    FuzzScenario,
    Submission,
    generate_scenario,
    run_scenario,
)
from repro.fuzz.profiles import PROFILES, apply_profile
from repro.fuzz.scenario import Crash, Reconfig


def small_scenario(**overrides):
    base = FuzzScenario(
        name="unit",
        order=(0, 1, 2),
        submissions=(
            Submission(at_ms=0.0, msg_id="m0", dst=(0, 1)),
            Submission(at_ms=5.0, msg_id="m1", dst=(1, 2)),
            Submission(at_ms=9.0, msg_id="m2", dst=(0, 2)),
            Submission(at_ms=12.0, msg_id="m3", dst=(0, 1, 2)),
        ),
        uniform_ms=10.0,
        jitter_ms=1.0,
        net_seed=7,
    )
    return dataclasses.replace(base, **overrides)


class TestDeterminism:
    def test_same_scenario_same_trace(self):
        a = run_scenario(small_scenario())
        b = run_scenario(small_scenario())
        assert a.sequences == b.sequences
        assert a.events == b.events

    def test_generated_scenarios_are_pure_functions_of_seed(self):
        assert generate_scenario(5) == generate_scenario(5)
        assert generate_scenario(5) != generate_scenario(6)

    def test_scenario_json_roundtrip(self, tmp_path):
        scenario = apply_profile(generate_scenario(3, "reconfig"), "reconfig")
        path = tmp_path / "s.json"
        scenario.save(path)
        assert FuzzScenario.load(path) == scenario


class TestOracles:
    def test_clean_run_has_no_violations(self):
        result = run_scenario(small_scenario())
        assert result.strict_ok
        assert result.delivered == 9  # sum of |dst|

    def test_gc_flushes_are_injected_and_checked(self):
        result = run_scenario(small_scenario(gc_interval_ms=20.0))
        assert result.strict_ok
        assert result.submitted > 4  # flush multicasts counted too

    def test_reconfig_scenario_checks_epochs(self):
        scenario = small_scenario(
            reconfigs=(Reconfig(at_ms=30.0, order=(2, 1, 0)),)
        )
        result = run_scenario(scenario)
        assert result.strict_ok

    def test_crash_scenario_survivors_agree(self):
        scenario = small_scenario(
            submissions=tuple(
                Submission(at_ms=i * 8.0, msg_id=f"c{i}", dst=(0,))
                for i in range(20)
            ),
            replication_factor=3,
            crashes=(Crash(at_ms=45.0, replica=0),),
            expect_all_delivered=False,
        )
        result = run_scenario(scenario)
        assert result.ok, result.violations
        assert result.delivered >= 15

    def test_loss_profile_keeps_safety_only(self):
        scenario = apply_profile(generate_scenario(1, "loss"), "loss")
        assert scenario.expect_all_delivered is False
        result = run_scenario(scenario)
        assert result.ok, result.violations

    def test_every_declared_profile_runs(self):
        for profile in PROFILES:
            scenario = apply_profile(generate_scenario(2, profile), profile)
            result = run_scenario(scenario)
            assert result.ok, (profile, result.violations)


class TestBuckets:
    def test_prefix_violation_without_cycle_is_a_guarantee_breach(self):
        result = run_scenario(small_scenario())
        result.violations = ["[prefix-order] groups 0 and 1 disagree on a vs b"]
        result.finalize_buckets()
        assert not result.ok  # no cycle present: stays enforced

    def test_cycle_shadows_move_to_anomalies(self):
        result = run_scenario(small_scenario())
        result.violations = [
            "[acyclic-order] the delivery relation contains a cycle (3 nodes involved)",
            "[replay] no sequential replay exists: the union delivery relation is cyclic",
            "[integrity] group 0 delivered m0 twice",
        ]
        result.finalize_buckets()
        assert result.violations == ["[integrity] group 0 delivered m0 twice"]
        assert len(result.ordering_anomalies) == 2
