"""Sweep runner: gating semantics and CLI plumbing (small, fast slices)."""

from repro.fuzz import run_sweep
from repro.fuzz.sweep import main


class TestRunSweep:
    def test_small_sweep_is_clean_on_guarantees(self):
        summary = run_sweep(range(4), profiles=("none", "dup", "crash"), shrink_failures=False)
        assert summary.runs == 12
        assert summary.ok, [f.violations for f in summary.failures]

    def test_time_cap_stops_early(self):
        summary = run_sweep(range(1000), profiles=("none",), time_cap_s=0.0)
        assert summary.timed_out
        assert summary.runs == 0

    def test_unknown_profile_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            run_sweep(range(1), profiles=("meteor-strike",))


class TestCli:
    def test_cli_runs_and_reports(self, capsys):
        code = main(["--seeds", "2", "--profiles", "none,crash", "--quiet", "--no-shrink"])
        out = capsys.readouterr().out
        assert "sweep:" in out
        assert code == 0

    def test_cli_replay_of_committed_regression(self, capsys):
        from pathlib import Path

        schedule = (
            Path(__file__).parents[1] / "regression" / "schedules"
            / "lost_delivery_inventory.json"
        )
        # Fixed protocol replays clean...
        assert main(["--replay", str(schedule)]) == 0
        # ...and the legacy unguarded protocol still exhibits the bug.
        assert main(["--replay", str(schedule), "--unguarded"]) == 1
