"""Property tests over the single-shared-group conflict class (ISSUE 10).

The strategies (:mod:`repro.fuzz.strategies`) generate scenarios that
contain a cycle of message pairs meeting at exactly one group each — the
precondition of the plain-mode 3-cycle the conflict-scoped order claims
close.  Here hypothesis drives that class through all three delivery modes
and asserts ``strict_ok``: acyclic order is a *hard* property everywhere
now, so any anomaly is a failure, shrunk by hypothesis to a minimal
scenario.

Example counts follow the hypothesis profile (``tests/conftest.py``): the
default ``ci`` profile keeps this file fast; nightly runs set
``HYPOTHESIS_PROFILE=nightly`` for a 10x longer search.
"""

from hypothesis import given

from repro.fuzz import run_scenario
from repro.fuzz.strategies import (
    batched_single_shared_group_scenarios,
    single_shared_group_scenarios,
    single_shared_pairs,
)


class TestGeneratorShape:
    @given(scenario=single_shared_group_scenarios())
    def test_every_scenario_contains_a_single_shared_cycle(self, scenario):
        # At least a triangle's worth of exactly-one-group intersections.
        assert len(single_shared_pairs(scenario)) >= 3
        for sub in scenario.submissions:
            assert set(sub.dst) <= set(scenario.order)


class TestStrictOrderAcrossModes:
    @given(scenario=single_shared_group_scenarios())
    def test_plain_mode_with_claims_is_strictly_acyclic(self, scenario):
        result = run_scenario(scenario)
        assert result.strict_ok, result.violations + result.ordering_anomalies
        assert result.delivered == sum(
            len(s.dst) for s in scenario.submissions
        )

    @given(scenario=single_shared_group_scenarios())
    def test_hybrid_mode_is_strictly_acyclic(self, scenario):
        result = run_scenario(scenario, hybrid=True)
        assert result.strict_ok, result.violations + result.ordering_anomalies

    @given(scenario=batched_single_shared_group_scenarios())
    def test_batched_mode_is_strictly_acyclic_and_atomic(self, scenario):
        result = run_scenario(scenario)
        assert result.strict_ok, result.violations + result.ordering_anomalies
        assert result.delivered == sum(
            len(s.dst) for s in scenario.submissions
        )
