"""Batching under fault profiles: a lost batch is N lost messages, never a
partial delivery; a duplicated batch is absorbed exactly once."""

from dataclasses import replace

import pytest

from repro.fuzz.harness import _check_batch_atomicity, run_scenario
from repro.fuzz.profiles import apply_profile
from repro.fuzz.workload import generate_scenario

#: Seeds whose generated workloads actually form batches under window 8
#: (bursty submission shapes; verified by the assertions below).
LOSS_SEEDS = (2, 5, 14)


def batched(seed, profile, window=8):
    scenario = apply_profile(generate_scenario(seed, profile), profile)
    return replace(scenario, batch_window=window)


class TestLossProfile:
    @pytest.mark.parametrize("seed", LOSS_SEEDS)
    def test_dropped_batches_degrade_all_or_nothing(self, seed):
        result = run_scenario(batched(seed, "loss"))
        # Safety-only mode (loss forfeits liveness by design), but none of
        # the violations may be batch partiality — the harness's
        # batch-atomicity oracle runs on every batched scenario.
        assert result.ok, result.violations[:5]
        # Belt and braces: re-check atomicity directly from the artifacts.
        assert _check_batch_atomicity(result.sequences, result.batches) == []

    def test_a_batch_loss_is_observed(self):
        # At least one seed must actually lose batch members somewhere
        # (otherwise this file pins nothing): find a run where some group
        # delivered none of a batch that another group delivered fully.
        observed_total_loss = False
        for seed in range(0, 40):
            result = run_scenario(batched(seed, "loss"))
            assert result.ok, (seed, result.violations[:5])
            for batch_id, members in result.batches:
                per_group = [
                    sum(1 for mid in seq if mid in set(members))
                    for seq in result.sequences.values()
                ]
                if 0 in per_group and len(members) in per_group:
                    observed_total_loss = True
            if observed_total_loss:
                break
        assert observed_total_loss, "no loss run ever dropped a whole batch"


class TestDupProfile:
    @pytest.mark.parametrize("seed", (2, 5))
    def test_duplicated_batches_absorbed(self, seed):
        result = run_scenario(batched(seed, "dup"))
        # Duplication keeps liveness: everything delivered exactly once and
        # every checked property (incl. batch atomicity) holds.
        assert result.ok, result.violations[:5]
        for sequence in result.sequences.values():
            assert len(sequence) == len(set(sequence))


class TestReconfigProfile:
    def test_batches_survive_epoch_switches(self):
        # Batches are ClientRequests to the epoch layer: parked while
        # quiescing, re-routed to the new lca after the switch.
        result = run_scenario(batched(1, "reconfig"))
        assert result.ok, result.violations[:5]
        assert result.batches, "reconfig scenario formed no batches"


class TestAtomicityOracle:
    """The oracle itself must reject what the gate makes impossible."""

    def test_flags_partial_and_interleaved_batches(self):
        batches = [("b0", ("m0", "m1", "m2"))]
        partial = {0: ["m0", "m1"], 1: ["m0", "m1", "m2"]}
        assert any(
            "partial" in v for v in _check_batch_atomicity(partial, batches)
        )
        reordered = {0: ["m1", "m0", "m2"]}
        assert any(
            "out of batch order" in v
            for v in _check_batch_atomicity(reordered, batches)
        )
        interleaved = {0: ["m0", "m1", "x9", "m2"]}
        assert any(
            "interleaved" in v for v in _check_batch_atomicity(interleaved, batches)
        )
        clean = {0: ["m0", "m1", "m2"], 1: []}
        assert _check_batch_atomicity(clean, batches) == []
