"""Unit tests for the bounded-exhaustive schedule explorer (ISSUE 10).

The headline regression here is the **component-closure** one: exhaustive
exploration of the shape ``{0,2}, {1,2}, {0,1,2}`` is what exposed that
order claims scoped to the single-intersecting shapes alone are unsound —
the claim edge (e0 < e1 by timestamp) composed with two guard-ordered
covered edges (e2 < e0 at group 0, e1 < e2 at group 1) into a constraint
cycle that wedged group 2 forever.  Claims now expose whole conflict
components, and this file pins both the clean exploration of that shape and
the explorer machinery that found it.
"""

import json
from pathlib import Path

import pytest

from repro.core.flexcast import FlexCastGroup
from repro.fuzz.explore import (
    ShapeCase,
    enumerate_shapes,
    execute,
    explore_shape,
)

SCHEDULES = Path(__file__).parent.parent / "regression" / "schedules"

TRIANGLE = ShapeCase(
    num_groups=3, destinations=((0, 1), (1, 2), (0, 2)), order_claims=True
)
#: The shape whose exhaustive exploration caught the pre-component-closure
#: deadlock (see module docstring).
CLOSURE_REGRESSION = ShapeCase(
    num_groups=3, destinations=((0, 2), (1, 2), (0, 1, 2)), order_claims=True
)


class TestExecute:
    def test_single_run_delivers_everything(self):
        outcome = execute(TRIANGLE)
        assert outcome.finished
        assert outcome.violations == []
        # Each of the three messages reaches both of its destinations.
        assert outcome.delivered == 6

    def test_choices_pin_the_interleaving(self):
        first = execute(TRIANGLE)
        again = execute(TRIANGLE, choices=first.path)
        assert again.path == first.path
        assert again.violations == first.violations

    def test_strict_choices_reject_divergence(self):
        first = execute(TRIANGLE)
        bogus = (("no-such-node", 0),) + tuple(first.path[1:])
        with pytest.raises(ValueError, match="not enabled"):
            execute(TRIANGLE, choices=bogus)

    def test_nonstrict_choices_degrade_to_first_enabled(self):
        first = execute(TRIANGLE)
        bogus = (("no-such-node", 0),) + tuple(first.path[1:])
        outcome = execute(TRIANGLE, choices=bogus, strict_choices=False)
        assert outcome.finished
        assert outcome.choices_honored == 0
        assert outcome.violations == []


class TestExploreShape:
    def test_triangle_exhaustive_and_clean(self):
        stats = explore_shape(TRIANGLE)
        assert not stats.truncated
        assert stats.ok, dict(stats.violations)
        assert stats.leaves > 1  # genuinely branched

    def test_component_closure_regression_shape_is_clean(self):
        # Bounded, not exhaustive — the deadlock this pins was found within
        # the first few hundred leaves, so a capped re-exploration keeps the
        # regression cheap while still covering the racy region.
        stats = explore_shape(CLOSURE_REGRESSION, max_leaves=400)
        assert stats.ok, dict(stats.violations)
        assert stats.leaves >= 400

    def test_sleep_sets_preserve_verdict_and_shrink_tree(self):
        # Two messages keep the unpruned tree small enough to enumerate in
        # full; the triangle's unpruned tree takes minutes.
        case = ShapeCase(
            num_groups=3, destinations=((0, 1), (1, 2)), order_claims=True
        )
        pruned = explore_shape(case)
        full = explore_shape(case, prune=False)
        assert pruned.ok == full.ok
        # The reduction must only fold commuting interleavings, never add.
        assert pruned.leaves <= full.leaves
        assert pruned.nodes < full.nodes

    def test_oracles_catch_a_broken_protocol(self, monkeypatch):
        # End-to-end oracle wiring: blackhole one message's delivery
        # condition so it wedges at every destination, and the explorer's
        # per-leaf oracles must flag the quiescent-but-undelivered state.
        orig = FlexCastGroup.can_deliver
        monkeypatch.setattr(
            FlexCastGroup,
            "can_deliver",
            lambda self, message: message.msg_id != "e2"
            and orig(self, message),
        )
        stats = explore_shape(TRIANGLE, max_leaves=50)
        assert not stats.ok

    def test_budget_truncation_is_reported(self):
        stats = explore_shape(CLOSURE_REGRESSION, max_leaves=5)
        assert stats.truncated
        assert stats.leaves >= 5


class TestShapeEnumeration:
    def test_every_shape_has_a_single_shared_pair(self):
        for case in enumerate_shapes(3, 3):
            pairs = [
                (set(a), set(b))
                for i, a in enumerate(case.destinations)
                for b in case.destinations[i + 1 :]
            ]
            assert any(len(a & b) == 1 for a, b in pairs), case.label()

    def test_every_group_is_addressed(self):
        for case in enumerate_shapes(4, 4):
            used = set().union(*(set(d) for d in case.destinations))
            assert used == set(range(case.num_groups)), case.label()

    def test_all_shapes_flag_includes_covered_only_shapes(self):
        default = {c.destinations for c in enumerate_shapes(3, 3)}
        everything = {
            c.destinations
            for c in enumerate_shapes(3, 3, single_shared_only=False)
        }
        assert default < everything

    def test_three_by_three_count_is_stable(self):
        # The explore_smoke CI step sweeps exactly these shapes; a change in
        # the enumeration is a change in what "exhaustive 3x3" means and
        # must be conscious.
        assert len(list(enumerate_shapes(3, 3))) == 13


class TestScheduleRoundtrip:
    def test_to_from_dict_roundtrip(self):
        outcome = execute(CLOSURE_REGRESSION)
        data = CLOSURE_REGRESSION.to_dict(outcome.path)
        case, choices = ShapeCase.from_dict(data)
        assert case == CLOSURE_REGRESSION
        assert tuple(choices) == outcome.path

    def test_committed_closure_schedule_replays_clean(self):
        data = json.loads(
            (SCHEDULES / "explore_claims_component_closure.json").read_text()
        )
        case, choices = ShapeCase.from_dict(data)
        outcome = execute(case, choices, strict_choices=False)
        assert outcome.finished
        assert outcome.violations == []
        # All three messages fully delivered (the old bug wedged group 2
        # with zero deliveries).
        assert outcome.delivered == 7
