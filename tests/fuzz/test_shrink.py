"""Shrinker behaviour: reduction, predicate preservation, determinism."""

import pytest

from repro.fuzz import FuzzScenario, Submission, shrink_scenario
from repro.fuzz.shrink import _ddmin_submissions


def scenario_with(submissions):
    return FuzzScenario(
        name="shrink-unit",
        order=(0, 1, 2, 3),
        submissions=tuple(submissions),
        uniform_ms=10.0,
    )


class TestDdmin:
    def test_reduces_to_the_failure_core(self):
        # The "bug" is simply the presence of the two marked submissions.
        needles = {"bad1", "bad2"}
        submissions = [
            Submission(at_ms=float(i), msg_id=f"m{i}", dst=(i % 4, (i + 1) % 4))
            for i in range(40)
        ] + [
            Submission(at_ms=50.0, msg_id="bad1", dst=(0, 1)),
            Submission(at_ms=51.0, msg_id="bad2", dst=(1, 2)),
        ]

        def fails(scenario):
            present = {s.msg_id for s in scenario.submissions}
            return needles <= present

        shrunk = shrink_scenario(scenario_with(submissions), fails=fails)
        assert {s.msg_id for s in shrunk.submissions} == needles

    def test_requires_a_failing_scenario(self):
        with pytest.raises(ValueError):
            shrink_scenario(
                scenario_with([Submission(at_ms=0.0, msg_id="a", dst=(0, 1))]),
                fails=lambda s: False,
            )

    def test_prunes_unused_groups(self):
        submissions = [Submission(at_ms=0.0, msg_id="a", dst=(0, 1))]

        def fails(scenario):
            return any(s.msg_id == "a" for s in scenario.submissions)

        shrunk = shrink_scenario(scenario_with(submissions), fails=fails)
        assert set(shrunk.order) == {0, 1}

    def test_shrink_is_deterministic(self):
        submissions = [
            Submission(at_ms=float(i), msg_id=f"m{i}", dst=(i % 4, (i + 2) % 4))
            for i in range(30)
        ]

        def fails(scenario):
            return sum(1 for s in scenario.submissions if int(s.msg_id[1:]) % 3 == 0) >= 2

        a = shrink_scenario(scenario_with(submissions), fails=fails)
        b = shrink_scenario(scenario_with(submissions), fails=fails)
        assert a == b
        assert len(a.submissions) == 2
