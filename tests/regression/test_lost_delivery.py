"""Regression: the ``replicated_inventory`` lost-delivery schedule.

The JSON schedules in ``schedules/`` were produced by the fuzz harness from
the example's exact workload (ISSUE 3): the full 300-transfer scenario
reproduces the original ``11/12 warehouses`` failure, and the ddmin-shrunk
12-submission schedule pins its root cause — the Strategy (c) ack race that
lets groups commit complementary halves of a delivery cycle, which then
deadlocked the highest-ranked destination forever (four transfers applied at
only one endpoint).

``pivot_guard=False`` reverts to the seed's unguarded behaviour, so the
shrunk schedule still demonstrably fails there and must stay clean on the
fixed protocol.

The full schedule doubles as the gate for the hybrid Skeen-timestamp
ordering authority (ISSUE 4): the committed JSON pins ``hybrid: true``, under
which the run must be *strictly* clean — zero violations **and** zero
acyclic-order anomalies.  With hybrid *and* the conflict-scoped order claims
(ISSUE 10) both forced off, the same schedule still exhibits the residual
anomaly of the down-only c-DAG information flow (never a
lost/duplicated/misordered-per-pair delivery), which pins both that the hole
is real and that an ordering authority is what closes it; guarded plain mode
with claims on passes strictly, like hybrid.
"""

from pathlib import Path

import pytest

from repro.fuzz import FuzzScenario, run_scenario

SCHEDULES = Path(__file__).parent / "schedules"


@pytest.fixture(scope="module")
def shrunk():
    return FuzzScenario.load(SCHEDULES / "lost_delivery_inventory.json")


@pytest.fixture(scope="module")
def full():
    return FuzzScenario.load(SCHEDULES / "inventory_seed3_full.json")


class TestShrunkSchedule:
    def test_fails_on_unguarded_protocol(self, shrunk):
        result = run_scenario(shrunk, pivot_guard=False)
        assert not result.strict_ok
        assert any(
            "[acyclic-order]" in v
            for v in result.violations + result.ordering_anomalies
        )

    def test_passes_on_fixed_protocol(self, shrunk):
        result = run_scenario(shrunk, pivot_guard=True)
        assert result.strict_ok, result.violations + result.ordering_anomalies
        # Everything submitted is delivered at every destination.
        assert result.delivered == sum(len(s.dst) for s in shrunk.submissions)

    def test_passes_on_hybrid_protocol(self, shrunk):
        result = run_scenario(shrunk, pivot_guard=True, hybrid=True)
        assert result.strict_ok, result.violations + result.ordering_anomalies
        assert result.delivered == sum(len(s.dst) for s in shrunk.submissions)


class TestFullInventorySchedule:
    """The example's full workload, replayed through the harness.

    The committed schedule pins ``hybrid: true``, so this is the tier-1 form
    of the CI gate ``python -m repro.fuzz --replay .../inventory_seed3_full.json``.
    """

    def test_strictly_clean_in_hybrid_mode(self, full):
        assert full.hybrid, "committed schedule must pin hybrid mode"
        result = run_scenario(full)
        # Hard gate: zero violations of any kind, anomalies included — with
        # the ordering authority on, acyclic order is a guaranteed property.
        assert result.strict_ok, result.violations + result.ordering_anomalies
        # Every transfer reaches both endpoints (the original bug lost 4).
        assert result.delivered == sum(len(s.dst) for s in full.submissions)

    def test_strictly_clean_in_plain_mode_with_order_claims(self, full):
        # Since the conflict-scoped order claims (ISSUE 10) closed the
        # single-shared-group 3-cycle, guarded plain mode passes this
        # schedule strictly too — the inventory residual anomaly was the
        # same conflict class the claims arbitrate.
        result = run_scenario(full, hybrid=False)
        assert result.strict_ok, result.violations + result.ordering_anomalies
        assert result.delivered == sum(len(s.dst) for s in full.submissions)

    def test_residual_anomaly_without_hybrid_or_claims(self, full):
        result = run_scenario(full, hybrid=False, order_claims=False)
        # Guaranteed properties still hold without either authority...
        assert result.ok, result.violations
        assert result.delivered == sum(len(s.dst) for s in full.submissions)
        # ...but the down-only information flow leaves the documented
        # acyclic-order hole this schedule was committed to reproduce.
        assert result.ordering_anomalies, (
            "expected the known acyclic-order anomaly with hybrid and "
            "order claims both off; if the base protocol now closes it, "
            "fold this into DESIGN.md"
        )

    def test_shrunk_is_much_smaller_than_full(self, shrunk, full):
        assert len(shrunk.submissions) <= 15 < len(full.submissions)
