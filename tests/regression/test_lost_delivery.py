"""Regression: the ``replicated_inventory`` lost-delivery schedule.

The JSON schedules in ``schedules/`` were produced by the fuzz harness from
the example's exact workload (ISSUE 3): the full 300-transfer scenario
reproduces the original ``11/12 warehouses`` failure, and the ddmin-shrunk
12-submission schedule pins its root cause — the Strategy (c) ack race that
lets groups commit complementary halves of a delivery cycle, which then
deadlocked the highest-ranked destination forever (four transfers applied at
only one endpoint).

``pivot_guard=False`` reverts to the seed's unguarded behaviour, so the
shrunk schedule still demonstrably fails there and must stay clean on the
fixed protocol.
"""

from pathlib import Path

import pytest

from repro.fuzz import FuzzScenario, run_scenario

SCHEDULES = Path(__file__).parent / "schedules"


@pytest.fixture(scope="module")
def shrunk():
    return FuzzScenario.load(SCHEDULES / "lost_delivery_inventory.json")


@pytest.fixture(scope="module")
def full():
    return FuzzScenario.load(SCHEDULES / "inventory_seed3_full.json")


class TestShrunkSchedule:
    def test_fails_on_unguarded_protocol(self, shrunk):
        result = run_scenario(shrunk, pivot_guard=False)
        assert not result.strict_ok
        assert any(
            "[acyclic-order]" in v
            for v in result.violations + result.ordering_anomalies
        )

    def test_passes_on_fixed_protocol(self, shrunk):
        result = run_scenario(shrunk, pivot_guard=True)
        assert result.strict_ok, result.violations + result.ordering_anomalies
        # Everything submitted is delivered at every destination.
        assert result.delivered == sum(len(s.dst) for s in shrunk.submissions)


class TestFullInventorySchedule:
    """The example's full workload, replayed through the harness."""

    def test_no_guarantee_violation_on_fixed_protocol(self, full):
        result = run_scenario(full, pivot_guard=True)
        # Guaranteed properties: integrity, no-loss/no-dup, prefix order.
        assert result.ok, result.violations
        # Every transfer reaches both endpoints (the original bug lost 4).
        assert result.delivered == sum(len(s.dst) for s in full.submissions)

    def test_shrunk_is_much_smaller_than_full(self, shrunk, full):
        assert len(shrunk.submissions) <= 15 < len(full.submissions)
