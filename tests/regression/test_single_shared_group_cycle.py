"""Regression: the single-shared-group 3-cycle schedule (ISSUE 10).

The committed JSON is the ddmin-shrunk form of the hypothesis-found witness
from PR 9: three messages whose destination sets pairwise-intersect in
exactly *one* group get their three pairwise orders decided at three
independent groups, which closes a global delivery cycle
(``h0-8 < h0-3 < h0-5 < h0-8``) that the pivot guard never observes — the
order of each pair is forced the moment its shared group delivers the pair's
first element, before that group has heard of the second.

``order_claims=False`` reverts to the claim-free protocol, so the schedule
still demonstrably fails there; on the fixed protocol (conflict-scoped order
claims, the harness default for guarded plain runs) it must be *strictly*
clean — plain-mode ``acyclic-order`` is a hard property now.  Hybrid mode
was never affected (final timestamps order everything) and stays clean too.
"""

from pathlib import Path

import pytest

from repro.fuzz import FuzzScenario, run_scenario

SCHEDULES = Path(__file__).parent / "schedules"


@pytest.fixture(scope="module")
def shrunk():
    return FuzzScenario.load(SCHEDULES / "single_shared_group_3cycle.json")


class TestSingleSharedGroupCycleSchedule:
    def test_fails_without_order_claims(self, shrunk):
        result = run_scenario(shrunk, order_claims=False)
        assert not result.strict_ok
        assert any(
            "[acyclic-order]" in v
            for v in result.violations + result.ordering_anomalies
        )
        # The legacy hole never loses a delivery — poison tolerance turns
        # the cycle into a detected anomaly, not a deadlock.
        assert result.ok, result.violations
        assert result.delivered == sum(len(s.dst) for s in shrunk.submissions)

    def test_passes_on_fixed_plain_protocol(self, shrunk):
        result = run_scenario(shrunk)
        assert result.strict_ok, result.violations + result.ordering_anomalies
        assert result.delivered == sum(len(s.dst) for s in shrunk.submissions)

    def test_passes_on_hybrid_protocol(self, shrunk):
        result = run_scenario(shrunk, hybrid=True)
        assert result.strict_ok, result.violations + result.ordering_anomalies
        assert result.delivered == sum(len(s.dst) for s in shrunk.submissions)

    def test_schedule_is_single_shared_group_shaped(self, shrunk):
        """The committed shape class: some pair of destination sets
        intersects in exactly one group (what exposes it to the claims)."""
        shapes = [set(s.dst) for s in shrunk.submissions if len(s.dst) > 1]
        assert any(
            len(a & b) == 1
            for i, a in enumerate(shapes)
            for b in shapes[i + 1 :]
        )
