"""Unit tests for the simulated network."""

import pytest

from repro.sim.events import EventLoop
from repro.sim.latencies import LatencyMatrix
from repro.sim.network import Network, payload_size


def make_network(jitter=0.0, seed=0):
    loop = EventLoop()
    matrix = LatencyMatrix(
        matrix=[[0.5, 10, 50], [10, 0.5, 30], [50, 30, 0.5]],
        names=["a", "b", "c"],
        local_latency=0.5,
    )
    return loop, Network(loop, matrix, jitter_ms=jitter, seed=seed)


class Sink:
    def __init__(self):
        self.received = []

    def __call__(self, sender, payload):
        self.received.append((sender, payload))


class TestDelivery:
    def test_message_arrives_after_latency(self):
        loop, net = make_network()
        sink = Sink()
        net.register("n0", 0, lambda s, p: None)
        net.register("n1", 1, sink)
        net.send("n0", "n1", "hello")
        loop.run_until_idle()
        assert sink.received == [("n0", "hello")]
        assert loop.now == pytest.approx(10.0)

    def test_same_site_uses_local_latency(self):
        loop, net = make_network()
        sink = Sink()
        net.register("n0", 0, lambda s, p: None)
        net.register("n0b", 0, sink)
        net.send("n0", "n0b", "x")
        loop.run_until_idle()
        assert loop.now == pytest.approx(0.5)

    def test_fifo_per_channel_without_jitter(self):
        loop, net = make_network()
        sink = Sink()
        net.register("n0", 0, lambda s, p: None)
        net.register("n1", 1, sink)
        for i in range(5):
            net.send("n0", "n1", i)
        loop.run_until_idle()
        assert [p for _, p in sink.received] == [0, 1, 2, 3, 4]

    def test_fifo_preserved_with_jitter(self):
        loop, net = make_network(jitter=20.0, seed=3)
        sink = Sink()
        net.register("n0", 0, lambda s, p: None)
        net.register("n1", 1, sink)
        for i in range(50):
            net.send("n0", "n1", i)
        loop.run_until_idle()
        assert [p for _, p in sink.received] == list(range(50))

    def test_unknown_destination_raises(self):
        _, net = make_network()
        net.register("n0", 0, lambda s, p: None)
        with pytest.raises(KeyError):
            net.send("n0", "ghost", "x")

    def test_unknown_sender_raises(self):
        _, net = make_network()
        net.register("n1", 1, lambda s, p: None)
        with pytest.raises(KeyError):
            net.send("ghost", "n1", "x")

    def test_duplicate_registration_rejected(self):
        _, net = make_network()
        net.register("n0", 0, lambda s, p: None)
        with pytest.raises(ValueError):
            net.register("n0", 1, lambda s, p: None)

    def test_out_of_range_site_rejected(self):
        _, net = make_network()
        with pytest.raises(ValueError):
            net.register("n0", 99, lambda s, p: None)

    def test_message_to_unregistered_destination_dropped_silently(self):
        loop, net = make_network()
        sink = Sink()
        net.register("n0", 0, lambda s, p: None)
        net.register("n1", 1, sink)
        net.send("n0", "n1", "x")
        net.unregister("n1")
        loop.run_until_idle()
        assert sink.received == []


class TestTrafficAccounting:
    def test_counts_messages_and_bytes(self):
        loop, net = make_network()
        net.register("n0", 0, lambda s, p: None)
        net.register("n1", 1, lambda s, p: None)
        net.send("n0", "n1", "abcd")
        net.send("n0", "n1", "efghij")
        loop.run_until_idle()
        assert net.traffic("n0").messages_sent == 2
        assert net.traffic("n0").bytes_sent == 10
        assert net.traffic("n1").messages_received == 2
        assert net.traffic("n1").bytes_received == 10
        assert net.traffic("n1").average_received_size() == 5.0
        assert net.total_messages == 2

    def test_kind_breakdown_uses_payload_kind_attribute(self):
        loop, net = make_network()

        class Envelope:
            kind = "msg"

            def size_bytes(self):
                return 7

        net.register("n0", 0, lambda s, p: None)
        net.register("n1", 1, lambda s, p: None)
        net.send("n0", "n1", Envelope())
        loop.run_until_idle()
        stats = net.traffic("n1")
        assert stats.received_by_kind["msg"] == 1
        assert stats.bytes_received_by_kind["msg"] == 7

    def test_reset_traffic(self):
        loop, net = make_network()
        net.register("n0", 0, lambda s, p: None)
        net.register("n1", 1, lambda s, p: None)
        net.send("n0", "n1", "x")
        loop.run_until_idle()
        net.reset_traffic()
        assert net.traffic("n1").messages_received == 0

    def test_drop_filter_drops_messages(self):
        loop, net = make_network()
        sink = Sink()
        net.register("n0", 0, lambda s, p: None)
        net.register("n1", 1, sink)
        net.set_drop_filter(lambda src, dst, payload: payload == "drop-me")
        net.send("n0", "n1", "drop-me")
        net.send("n0", "n1", "keep-me")
        loop.run_until_idle()
        assert [p for _, p in sink.received] == ["keep-me"]


class TestPayloadSize:
    def test_size_bytes_method_preferred(self):
        class Sized:
            def size_bytes(self):
                return 123

        assert payload_size(Sized()) == 123

    def test_bytes_and_str_lengths(self):
        assert payload_size(b"abc") == 3
        assert payload_size("abcd") == 4

    def test_fallback_to_repr(self):
        assert payload_size(1234) == len(repr(1234))
