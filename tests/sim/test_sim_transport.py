"""Unit tests for the transport adapters."""

import pytest

from repro.sim.events import EventLoop
from repro.sim.latencies import LatencyMatrix
from repro.sim.network import Network
from repro.sim.transport import RecordingTransport, SimTransport


class TestSimTransport:
    def _net(self):
        loop = EventLoop()
        net = Network(loop, LatencyMatrix(matrix=[[1, 5], [5, 1]], names=["a", "b"]))
        return loop, net

    def test_send_goes_through_network(self):
        loop, net = self._net()
        received = []
        net.register("n0", 0, lambda s, p: None)
        net.register("n1", 1, lambda s, p: received.append((s, p)))
        transport = SimTransport(net, "n0")
        transport.send("n1", "payload")
        loop.run_until_idle()
        assert received == [("n0", "payload")]

    def test_now_tracks_loop(self):
        loop, net = self._net()
        net.register("n0", 0, lambda s, p: None)
        transport = SimTransport(net, "n0")
        assert transport.now() == 0.0
        loop.schedule(7.0, lambda: None)
        loop.run_until_idle()
        assert transport.now() == 7.0

    def test_schedule_uses_loop(self):
        loop, net = self._net()
        net.register("n0", 0, lambda s, p: None)
        transport = SimTransport(net, "n0")
        fired = []
        transport.schedule(3.0, lambda: fired.append(loop.now))
        loop.run_until_idle()
        assert fired == [3.0]


class TestRecordingTransport:
    def test_records_sends(self):
        t = RecordingTransport("me")
        t.send("a", 1)
        t.send("b", 2)
        t.send("a", 3)
        assert t.sent == [("a", 1), ("b", 2), ("a", 3)]
        assert t.sent_to("a") == [1, 3]

    def test_clear(self):
        t = RecordingTransport()
        t.send("a", 1)
        t.clear()
        assert t.sent == []

    def test_advance_fires_due_callbacks_in_order(self):
        t = RecordingTransport()
        fired = []
        t.schedule(5.0, lambda: fired.append("later"))
        t.schedule(1.0, lambda: fired.append("sooner"))
        t.advance(10.0)
        assert fired == ["sooner", "later"]
        assert t.now() == 10.0

    def test_cancelled_callback_does_not_fire(self):
        t = RecordingTransport()
        fired = []
        handle = t.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        t.advance(5.0)
        assert fired == []
