"""Unit tests for the AWS-style latency matrix."""

import pytest

from repro.sim.latencies import (
    AWS_REGIONS,
    NUM_REGIONS,
    LatencyMatrix,
    aws_latency_matrix,
    default_regions,
)


class TestDefaultMatrix:
    def test_twelve_regions(self):
        matrix = aws_latency_matrix()
        assert matrix.num_sites == NUM_REGIONS == 12
        assert len(default_regions()) == 12

    def test_symmetric_latencies(self):
        matrix = aws_latency_matrix()
        for a in range(matrix.num_sites):
            for b in range(matrix.num_sites):
                if a != b:
                    assert matrix.latency(a, b) == matrix.latency(b, a)

    def test_local_latency_is_small_but_positive(self):
        matrix = aws_latency_matrix()
        for site in range(matrix.num_sites):
            assert 0 < matrix.latency(site, site) < 5

    def test_rtt_is_twice_one_way(self):
        matrix = aws_latency_matrix()
        assert matrix.rtt(0, 5) == pytest.approx(2 * matrix.latency(0, 5))

    def test_names_match_region_codes(self):
        matrix = aws_latency_matrix()
        assert matrix.names == [code for code, _, _ in AWS_REGIONS]

    def test_clusters_cover_three_continents(self):
        matrix = aws_latency_matrix()
        clusters = {matrix.cluster(s) for s in range(matrix.num_sites)}
        assert clusters == {"america", "europe", "asia"}

    def test_intra_continent_closer_than_inter_continent(self):
        matrix = aws_latency_matrix()
        # Virginia <-> Ohio (both America) is closer than Virginia <-> Tokyo.
        assert matrix.latency(0, 1) < matrix.latency(0, 8)
        # Ireland <-> Frankfurt closer than Ireland <-> Sydney.
        assert matrix.latency(5, 7) < matrix.latency(5, 10)

    def test_centroid_site_is_central_not_peripheral(self):
        matrix = aws_latency_matrix()
        centroid = matrix.centroid_site()
        # The centroid sits between the continental extremes: it is never one
        # of the peripheral regions (Sao Paulo, Sydney, Tokyo, ...).
        assert matrix.cluster(centroid) in {"america", "europe"}
        totals = [
            sum(matrix.latency(s, d) for d in range(matrix.num_sites))
            for s in range(matrix.num_sites)
        ]
        assert totals[centroid] == min(totals)

    def test_nearest_sites_sorted_by_latency(self):
        matrix = aws_latency_matrix()
        nearest = matrix.nearest_sites(0)
        assert len(nearest) == 11
        distances = [matrix.latency(0, s) for s in nearest]
        assert distances == sorted(distances)

    def test_as_dict_round_trip(self):
        matrix = aws_latency_matrix()
        exported = matrix.as_dict()
        assert set(exported) == set(matrix.names)
        assert len(exported["us-east-1"]) == 12


class TestCustomMatrix:
    def test_custom_matrix_and_names(self):
        matrix = LatencyMatrix(matrix=[[0, 10], [10, 0]], names=["x", "y"], local_latency=0.1)
        assert matrix.num_sites == 2
        assert matrix.latency(0, 1) == 10
        assert matrix.latency(1, 1) == 0.1
        assert matrix.cluster(0) == "unknown"

    def test_rejects_non_square_matrix(self):
        with pytest.raises(ValueError):
            LatencyMatrix(matrix=[[0, 1], [1, 0], [2, 2]], names=["a", "b", "c"])

    def test_rejects_name_count_mismatch(self):
        with pytest.raises(ValueError):
            LatencyMatrix(matrix=[[0, 1], [1, 0]], names=["only-one"])

    def test_default_names_generated(self):
        matrix = LatencyMatrix(matrix=[[0, 3], [3, 0]])
        assert matrix.names == ["site-0", "site-1"]
