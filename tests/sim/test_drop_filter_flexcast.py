"""Fault injection against FlexCast delivery via ``Network.set_drop_filter``.

FlexCast (§4.2) assumes FIFO *reliable* channels; the epoch-reconfiguration
barrier inherits that assumption — its drain detection declares the old epoch
finished only when global sent == received envelope counters stabilise, which
is only ever true on a reliable network.  These scenarios pin both sides of
that assumption:

* **duplication** is tolerated: duplicated protocol envelopes never cause a
  double delivery (idempotent enqueue/ack bookkeeping);
* **loss** is *not* tolerated: a dropped envelope stalls the affected message
  forever (no retransmission layer exists), and it leaves the global
  sent/received counters permanently unequal — exactly the signal the
  reconfiguration coordinator uses to refuse an unsafe switch.
"""

from repro.core.flexcast import FlexCastGroup
from repro.core.message import ClientRequest, FlexCastAck, FlexCastMsg, Message
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.events import EventLoop
from repro.sim.latencies import LatencyMatrix
from repro.sim.network import Network
from repro.sim.transport import SimTransport

A, B, C = 0, 1, 2


def deploy():
    loop = EventLoop()
    matrix = LatencyMatrix(
        matrix=[[0.1, 5, 5], [5, 0.1, 5], [5, 5, 0.1]], names=["a", "b", "c"]
    )
    network = Network(loop, matrix)
    overlay = CDagOverlay([A, B, C])
    sink = RecordingSink()
    groups = {}
    for gid in (A, B, C):
        group = FlexCastGroup(gid, overlay, SimTransport(network, gid), sink)
        groups[gid] = group
        network.register(gid, site=gid, handler=group.on_envelope)
    network.register("client", site=0, handler=lambda s, p: None)
    return loop, network, groups, sink


def submit(network, groups, message):
    lca = groups[A].overlay.lca(message.dst)
    network.send("client", lca, ClientRequest(message=message))


class DuplicatingFilter:
    """Duplicates each matching envelope once (never drops anything)."""

    def __init__(self, network, predicate):
        self._network = network
        self._predicate = predicate
        self._seen = set()
        self.duplicated = 0

    def __call__(self, src, dst, payload):
        if self._predicate(payload) and id(payload) not in self._seen:
            self._seen.add(id(payload))
            self.duplicated += 1
            # Re-send the same envelope: the nested send passes the filter
            # (already seen) and schedules a second delivery.
            self._network.send(src, dst, payload)
        return False


class TestDuplication:
    def test_duplicated_msgs_and_acks_deliver_exactly_once(self):
        loop, network, groups, sink = deploy()
        dup = DuplicatingFilter(
            network, lambda p: isinstance(p, (FlexCastMsg, FlexCastAck))
        )
        network.set_drop_filter(dup)
        for i in range(8):
            submit(
                network,
                groups,
                Message(msg_id=f"m{i}", dst=frozenset({A, B, C}), sender="client"),
            )
            loop.run(until=loop.now + 2.0)
        loop.run_until_idle()
        assert dup.duplicated > 0
        for gid in (A, B, C):
            sequence = sink.sequence(gid)
            assert sequence == [f"m{i}" for i in range(8)]
            assert len(set(sequence)) == len(sequence)


class TestLoss:
    def test_dropped_msg_stalls_delivery_forever(self):
        loop, network, groups, sink = deploy()
        dropped = []

        def drop_first_msg_to_c(src, dst, payload):
            if isinstance(payload, FlexCastMsg) and dst == C and not dropped:
                dropped.append(payload.message.msg_id)
                return True
            return False

        network.set_drop_filter(drop_first_msg_to_c)
        submit(network, groups, Message(msg_id="m0", dst=frozenset({A, C}), sender="client"))
        loop.run_until_idle()
        assert dropped == ["m0"]
        assert sink.sequence(A) == ["m0"]
        # No retransmission layer: C never delivers, even after healing.
        assert sink.sequence(C) == []
        network.set_drop_filter(None)
        loop.run_until_idle()
        assert sink.sequence(C) == []

    def test_loss_leaves_sent_received_counters_unequal(self):
        """The reconfig barrier's drain check (global sent == received) can
        only ever pass on a reliable network — loss keeps them apart."""
        loop, network, groups, sink = deploy()
        # m0 is addressed to all three groups: C must wait for B's ack
        # (Strategy (b)) before delivering — and that ack is dropped.
        network.set_drop_filter(
            lambda src, dst, payload: isinstance(payload, FlexCastAck) and dst == C
        )
        submit(
            network,
            groups,
            Message(msg_id="m0", dst=frozenset({A, B, C}), sender="client"),
        )
        loop.run_until_idle()

        sent = sum(
            g.stats["msgs_sent"] + g.stats["acks_sent"] + g.stats["notifs_sent"]
            for g in groups.values()
        )
        received = sum(
            g.stats["msgs_received"]
            + g.stats["acks_received"]
            + g.stats["notifs_received"]
            for g in groups.values()
        )
        assert sent > received  # the dropped ack is counted out but never in
        # ...and the ack-starved destination is stuck with an open queue.
        assert sink.sequence(C) == []
        assert not groups[C].is_quiescent()
