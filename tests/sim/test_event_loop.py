"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.events import EventLoop, PeriodicTimer


class TestScheduling:
    def test_starts_at_zero(self):
        loop = EventLoop()
        assert loop.now == 0.0
        assert loop.pending == 0

    def test_custom_start_time(self):
        loop = EventLoop(start_time=100.0)
        assert loop.now == 100.0

    def test_schedule_runs_callback_at_time(self):
        loop = EventLoop()
        fired = []
        loop.schedule(10.0, lambda: fired.append(loop.now))
        loop.run()
        assert fired == [10.0]

    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(30.0, lambda: order.append("c"))
        loop.schedule(10.0, lambda: order.append("a"))
        loop.schedule(20.0, lambda: order.append("b"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self):
        loop = EventLoop()
        order = []
        for i in range(5):
            loop.schedule(10.0, lambda i=i: order.append(i))
        loop.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_clamped_to_now(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, lambda: loop.schedule(-3.0, lambda: fired.append(loop.now)))
        loop.run()
        assert fired == [5.0]

    def test_schedule_at_in_the_past_runs_now(self):
        loop = EventLoop(start_time=50.0)
        fired = []
        loop.schedule_at(10.0, lambda: fired.append(loop.now))
        loop.run()
        assert fired == [50.0]

    def test_call_soon_runs_at_current_time(self):
        loop = EventLoop()
        fired = []
        loop.call_soon(lambda: fired.append(loop.now))
        loop.run()
        assert fired == [0.0]

    def test_nested_scheduling(self):
        loop = EventLoop()
        fired = []
        loop.schedule(10.0, lambda: loop.schedule(5.0, lambda: fired.append(loop.now)))
        loop.run()
        assert fired == [15.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(10.0, lambda: fired.append(1))
        handle.cancel()
        loop.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_after_fire_is_noop(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, lambda: fired.append(1))
        loop.run()
        handle.cancel()
        assert fired == [1]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(10.0, lambda: fired.append("early"))
        loop.schedule(100.0, lambda: fired.append("late"))
        loop.run(until=50.0)
        assert fired == ["early"]
        assert loop.now == 50.0
        assert loop.pending == 1

    def test_run_until_advances_clock_without_events(self):
        loop = EventLoop()
        loop.run(until=42.0)
        assert loop.now == 42.0

    def test_max_events_budget(self):
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.schedule(float(i), lambda i=i: fired.append(i))
        loop.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_halts_processing(self):
        loop = EventLoop()
        fired = []

        def first():
            fired.append(1)
            loop.stop()

        loop.schedule(1.0, first)
        loop.schedule(2.0, lambda: fired.append(2))
        loop.run()
        assert fired == [1]
        assert loop.pending == 1

    def test_run_until_idle_counts_events(self):
        loop = EventLoop()
        for i in range(7):
            loop.schedule(float(i), lambda: None)
        assert loop.run_until_idle() == 7
        assert loop.events_processed == 7

    def test_run_until_idle_raises_on_livelock(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule(1.0, reschedule)

        loop.schedule(1.0, reschedule)
        with pytest.raises(RuntimeError, match="livelock"):
            loop.run_until_idle(max_events=100)

    def test_step_on_empty_queue_returns_false(self):
        assert EventLoop().step() is False


class TestPeriodicTimer:
    def test_fires_repeatedly(self):
        loop = EventLoop()
        fired = []
        timer = PeriodicTimer(loop, 10.0, lambda: fired.append(loop.now))
        loop.run(until=35.0)
        assert fired == [10.0, 20.0, 30.0]
        timer.cancel()

    def test_cancel_stops_firing(self):
        loop = EventLoop()
        fired = []
        timer = PeriodicTimer(loop, 10.0, lambda: fired.append(loop.now))
        loop.schedule(25.0, timer.cancel)
        loop.run(until=100.0)
        assert fired == [10.0, 20.0]
        assert not timer.active

    def test_start_after_overrides_first_interval(self):
        loop = EventLoop()
        fired = []
        PeriodicTimer(loop, 10.0, lambda: fired.append(loop.now), start_after=1.0)
        loop.run(until=22.0)
        assert fired == [1.0, 11.0, 21.0]

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            PeriodicTimer(EventLoop(), 0.0, lambda: None)
