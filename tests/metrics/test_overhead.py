"""Tests for the communication-overhead metric (§5.8)."""

import pytest

from repro.metrics.overhead import GroupOverhead, OverheadReport, compute_overhead


class TestGroupOverhead:
    def test_overhead_formula(self):
        assert GroupOverhead(group=1, delivered=90, received=100).overhead == pytest.approx(0.1)
        assert GroupOverhead(group=1, delivered=90, received=100).overhead_percent == pytest.approx(10.0)

    def test_zero_received_means_zero_overhead(self):
        assert GroupOverhead(group=1, delivered=0, received=0).overhead == 0.0

    def test_delivering_everything_means_zero_overhead(self):
        assert GroupOverhead(group=1, delivered=50, received=50).overhead == 0.0

    def test_never_negative(self):
        # Flush/bookkeeping messages can make delivered exceed received counts.
        assert GroupOverhead(group=1, delivered=60, received=50).overhead == 0.0


class TestOverheadReport:
    def _report(self):
        return compute_overhead(
            delivered_by_group={1: 90, 2: 100, 3: 0},
            received_by_group={1: 100, 2: 100, 3: 50},
            groups=[1, 2, 3],
        )

    def test_per_group_and_aggregates(self):
        report = self._report()
        assert report.overhead_percent(1) == pytest.approx(10.0)
        assert report.overhead_percent(2) == 0.0
        assert report.overhead_percent(3) == pytest.approx(100.0)
        assert report.mean_percent == pytest.approx((10 + 0 + 100) / 3)
        assert report.max_percent == pytest.approx(100.0)
        assert report.stdev_percent > 0

    def test_missing_groups_default_to_zero_counts(self):
        report = compute_overhead({}, {}, groups=[1, 2])
        assert report.mean_percent == 0.0

    def test_rows_sorted_by_group(self):
        rows = self._report().as_rows()
        assert [r["group"] for r in rows] == [1, 2, 3]
        assert rows[0]["overhead_percent"] == pytest.approx(10.0)
