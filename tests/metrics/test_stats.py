"""Tests for the statistics helpers."""

import pytest

from repro.metrics.stats import (
    Summary,
    cdf_at,
    cdf_points,
    mean,
    percentile,
    percentiles,
    stdev,
)


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        numpy = pytest.importorskip("numpy")
        data = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3]
        for p in (0, 10, 50, 90, 95, 99, 100):
            assert percentile(data, p) == pytest.approx(float(numpy.percentile(data, p)))

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_extremes(self):
        data = list(range(1, 101))
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 100
        assert percentile(data, 50) == pytest.approx(50.5)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 120)

    def test_percentiles_bundle(self):
        data = list(range(100))
        table = percentiles(data)
        assert set(table) == {90, 95, 99}
        assert table[90] < table[95] < table[99]


class TestAggregates:
    def test_mean_and_stdev(self):
        assert mean([1, 2, 3, 4]) == 2.5
        assert stdev([2, 2, 2]) == 0.0
        assert stdev([0, 10]) == 5.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            stdev([])


class TestCdf:
    def test_cdf_points_monotone_and_ends_at_one(self):
        points = cdf_points([5.0, 1.0, 3.0])
        values = [v for v, _ in points]
        probs = [p for _, p in points]
        assert values == sorted(values)
        assert probs == sorted(probs)
        assert probs[-1] == 1.0

    def test_cdf_points_empty(self):
        assert cdf_points([]) == []

    def test_cdf_at(self):
        data = [1, 2, 3, 4]
        assert cdf_at(data, 0) == 0.0
        assert cdf_at(data, 2) == 0.5
        assert cdf_at(data, 10) == 1.0
        assert cdf_at([], 5) == 0.0


class TestSummary:
    def test_summary_fields(self):
        summary = Summary.of(list(range(1, 101)))
        assert summary.count == 100
        assert summary.minimum == 1 and summary.maximum == 100
        assert summary.p50 < summary.p90 < summary.p99
        assert set(summary.as_dict()) == {
            "count", "mean", "p50", "p90", "p95", "p99", "min", "max"
        }

    def test_summary_of_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary.of([])
