"""Tests for the latency/throughput/traffic collectors."""

import pytest

from repro.metrics import LatencyCollector, traffic_report
from repro.sim.network import NodeTraffic
from repro.workload.clients import CompletedTransaction


def txn(completed_at, latencies, destinations=None, is_global=True):
    latencies = sorted(latencies)
    return CompletedTransaction(
        client_id="c",
        home=0,
        destinations=destinations or len(latencies),
        submitted_at=completed_at - latencies[-1],
        completed_at=completed_at,
        latencies_by_arrival=latencies,
        is_global=is_global,
    )


class TestLatencyCollector:
    def test_per_destination_rank_queries(self):
        collector = LatencyCollector()
        collector.record(txn(100, [10, 30]))
        collector.record(txn(200, [20, 40, 90]))
        collector.record(txn(300, [15], is_global=False))
        assert collector.latencies_for_destination(1) == [10, 20]
        assert collector.latencies_for_destination(2) == [30, 40]
        assert collector.latencies_for_destination(3) == [90]
        assert collector.latencies_for_destination(1, global_only=False) == [10, 20, 15]

    def test_rank_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyCollector().latencies_for_destination(0)

    def test_percentile_table_skips_missing_ranks(self):
        collector = LatencyCollector()
        collector.record(txn(100, [10, 30]))
        table = collector.percentile_table()
        assert set(table) == {1, 2}
        assert table[1][90] == 10

    def test_completion_latency_uses_last_response(self):
        collector = LatencyCollector()
        collector.record(txn(100, [10, 30]))
        assert collector.completion_latencies() == [30]

    def test_throughput(self):
        collector = LatencyCollector()
        for i in range(11):
            collector.record(txn(1000 + i * 100, [10]))
        # 11 transactions over a 1-second window.
        assert collector.throughput_ops_per_sec() == pytest.approx(11.0)

    def test_throughput_degenerate_cases(self):
        collector = LatencyCollector()
        assert collector.throughput_ops_per_sec() == 0.0
        collector.record(txn(100, [10]))
        assert collector.throughput_ops_per_sec() == 0.0

    def test_trimming_removes_head_and_tail(self):
        collector = LatencyCollector()
        for i in range(100):
            collector.record(txn(float(i), [1.0]))
        trimmed = collector.trimmed(0.10)
        times = [t.completed_at for t in trimmed.transactions]
        assert min(times) >= 9.9 - 1e-9
        assert max(times) <= 89.1 + 1e-9
        assert len(trimmed) < len(collector)

    def test_trimming_keeps_data_for_tiny_runs(self):
        collector = LatencyCollector()
        collector.record(txn(100, [10]))
        assert len(collector.trimmed(0.4)) == 1

    def test_cdf_for_destination(self):
        collector = LatencyCollector()
        collector.record(txn(100, [10, 30]))
        collector.record(txn(200, [20, 40]))
        cdf = collector.cdf_for_destination(1)
        assert cdf == [(10, 0.5), (20, 1.0)]


class TestTrafficReport:
    def test_converts_counters_to_rates(self):
        traffic = {
            1: NodeTraffic(messages_received=100, bytes_received=204_800),
            2: NodeTraffic(),
        }
        rows = traffic_report(traffic, duration_ms=10_000, nodes=[1, 2])
        assert rows[0].node == 1
        assert rows[0].messages_per_second == pytest.approx(10.0)
        assert rows[0].average_message_bytes == pytest.approx(2048.0)
        assert rows[0].kbytes_per_second == pytest.approx(20.0)
        assert rows[1].messages_per_second == 0.0

    def test_requires_positive_duration(self):
        with pytest.raises(ValueError):
            traffic_report({}, duration_ms=0, nodes=[])
