"""Tests for the plain-text report formatting."""

from repro.metrics import NodeTrafficReport
from repro.metrics.overhead import compute_overhead
from repro.metrics.report import (
    format_latency_comparison,
    format_latency_percentiles,
    format_overhead_report,
    format_table,
    format_throughput_series,
    format_traffic_report,
)


class TestFormatTable:
    def test_columns_aligned_and_all_rows_present(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "long-name" in lines[3]

    def test_handles_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestLatencyTables:
    def test_single_config(self):
        table = {1: {90: 10.0, 95: 20.0, 99: 30.0}}
        text = format_latency_percentiles("FlexCast O1", table)
        assert "FlexCast O1" in text and "10.0" in text and "dst1-99p" in text

    def test_comparison_with_missing_ranks(self):
        tables = {
            "FlexCast O1": {1: {90: 10.0, 95: 20.0, 99: 30.0}},
            "Hierarchical T1": {1: {90: 40.0, 95: 50.0, 99: 60.0}, 3: {90: 1.0, 95: 2.0, 99: 3.0}},
        }
        text = format_latency_comparison(tables)
        assert "FlexCast O1" in text and "Hierarchical T1" in text
        assert "-" in text  # missing ranks rendered as dashes


class TestOtherReports:
    def test_overhead_report_text(self):
        report = compute_overhead({1: 9, 2: 10}, {1: 10, 2: 10}, groups=[1, 2])
        text = format_overhead_report("T1 @90%", report)
        assert "T1 @90%" in text and "10.0%" in text and "mean=" in text

    def test_traffic_report_text(self):
        rows = [NodeTrafficReport(node=3, messages_per_second=12.5, average_message_bytes=100.0, kbytes_per_second=1.5)]
        text = format_traffic_report("FlexCast", rows)
        assert "FlexCast" in text and "12.5" in text and "KB/s" in text

    def test_throughput_series_text(self):
        text = format_throughput_series({"FlexCast": {24: 100.0, 48: 180.0}, "Distributed": {24: 90.0}})
        assert "FlexCast" in text and "Distributed" in text and "48" in text
