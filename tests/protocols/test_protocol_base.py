"""Tests for the shared protocol interface helpers."""

import pytest

from repro.core.message import Message
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import (
    AtomicMulticastGroup,
    ProtocolError,
    RecordingSink,
)
from repro.sim.transport import RecordingTransport


class _DummyGroup(AtomicMulticastGroup):
    """Minimal concrete group used to exercise the base class."""

    def on_client_request(self, message):
        self.deliver(message)

    def on_envelope(self, sender, envelope):  # pragma: no cover - unused
        pass


def make_group(gid="A"):
    sink = RecordingSink()
    return _DummyGroup(gid, RecordingTransport(gid), sink), sink


class TestDeliveryGuards:
    def test_deliver_forwards_to_sink(self):
        group, sink = make_group()
        group.on_client_request(Message.create(["A", "B"], msg_id="m1"))
        assert sink.sequence("A") == ["m1"]
        assert group.delivered_count == 1
        assert group.has_delivered("m1")

    def test_double_delivery_rejected(self):
        group, sink = make_group()
        m = Message.create(["A"], msg_id="m1")
        group.deliver(m)
        with pytest.raises(ProtocolError):
            group.deliver(m)

    def test_delivery_outside_destination_set_rejected(self):
        group, sink = make_group("Z")
        with pytest.raises(ProtocolError):
            group.deliver(Message.create(["A", "B"], msg_id="m1"))

    def test_send_uses_transport(self):
        group, _ = make_group()
        group.send("B", "payload")
        assert group.transport.sent == [("B", "payload")]


class TestRecordingSink:
    def test_records_order_and_counts(self):
        sink = RecordingSink()
        m1 = Message.create(["A"], msg_id="m1")
        m2 = Message.create(["A", "B"], msg_id="m2")
        sink("A", m1)
        sink("A", m2)
        sink("B", m2)
        assert sink.sequence("A") == ["m1", "m2"]
        assert sink.sequence("B") == ["m2"]
        assert sink.count() == 3
        assert sink.count("A") == 2
        assert sink.delivered_ids("B") == {"m2"}
        assert [r.order for r in sink.records] == [0, 1, 0]

    def test_clock_recorded_when_available(self):
        times = iter([5.0, 9.0])
        sink = RecordingSink(clock=lambda: next(times))
        sink("A", Message.create(["A"], msg_id="m1"))
        sink("A", Message.create(["A"], msg_id="m2"))
        assert [r.time for r in sink.records] == [5.0, 9.0]
