"""Unit tests for the hierarchical (tree) baseline."""

import pytest

from repro.core.message import ClientRequest, Message, TreeForward
from repro.overlay.tree import TreeOverlay
from repro.protocols.base import ProtocolError, RecordingSink
from repro.protocols.hierarchical import HierarchicalGroup, HierarchicalProtocol
from repro.sim.transport import RecordingTransport

A, B, C, D, E = "A", "B", "C", "D", "E"


@pytest.fixture
def tree():
    return TreeOverlay(A, {A: [B, C], B: [D, E]})


def make_group(gid, tree):
    transport = RecordingTransport(gid)
    sink = RecordingSink()
    return HierarchicalGroup(gid, tree, transport, sink), transport, sink


def msg(mid, dst):
    return Message(msg_id=mid, dst=frozenset(dst))


class TestOrderingAndForwarding:
    def test_destination_lca_delivers_and_forwards(self, tree):
        group, transport, sink = make_group(B, tree)
        group.on_client_request(msg("m1", {B, D}))
        assert sink.sequence(B) == ["m1"]
        forwards = [(dst, env) for dst, env in transport.sent if isinstance(env, TreeForward)]
        assert [dst for dst, _ in forwards] == [D]

    def test_non_destination_relay_orders_but_does_not_deliver(self, tree):
        """The paper's key non-genuineness example: a message to {B, C} is
        first ordered at A even though A is not a destination."""
        group, transport, sink = make_group(A, tree)
        group.on_client_request(msg("m1", {B, C}))
        assert sink.sequence(A) == []
        assert group.payload_received == 1
        forwards = sorted(dst for dst, env in transport.sent if isinstance(env, TreeForward))
        assert forwards == [B, C]
        assert group.communication_overhead() == 1.0

    def test_forward_received_from_parent(self, tree):
        group, transport, sink = make_group(B, tree)
        group.on_envelope(A, TreeForward(message=msg("m1", {B, C}), sequence=1))
        assert sink.sequence(B) == ["m1"]
        assert transport.sent == []  # no destinations below B

    def test_forward_continues_toward_deeper_destinations(self, tree):
        group, transport, sink = make_group(B, tree)
        group.on_envelope(A, TreeForward(message=msg("m1", {D, C}), sequence=1))
        assert sink.sequence(B) == []  # not a destination
        assert [dst for dst, _ in transport.sent] == [D]

    def test_duplicate_forward_ignored(self, tree):
        group, transport, sink = make_group(B, tree)
        forward = TreeForward(message=msg("m1", {B}), sequence=1)
        group.on_envelope(A, forward)
        group.on_envelope(A, forward)
        assert sink.sequence(B) == ["m1"]

    def test_local_sequence_preserves_arrival_order(self, tree):
        group, transport, sink = make_group(B, tree)
        group.on_envelope(A, TreeForward(message=msg("m1", {B, D}), sequence=1))
        group.on_envelope(A, TreeForward(message=msg("m2", {B, E}), sequence=2))
        assert group.local_sequence == ["m1", "m2"]

    def test_client_request_must_target_tree_lca(self, tree):
        group, _, _ = make_group(B, tree)
        with pytest.raises(ProtocolError):
            group.on_client_request(msg("m1", {B, C}))  # lca is A, not B

    def test_unexpected_envelope_rejected(self, tree):
        group, _, _ = make_group(B, tree)
        with pytest.raises(ProtocolError):
            group.on_envelope(A, object())


class TestOverheadAccounting:
    def test_overhead_zero_when_everything_delivered(self, tree):
        group, transport, sink = make_group(D, tree)
        group.on_envelope(B, TreeForward(message=msg("m1", {D}), sequence=1))
        group.on_envelope(B, TreeForward(message=msg("m2", {D, E}), sequence=2))
        assert group.communication_overhead() == 0.0

    def test_overhead_counts_relayed_messages(self, tree):
        group, transport, sink = make_group(B, tree)
        group.on_envelope(A, TreeForward(message=msg("m1", {B, D}), sequence=1))  # delivered
        group.on_envelope(A, TreeForward(message=msg("m2", {D, E}), sequence=2))  # relay only
        assert group.payload_received == 2
        assert group.delivered_count == 1
        assert group.communication_overhead() == pytest.approx(0.5)

    def test_overhead_zero_with_no_traffic(self, tree):
        group, _, _ = make_group(E, tree)
        assert group.communication_overhead() == 0.0


class TestHierarchicalProtocol:
    def test_entry_group_is_tree_lca(self, tree):
        protocol = HierarchicalProtocol(tree)
        assert protocol.entry_groups(msg("m1", {B, C})) == [A]
        assert protocol.entry_groups(msg("m2", {D, E})) == [B]
        assert not protocol.genuine

    def test_requires_tree_overlay(self):
        from repro.overlay.cdag import CDagOverlay

        with pytest.raises(TypeError):
            HierarchicalProtocol(CDagOverlay([A, B]))

    def test_create_group(self, tree):
        protocol = HierarchicalProtocol(tree)
        group = protocol.create_group(B, RecordingTransport(B), RecordingSink())
        assert isinstance(group, HierarchicalGroup)
