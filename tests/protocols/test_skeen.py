"""Unit tests for the distributed (Skeen) baseline."""

import pytest

from repro.core.message import ClientRequest, Message, SkeenTimestamp
from repro.overlay.base import CompleteGraphOverlay
from repro.protocols.base import ProtocolError, RecordingSink
from repro.protocols.skeen import SkeenGroup, SkeenProtocol
from repro.sim.transport import RecordingTransport


@pytest.fixture
def overlay():
    return CompleteGraphOverlay([0, 1, 2])


def make_group(gid, overlay):
    transport = RecordingTransport(gid)
    sink = RecordingSink()
    return SkeenGroup(gid, overlay, transport, sink), transport, sink


def msg(mid, dst):
    return Message(msg_id=mid, dst=frozenset(dst))


class TestProposals:
    def test_local_message_delivered_immediately(self, overlay):
        group, transport, sink = make_group(0, overlay)
        group.on_client_request(msg("m1", {0}))
        assert sink.sequence(0) == ["m1"]
        assert transport.sent == []

    def test_proposal_sent_to_every_other_destination(self, overlay):
        group, transport, sink = make_group(0, overlay)
        group.on_client_request(msg("m1", {0, 1, 2}))
        destinations = sorted(dst for dst, env in transport.sent if isinstance(env, SkeenTimestamp))
        assert destinations == [1, 2]
        assert sink.sequence(0) == []  # not decided yet

    def test_delivery_after_all_timestamps(self, overlay):
        group, transport, sink = make_group(0, overlay)
        m = msg("m1", {0, 1})
        group.on_client_request(m)
        group.on_envelope(1, SkeenTimestamp(msg_id="m1", timestamp=4, from_group=1))
        assert sink.sequence(0) == ["m1"]

    def test_timestamp_before_request_is_buffered(self, overlay):
        group, transport, sink = make_group(0, overlay)
        group.on_envelope(1, SkeenTimestamp(msg_id="m1", timestamp=4, from_group=1))
        assert sink.sequence(0) == []
        group.on_client_request(msg("m1", {0, 1}))
        assert sink.sequence(0) == ["m1"]

    def test_duplicate_request_ignored(self, overlay):
        group, transport, sink = make_group(0, overlay)
        m = msg("m1", {0, 1})
        group.on_client_request(m)
        group.on_client_request(m)
        group.on_envelope(1, SkeenTimestamp(msg_id="m1", timestamp=9, from_group=1))
        assert sink.sequence(0) == ["m1"]

    def test_request_to_non_destination_rejected(self, overlay):
        group, _, _ = make_group(2, overlay)
        with pytest.raises(ProtocolError):
            group.on_client_request(msg("m1", {0, 1}))

    def test_clock_advances_with_received_timestamps(self, overlay):
        group, transport, sink = make_group(0, overlay)
        group.on_envelope(1, SkeenTimestamp(msg_id="mx", timestamp=50, from_group=1))
        group.on_client_request(msg("m1", {0, 1}))
        proposals = [env for _, env in transport.sent if isinstance(env, SkeenTimestamp)]
        assert proposals[0].timestamp > 50


class TestOrdering:
    def test_messages_delivered_in_final_timestamp_order(self, overlay):
        group, transport, sink = make_group(0, overlay)
        group.on_client_request(msg("m1", {0, 1}))
        group.on_client_request(msg("m2", {0, 2}))
        # m2's final timestamp (10) is larger than m1's (5): deliver m1 first
        # even though m2's decision arrives first.
        group.on_envelope(2, SkeenTimestamp(msg_id="m2", timestamp=10, from_group=2))
        assert sink.sequence(0) == []  # m1 pending with smaller timestamp
        group.on_envelope(1, SkeenTimestamp(msg_id="m1", timestamp=5, from_group=1))
        assert sink.sequence(0) == ["m1", "m2"]

    def test_undecided_message_with_smaller_proposal_blocks_delivery(self, overlay):
        group, transport, sink = make_group(0, overlay)
        group.on_client_request(msg("m1", {0, 1}))   # local ts 1
        group.on_client_request(msg("m2", {0, 2}))   # local ts 2
        group.on_envelope(2, SkeenTimestamp(msg_id="m2", timestamp=2, from_group=2))
        # m1 is still undecided with a lower local timestamp, so m2 must wait.
        assert sink.sequence(0) == []
        group.on_envelope(1, SkeenTimestamp(msg_id="m1", timestamp=7, from_group=1))
        # Now m1 decides at 7 > 2, so m2 goes first.
        assert sink.sequence(0) == ["m2", "m1"]

    def test_pending_count(self, overlay):
        group, transport, sink = make_group(0, overlay)
        group.on_client_request(msg("m1", {0, 1}))
        assert group.pending_count() == 1


class TestSkeenProtocol:
    def test_entry_groups_are_all_destinations(self, overlay):
        protocol = SkeenProtocol(overlay)
        assert protocol.entry_groups(msg("m1", {2, 0})) == [0, 2]
        assert protocol.genuine
        assert protocol.name == "Distributed"

    def test_create_group(self, overlay):
        protocol = SkeenProtocol(overlay)
        group = protocol.create_group(1, RecordingTransport(1), RecordingSink())
        assert isinstance(group, SkeenGroup)

    def test_unexpected_envelope_rejected(self, overlay):
        group, _, _ = make_group(0, overlay)
        with pytest.raises(ProtocolError):
            group.on_envelope(1, object())


class TestAuthorityHygiene:
    def test_late_duplicate_after_delivery_leaves_no_state(self, overlay):
        group, transport, sink = make_group(0, overlay)
        group.on_client_request(msg("m1", {0, 1}))
        group.on_envelope(1, SkeenTimestamp(msg_id="m1", timestamp=4, from_group=1))
        assert sink.sequence(0) == ["m1"]
        # The authority sheds per-message state at delivery (the group's own
        # delivered-record is the duplicate guard), so a late duplicate only
        # advances the clock — no pending entry, no early buffer, no
        # completed-memory accumulating over the group's lifetime.
        group.on_envelope(1, SkeenTimestamp(msg_id="m1", timestamp=9, from_group=1))
        assert sink.sequence(0) == ["m1"]
        assert group.authority.pending_count() == 0
        assert not group.authority.is_completed("m1")
        assert not group.authority.is_pending("m1")
        assert group.clock >= 9
