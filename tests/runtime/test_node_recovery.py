"""Runtime recovery: GroupServer/LocalCluster restarting from durable storage."""

from __future__ import annotations

import asyncio

from repro.core.flexcast import FlexCastProtocol
from repro.overlay.cdag import CDagOverlay
from repro.runtime.cluster import LocalCluster
from repro.runtime.node import GroupServer
from repro.storage import FileStorage, InMemoryStorage


def run(coro):
    return asyncio.run(coro)


class TestGroupServerRecovery:
    def test_cold_start_recovers_nothing(self):
        protocol = FlexCastProtocol(CDagOverlay([0, 1]))
        server = GroupServer(
            group_id=0, protocol=protocol, addresses={}, storage=InMemoryStorage()
        )
        assert server.recovered_deliveries == 0

    def test_restarted_server_resumes_delivered_history(self):
        storage = InMemoryStorage()

        async def first_incarnation():
            protocol = FlexCastProtocol(CDagOverlay([0, 1]))
            cluster = LocalCluster(protocol, storage={0: storage, 1: InMemoryStorage()})
            async with cluster:
                client = await cluster.new_client("c1")
                for _ in range(3):
                    await client.multicast([0, 1])
                return cluster.delivered_at(0)

        delivered = run(first_incarnation())
        assert len(delivered) == 3

        # "Crash": the whole cluster object is gone; only storage survives.
        protocol = FlexCastProtocol(CDagOverlay([0, 1]))
        reborn = GroupServer(group_id=0, protocol=protocol, addresses={}, storage=storage)
        assert reborn.recovered_deliveries == 3
        for msg_id in delivered:
            assert msg_id in reborn.group.history
            assert msg_id in reborn.group.delivered_in_g
        assert reborn.group.history.last_delivered == delivered[-1]

    def test_restarted_cluster_keeps_delivering(self, tmp_path):
        storage = {
            0: FileStorage(str(tmp_path / "g0")),
            1: FileStorage(str(tmp_path / "g1")),
        }

        async def incarnation(n_messages):
            protocol = FlexCastProtocol(CDagOverlay([0, 1]))
            cluster = LocalCluster(protocol, storage=storage)
            async with cluster:
                client = await cluster.new_client("c1")
                for _ in range(n_messages):
                    await client.multicast([0, 1])
                return (
                    cluster.delivered_at(0),
                    {g: s.recovered_deliveries for g, s in cluster.servers.items()},
                )

        first, recovered_first = run(incarnation(2))
        assert recovered_first == {0: 0, 1: 0}
        second, recovered_second = run(incarnation(2))
        # Both groups restored the first incarnation's deliveries from disk
        # and kept going: new deliveries extend, never repeat, the old ones.
        assert recovered_second == {0: 2, 1: 2}
        assert len(second) == 2
        assert not set(first) & set(second)
