"""Tests for the wire codec."""

import pytest

from repro.core.message import (
    ClientRequest,
    ClientResponse,
    EMPTY_DELTA,
    EpochBounce,
    FlexCastAck,
    FlexCastBatch,
    FlexCastMsg,
    FlexCastNotif,
    FlexCastTsPropose,
    HistoryDelta,
    HistorySnapshot,
    HistorySnapshotFrame,
    Message,
    SkeenPropose,
    SkeenTimestamp,
    TreeForward,
)
from repro.runtime.codec import CodecError, decode_frame, encode_frame


def round_trip(envelope, sender="node-1"):
    frame = encode_frame(sender, envelope)
    # Strip the 4-byte length prefix before decoding the body.
    decoded_sender, decoded = decode_frame(frame[4:])
    assert decoded_sender == sender
    return decoded


def sample_message():
    return Message(
        msg_id="m42",
        dst=frozenset({1, 3}),
        sender="client-7",
        payload={"op": "new_order"},
        payload_bytes=320,
        is_flush=False,
    )


def sample_delta():
    return HistoryDelta(
        vertices=(("m1", frozenset({1})), ("m2", frozenset({1, 3}))),
        edges=(("m1", "m2"),),
        last_delivered="m2",
    )


class TestRoundTrips:
    def test_client_request(self):
        decoded = round_trip(ClientRequest(message=sample_message()))
        assert decoded.message == sample_message()

    def test_client_response(self):
        decoded = round_trip(ClientResponse(msg_id="m42", group=3))
        assert decoded.msg_id == "m42" and decoded.group == 3

    def test_flexcast_msg_with_history(self):
        envelope = FlexCastMsg(
            message=sample_message(), history=sample_delta(), notified=frozenset({2})
        )
        decoded = round_trip(envelope)
        assert decoded == envelope

    def test_flexcast_ack_and_notif(self):
        ack = FlexCastAck(
            message=sample_message(), history=sample_delta(), from_group=1,
            notified=frozenset({2, 4}),
        )
        notif = FlexCastNotif(message=sample_message(), history=EMPTY_DELTA, from_group=1)
        assert round_trip(ack) == ack
        assert round_trip(notif) == notif

    def test_flexcast_ts_propose(self):
        propose = FlexCastTsPropose(
            message=sample_message(), timestamp=23, from_group=3, epoch=2
        )
        assert round_trip(propose) == propose

    def test_piggybacked_ts_proposals_survive(self):
        envelope = FlexCastMsg(
            message=sample_message(),
            history=sample_delta(),
            notified=frozenset({2}),
            ts_proposals=((1, 5), (3, 9)),
        )
        assert round_trip(envelope) == envelope
        ack = FlexCastAck(
            message=sample_message(),
            history=EMPTY_DELTA,
            from_group=3,
            ts_proposals=((3, 9),),
        )
        assert round_trip(ack) == ack

    def test_skeen_envelopes(self):
        ts = SkeenTimestamp(msg_id="m42", timestamp=17, from_group=4)
        propose = SkeenPropose(message=sample_message())
        assert round_trip(ts) == ts
        assert round_trip(propose) == propose

    def test_tree_forward(self):
        forward = TreeForward(message=sample_message(), sequence=9)
        assert round_trip(forward) == forward

    def test_flush_flag_survives(self):
        flush = Message(msg_id="f1", dst=frozenset({0, 1}), is_flush=True)
        decoded = round_trip(ClientRequest(message=flush))
        assert decoded.message.is_flush

    def test_flexcast_batch(self):
        members = [
            Message(
                msg_id=f"m{i}",
                dst=frozenset({1, 3}),
                sender="client-7",
                payload={"seq": i},
                payload_bytes=48,
            )
            for i in range(4)
        ]
        envelope = FlexCastBatch(message=Message.batch_of(members, batch_id="b9"))
        decoded = round_trip(envelope)
        # The decoded frame is still a *batch* (not a plain request) and the
        # carrier round-trips exactly: id, members in order, payloads.
        assert type(decoded) is FlexCastBatch
        assert decoded == envelope
        assert decoded.message.is_batch
        assert [m.msg_id for m in decoded.message.members] == ["m0", "m1", "m2", "m3"]
        assert decoded.message.members[2].payload == {"seq": 2}

    def test_batch_carrier_inside_msg_envelope(self):
        # Between groups a batch travels inside the ordinary msg envelope;
        # the carrier's members must survive that hop too.
        members = [
            Message(msg_id=f"m{i}", dst=frozenset({1, 3}), payload=i)
            for i in range(2)
        ]
        carrier = Message.batch_of(members, batch_id="b1")
        envelope = FlexCastMsg(message=carrier, history=sample_delta(), epoch=1)
        decoded = round_trip(envelope)
        assert decoded == envelope
        assert decoded.message.members == tuple(members)

    def test_history_snapshot_frame(self):
        snapshot = HistorySnapshot(
            ids=("m1", "m2", "m3"),
            dsts=(frozenset({1}), frozenset({1, 3}), frozenset({3})),
            edges_a=("m1", "m2"),
            edges_b=("m2", "m3"),
            last_delivered="m3",
            version=5,
        )
        frame = HistorySnapshotFrame(
            group=3,
            delta=HistoryDelta(
                vertices=(("m4", frozenset({1})),),
                edges=(("m3", "m4"),),
                last_delivered="m4",
                seq=7,
                snapshot=snapshot,
            ),
            epoch=2,
        )
        decoded = round_trip(frame)
        assert type(decoded) is HistorySnapshotFrame
        assert decoded == frame
        # Installing the decoded delta must see the full logical content.
        assert set(decoded.delta.iter_vertices()) == set(frame.delta.iter_vertices())
        assert set(decoded.delta.iter_edges()) == {("m1", "m2"), ("m2", "m3"), ("m3", "m4")}

    def test_snapshot_bearing_delta_inside_msg_envelope(self):
        snapshot = HistorySnapshot(
            ids=("m1",), dsts=(frozenset({1}),), last_delivered="m1", version=1
        )
        cold = HistoryDelta(last_delivered="m1", seq=1, snapshot=snapshot)
        envelope = FlexCastMsg(message=sample_message(), history=cold)
        decoded = round_trip(envelope)
        assert decoded == envelope
        assert decoded.history.snapshot == snapshot

    def test_decoded_snapshot_ids_are_interned(self):
        # The decode boundary interns every id so the receiving group's
        # indexes hold pointer-identical strings.
        snapshot = HistorySnapshot(
            ids=("snap-vertex-1",), dsts=(frozenset({1}),), version=1
        )
        frame = HistorySnapshotFrame(
            group=1, delta=HistoryDelta(seq=1, snapshot=snapshot)
        )
        decoded = round_trip(frame)
        import sys as _sys

        assert decoded.delta.snapshot.ids[0] is _sys.intern("snap-vertex-1")

    def test_warm_delta_has_no_snapshot_key(self):
        # Warm diffs must keep their historical byte-for-byte frame shape:
        # the snapshot field is emitted only when set.
        envelope = FlexCastMsg(message=sample_message(), history=sample_delta())
        frame = encode_frame("n", envelope)
        assert b"snapshot" not in frame
        assert round_trip(envelope).history.snapshot is None

    def test_plain_message_has_no_members_key(self):
        # Pre-batching peers must keep decoding unchanged frames: ordinary
        # messages do not even mention the members field on the wire.
        frame = encode_frame("n", ClientRequest(message=sample_message()))
        assert b"members" not in frame
        decoded = round_trip(ClientRequest(message=sample_message()))
        assert decoded.message.members == ()


class TestTraceIdPropagation:
    """The observability trace id must survive every message-carrying hop.

    Lifecycle tracing (repro.obs) correlates events across nodes by the
    ``trace_id`` stamped on the Message; a single envelope type dropping it
    silently truncates every distributed trace at that hop.
    """

    def traced(self, trace_id="t-7f"):
        return Message(
            msg_id="m1", dst=frozenset({1, 3}), sender="c", trace_id=trace_id
        )

    def test_every_message_envelope_preserves_trace_id(self):
        m = self.traced()
        envelopes = [
            ClientRequest(message=m),
            FlexCastBatch(message=Message.batch_of([m], batch_id="b1")),
            FlexCastMsg(message=m, history=sample_delta()),
            FlexCastAck(message=m, history=sample_delta(), from_group=1),
            FlexCastNotif(message=m, history=sample_delta(), from_group=1),
            FlexCastTsPropose(message=m, timestamp=5, from_group=1),
            EpochBounce(message=m, epoch=2, from_group=1),
            SkeenPropose(message=m),
            TreeForward(message=m, sequence=9),
        ]
        for envelope in envelopes:
            decoded = round_trip(envelope)
            carried = decoded.message
            if carried.is_batch:
                # Batch carrier: members keep their own trace ids.
                assert carried.members[0].trace_id == "t-7f", type(envelope)
            else:
                assert carried.trace_id == "t-7f", type(envelope)

    def test_untraced_message_omits_the_key_on_the_wire(self):
        # Frames from uninstrumented runs must stay byte-for-byte what they
        # were before the observability layer existed.
        frame = encode_frame("n", ClientRequest(message=sample_message()))
        assert b"trace_id" not in frame
        decoded = round_trip(ClientRequest(message=sample_message()))
        assert decoded.message.trace_id is None


class TestErrors:
    def test_unknown_envelope_type_rejected_on_encode(self):
        with pytest.raises(CodecError):
            encode_frame("n", object())

    def test_malformed_body_rejected_on_decode(self):
        with pytest.raises(CodecError):
            decode_frame(b"this is not json")

    def test_unknown_type_rejected_on_decode(self):
        import json

        body = json.dumps({"sender": "x", "envelope": {"type": "mystery"}}).encode()
        with pytest.raises(CodecError):
            decode_frame(body)

    def test_length_prefix_matches_body(self):
        frame = encode_frame("n", ClientResponse(msg_id="m1", group=1))
        import struct

        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4


class TestSmrRoundTrips:
    """The process-cluster runtime replicates groups over TCP: every
    multi-Paxos frame (and the transport-level NodeHello) must survive the
    wire with log values carried through the OrderedEnvelope wire form."""

    def _ordered(self):
        from repro.smr.replica import OrderedEnvelope

        return OrderedEnvelope(
            sender="client-7", envelope=ClientRequest(message=sample_message())
        )

    def test_node_hello(self):
        from repro.core.message import NodeHello

        decoded = round_trip(NodeHello(node_id="soak-client-3",
                                       host="127.0.0.1", port=45123))
        assert decoded == NodeHello(node_id="soak-client-3",
                                    host="127.0.0.1", port=45123)

    def test_client_command_and_commit(self):
        from repro.smr.multipaxos import ClientCommand, Commit

        entry = self._ordered()
        assert round_trip(ClientCommand(payload=entry)) == ClientCommand(payload=entry)
        assert round_trip(Commit(instance=7, value=entry)) == Commit(
            instance=7, value=entry
        )

    def test_plain_values_pass_through(self):
        # Tests submit plain JSON-able commands; they must not be wrapped.
        from repro.smr.multipaxos import Commit

        assert round_trip(Commit(instance=0, value="cmd-a")) == Commit(
            instance=0, value="cmd-a"
        )

    def test_heartbeat_and_catchup(self):
        from repro.smr.multipaxos import CatchupReply, CatchupRequest, Heartbeat

        entry = self._ordered()
        assert round_trip(Heartbeat(leader="group-0-replica-0")).leader == (
            "group-0-replica-0"
        )
        request = CatchupRequest(from_instance=3, from_replica="group-0-replica-2")
        assert round_trip(request) == request
        reply = CatchupReply(entries=((1, entry), (2, "plain")))
        assert round_trip(reply) == reply

    def test_paxos_phases(self):
        from repro.smr.paxos import (
            Accept,
            Accepted,
            Ballot,
            Nack,
            Prepare,
            Promise,
            ZERO_BALLOT,
        )

        entry = self._ordered()
        ballot = Ballot(2, 1)
        assert round_trip(Prepare(instance=1, ballot=ballot)) == Prepare(
            instance=1, ballot=ballot
        )
        # A fresh promise reports the ZERO_BALLOT sentinel and no value.
        fresh = Promise(instance=1, ballot=ballot, accepted_ballot=ZERO_BALLOT,
                        accepted_value=None, from_replica="group-0-replica-1")
        assert round_trip(fresh) == fresh
        # A promise forced by an earlier accept carries the old value.
        forced = Promise(instance=1, ballot=ballot, accepted_ballot=Ballot(1, 0),
                         accepted_value=entry, from_replica="group-0-replica-1")
        assert round_trip(forced) == forced
        accept = Accept(instance=1, ballot=ballot, value=entry)
        assert round_trip(accept) == accept
        accepted = Accepted(instance=1, ballot=ballot, value=entry,
                            from_replica="group-0-replica-2")
        assert round_trip(accepted) == accepted
        nack = Nack(instance=1, ballot=ballot, promised=Ballot(3, 0),
                    from_replica="group-0-replica-2")
        assert round_trip(nack) == nack
