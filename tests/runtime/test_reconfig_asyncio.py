"""Live overlay switch over the asyncio TCP runtime.

The same epoch state machine that the simulator tests exercise runs here over
real sockets: traffic in epoch 0, a coordinator-driven switch (prepare →
barrier → quiesce → switch), then traffic in epoch 1, with delivery
consistency checked across the boundary.
"""

import asyncio

from repro.overlay.cdag import CDagOverlay
from repro.reconfig.group import ReconfigurableFlexCastProtocol
from repro.reconfig.runtime import ReconfigCoordinatorServer
from repro.runtime.cluster import LocalCluster


def run(coro):
    return asyncio.run(coro)


class TestAsyncioEpochSwitch:
    def test_switch_between_multicasts(self):
        async def scenario():
            protocol = ReconfigurableFlexCastProtocol(CDagOverlay([0, 1, 2]))
            async with LocalCluster(protocol) as cluster:
                coordinator = ReconfigCoordinatorServer(
                    protocol, cluster.addresses, quiesce_interval_ms=20.0
                )
                await coordinator.start()
                try:
                    client = await cluster.new_client("client-1")
                    for _ in range(3):
                        await client.multicast([0, 1, 2])

                    record = await coordinator.switch_and_wait([2, 1, 0])
                    assert record.completed_ms is not None
                    assert coordinator.coordinator.epoch == 1
                    assert protocol.overlay.order == [2, 1, 0]
                    for server in cluster.servers.values():
                        assert server.group.epoch == 1

                    for _ in range(3):
                        await client.multicast([0, 1, 2])

                    # 6 client multicasts + 1 epoch barrier, delivered in the
                    # same order at every group.
                    sequences = [cluster.delivered_at(g) for g in (0, 1, 2)]
                    assert all(seq == sequences[0] for seq in sequences)
                    assert len(sequences[0]) == 7
                    assert len(set(sequences[0])) == 7  # no duplicates
                    assert record.barrier_id == sequences[0][3]
                finally:
                    await coordinator.stop()

        run(scenario())

    def test_client_with_stale_view_is_rerouted(self):
        async def scenario():
            protocol = ReconfigurableFlexCastProtocol(CDagOverlay([0, 1, 2]))
            stale_view = ReconfigurableFlexCastProtocol(CDagOverlay([0, 1, 2]))
            async with LocalCluster(protocol) as cluster:
                coordinator = ReconfigCoordinatorServer(
                    protocol, cluster.addresses, quiesce_interval_ms=20.0
                )
                await coordinator.start()
                try:
                    client = await cluster.new_client("client-1")
                    await coordinator.switch_and_wait([1, 2, 0])
                    # The lca of {0, 1} moved from 0 to 1 with the switch.
                    assert protocol.overlay.lca({0, 1}) == 1

                    # Route through the frozen epoch-0 view: the request lands
                    # at the *old* lca, which must re-route it — the multicast
                    # still completes at every destination instead of erroring.
                    client._protocol = stale_view
                    latencies = await client.multicast([0, 1], timeout=5.0)
                    assert set(latencies) == {0, 1}
                    assert cluster.servers[0].group.stats["requests_rerouted"] == 1
                finally:
                    await coordinator.stop()

        run(scenario())
