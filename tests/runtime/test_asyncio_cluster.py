"""Integration tests for the asyncio/TCP runtime (localhost clusters)."""

import asyncio

import pytest

from repro.core.flexcast import FlexCastProtocol
from repro.overlay.cdag import CDagOverlay
from repro.overlay.tree import TreeOverlay
from repro.protocols.hierarchical import HierarchicalProtocol
from repro.protocols.skeen import SkeenProtocol
from repro.overlay.base import CompleteGraphOverlay
from repro.runtime.cluster import LocalCluster


def run(coro):
    return asyncio.run(coro)


class TestFlexCastCluster:
    def test_multicast_reaches_all_destinations(self):
        async def scenario():
            protocol = FlexCastProtocol(CDagOverlay([0, 1, 2]))
            async with LocalCluster(protocol) as cluster:
                client = await cluster.new_client("client-1")
                latencies = await client.multicast([0, 2], payload="order")
                assert set(latencies) == {0, 2}
                assert all(v >= 0 for v in latencies.values())
                assert cluster.delivered_at(0) == cluster.delivered_at(2)

        run(scenario())

    def test_sequence_of_multicasts_ordered_consistently(self):
        async def scenario():
            protocol = FlexCastProtocol(CDagOverlay([0, 1, 2]))
            async with LocalCluster(protocol) as cluster:
                client = await cluster.new_client("client-1")
                for _ in range(5):
                    await client.multicast([0, 1, 2])
                assert (
                    cluster.delivered_at(0)
                    == cluster.delivered_at(1)
                    == cluster.delivered_at(2)
                )
                assert len(cluster.delivered_at(0)) == 5

        run(scenario())


class TestBatchedCluster:
    def test_batch_delivered_over_tcp(self):
        async def scenario():
            protocol = FlexCastProtocol(CDagOverlay([0, 1, 2]))
            async with LocalCluster(protocol) as cluster:
                client = await cluster.new_client("client-1")
                latencies = await client.multicast_batch(
                    [0, 2], payloads=["a", "b", "c"]
                )
                # One FlexCastBatch frame, three member messages, each
                # confirmed by both destinations.
                assert len(latencies) == 3
                for responses in latencies.values():
                    assert set(responses) == {0, 2}
                assert cluster.delivered_at(0) == cluster.delivered_at(2)
                assert cluster.delivered_at(0) == list(latencies)
                # Members arrive back-to-back in submission order and no
                # carrier message ever reaches the application.
                delivered = cluster.servers[0].delivered
                assert [m.payload for m in delivered] == ["a", "b", "c"]
                assert all(not m.is_batch for m in delivered)

        run(scenario())

    def test_batched_and_plain_multicasts_interleave(self):
        async def scenario():
            protocol = FlexCastProtocol(CDagOverlay([0, 1, 2]), hybrid=True)
            async with LocalCluster(protocol) as cluster:
                client = await cluster.new_client("client-1")
                await client.multicast([0, 1], payload="before")
                await client.multicast_batch([0, 1], payloads=["b1", "b2"])
                await client.multicast([0, 1], payload="after")
                assert cluster.delivered_at(0) == cluster.delivered_at(1)
                seq0 = [m.payload for m in cluster.servers[0].delivered]
                assert seq0 == ["before", "b1", "b2", "after"]

        run(scenario())


class TestBaselineClusters:
    def test_skeen_cluster_delivers_everywhere(self):
        async def scenario():
            protocol = SkeenProtocol(CompleteGraphOverlay([0, 1, 2]))
            async with LocalCluster(protocol) as cluster:
                client = await cluster.new_client("client-1")
                latencies = await client.multicast([0, 1, 2])
                assert set(latencies) == {0, 1, 2}

        run(scenario())

    def test_hierarchical_cluster_delivers_only_at_destinations(self):
        async def scenario():
            tree = TreeOverlay(0, {0: [1, 2]})
            protocol = HierarchicalProtocol(tree)
            async with LocalCluster(protocol) as cluster:
                client = await cluster.new_client("client-1")
                latencies = await client.multicast([1, 2])
                assert set(latencies) == {1, 2}
                # The root relayed the message but never delivered it.
                assert cluster.delivered_at(0) == []

        run(scenario())

    def test_timeout_when_destination_is_down(self):
        async def scenario():
            protocol = FlexCastProtocol(CDagOverlay([0, 1]))
            cluster = LocalCluster(protocol)
            await cluster.start()
            try:
                client = await cluster.new_client("client-1")
                await cluster.servers[1].stop()
                with pytest.raises(asyncio.TimeoutError):
                    await client.multicast([0, 1], timeout=0.8)
            finally:
                await cluster.stop()

        run(scenario())
