"""Pooled-transport behaviour: reuse, endpoint sharing, stale-retry, close."""

import asyncio

from repro.core.message import NodeHello
from repro.runtime.node import FrameServer
from repro.runtime.transport import AsyncioTransport


def run(coro):
    return asyncio.run(coro)


class RecordingServer(FrameServer):
    """Counts frames and remembers them, plus how many connections arrived."""

    def __init__(self):
        super().__init__()
        self.frames = []
        self.connections = 0

    async def _handle_connection(self, reader, writer):
        self.connections += 1
        await super()._handle_connection(reader, writer)

    def handle_frame(self, sender, envelope):
        self.frames.append((sender, envelope))


def make_transport(server, extra=None, pool=True):
    addresses = {"peer": (server.host, server.port)}
    addresses.update(extra or {})
    return AsyncioTransport(node_id="pool-test", addresses=addresses, pool=pool)


async def drain(server, count, timeout=5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while len(server.frames) < count:
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(
                f"expected {count} frames, got {len(server.frames)}"
            )
        await asyncio.sleep(0.01)


class TestPooledTransport:
    def test_many_frames_one_connection(self):
        async def scenario():
            server = RecordingServer()
            await server.start()
            transport = make_transport(server)
            for i in range(20):
                transport.send("peer", NodeHello(node_id=f"n{i}", host="h", port=i))
            await drain(server, 20)
            assert server.connections == 1
            assert transport.sent_frames == 20
            assert [env.port for _, env in server.frames] == list(range(20))
            await transport.aclose()
            await server.stop()

        run(scenario())

    def test_logical_ids_share_endpoint_connection(self):
        # Many destination ids mapped to one (host, port) must share one
        # pooled socket — the soak harness registers thousands of logical
        # client ids against a single response-plane port.
        async def scenario():
            server = RecordingServer()
            await server.start()
            aliases = {f"alias-{i}": (server.host, server.port) for i in range(10)}
            transport = make_transport(server, extra=aliases)
            for i in range(10):
                transport.send(f"alias-{i}", NodeHello(node_id="x", host="h", port=i))
            await drain(server, 10)
            assert server.connections == 1
            assert len(transport._pool) == 1
            await transport.aclose()
            await server.stop()

        run(scenario())

    def test_stale_connection_retried_after_peer_restart(self):
        async def scenario():
            server = RecordingServer()
            host, port = await server.start()
            transport = make_transport(server)
            transport.send("peer", NodeHello(node_id="a", host="h", port=1))
            await drain(server, 1)

            # Restart the peer on the same port: the server closes its side,
            # the transport's EOF watcher evicts the stale socket, and the
            # next send goes out on a fresh connection.
            await server.stop()
            reborn = RecordingServer()
            reborn.host, reborn.port = host, port
            await reborn.start()
            await asyncio.sleep(0.05)  # let the EOF reach the watcher
            assert transport._pool == {}

            transport.send("peer", NodeHello(node_id="b", host="h", port=2))
            await drain(reborn, 1)
            assert transport.failed_sends == 0
            assert reborn.frames[0][1].port == 2
            await transport.aclose()
            await reborn.stop()

        run(scenario())

    def test_aclose_empties_pool_and_send_reopens(self):
        async def scenario():
            server = RecordingServer()
            await server.start()
            transport = make_transport(server)
            transport.send("peer", NodeHello(node_id="a", host="h", port=1))
            await drain(server, 1)
            await transport.aclose()
            assert transport._pool == {}
            transport.send("peer", NodeHello(node_id="b", host="h", port=2))
            await drain(server, 2)
            assert server.connections == 2
            await transport.aclose()
            await server.stop()

        run(scenario())

    def test_down_peer_counts_failed_send(self):
        async def scenario():
            server = RecordingServer()
            host, port = await server.start()
            await server.stop()
            transport = AsyncioTransport(
                node_id="pool-test", addresses={"peer": (host, port)}, pool=True
            )
            transport.send("peer", NodeHello(node_id="a", host="h", port=1))
            await asyncio.sleep(0.1)
            assert transport.failed_sends == 1
            assert transport.sent_frames == 0
            await transport.aclose()

        run(scenario())
