"""Process-cluster integration tests: real OS processes over real TCP.

Three layers, each sized for tier-1 wall-clock budgets:

- lifecycle: a 2×3 cluster starts, reports ready, serves multicasts and
  metrics, and shuts down cleanly;
- crash/restart: one follower is SIGKILL'd mid-stream and restarted; the
  PR-6 recovery oracle (:func:`repro.checker.recovery.check_recovery`)
  checks its post-rejoin sequence against its own pre-crash prefix and a
  survivor's reference sequence;
- soak smoke: a few hundred messages through the full soak harness with
  the deep (full-sequence) oracle enabled.

The 1M-message acceptance soak lives in the nightly workflow, not here —
see docs/OPERATIONS.md.
"""

import asyncio

import pytest

from repro.checker.recovery import check_recovery
from repro.runtime.proc import ProcessCluster
from repro.workload.soak import SoakConfig, run_soak


def run(coro):
    return asyncio.run(coro)


class TestClusterLifecycle:
    def test_start_multicast_scrape_stop(self, tmp_path):
        async def scenario():
            async with ProcessCluster(
                groups=2, replication=3, storage_root=str(tmp_path)
            ) as cluster:
                assert sorted(cluster.replica_coords()) == [
                    (g, i) for g in (0, 1) for i in (0, 1, 2)
                ]
                client = await cluster.new_client("lifecycle-client")
                global_lat = await client.multicast([0, 1], payload={"op": "a"})
                assert set(global_lat) == {0, 1}
                local_lat = await client.multicast([0], payload={"op": "b"})
                assert set(local_lat) == {0}
                batch = await client.multicast_batch([0, 1], ["c", "d", "e"])
                assert len(batch) == 3
                # Group 0 saw all five messages; group 1 everything but the
                # group-0-only multicast.
                for gid, expected in ((0, 5), (1, 4)):
                    agreed = await cluster.await_group_convergence(
                        gid, min_count=expected
                    )
                    assert agreed["count"] == expected
                # A follower serves Prometheus text on its frame port.
                scraped = await cluster.scrape(0, 1)
                assert "server_delivered" in scraped
            for proc in cluster.processes.values():
                assert proc.poll() is not None

        run(scenario())

    def test_dead_child_surfaces_log_path(self, tmp_path):
        async def scenario():
            cluster = ProcessCluster(
                groups=1, replication=1, storage_root=str(tmp_path)
            )
            # Sabotage the spawn so the child dies at import time: readiness
            # polling must fail fast with a pointer at the child's log.
            original = cluster._spawn

            def broken_spawn(gid, index):
                original(gid, index)
                cluster.processes[(gid, index)].kill()

            cluster._spawn = broken_spawn
            with pytest.raises(RuntimeError, match="log"):
                await cluster.start(ready_timeout=5.0)
            await cluster.stop()

        run(scenario())


class TestKillRestart:
    def test_sigkill_follower_rejoins_consistently(self, tmp_path):
        async def scenario():
            async with ProcessCluster(
                groups=2, replication=3, storage_root=str(tmp_path)
            ) as cluster:
                client = await cluster.new_client("crash-client")
                for i in range(10):
                    await client.multicast([0, 1], payload={"seq": i})
                await cluster.await_group_convergence(0, min_count=10)
                pre_crash = await cluster.delivered_sequence(0, 2)

                await cluster.kill_replica(0, 2)
                assert cluster.live_replicas(0) == [0, 1]
                for i in range(10, 20):
                    await client.multicast([0, 1], payload={"seq": i})

                await cluster.restart_replica(0, 2)
                agreed = await cluster.await_group_convergence(0, min_count=20)
                assert agreed["count"] == 20

                rejoined = await cluster.delivered_sequence(0, 2)
                survivor = await cluster.delivered_sequence(0, 0)
                check_recovery(
                    pre_crash,
                    rejoined,
                    reference=survivor,
                    replica="group-0-replica-2",
                ).raise_if_failed()
                # The untouched group converged on all 20 as well.
                await cluster.await_group_convergence(1, min_count=20)

        run(scenario())


class TestSoakSmoke:
    def test_short_soak_oracle_clean(self, tmp_path):
        config = SoakConfig(
            groups=2,
            replication=3,
            storage_root=str(tmp_path),
            messages=600,
            clients=50,
            inflight_per_client=2,
            max_batch=32,
            max_delay_ms=5.0,
            flush_every_ms=200.0,
            sample_every_s=0.5,
            drain_timeout=60.0,
        )
        assert config.resolved_deep_check()  # <=100k messages: full oracle
        report = run(run_soak(config))
        assert report["schema"] == "BENCH_soak/v1"
        assert report["oracle"]["violations"] == []
        assert report["oracle"]["deep_check"] is True
        totals = report["totals"]
        assert totals["completed"] == totals["issued"] == 600
        assert totals["exhausted"] == 0
        assert report["latency_ms"]["delivery"]["count"] == 600
        for info in report["per_group"].values():
            assert info["converged"]
        assert report["watermarks"]  # sampled at least once
