"""Smoke tests for the figure-regeneration functions (tiny scale).

The benchmarks run these at a realistic scale and assert the paper's trends;
here they are only exercised end-to-end at the smallest possible scale so that
a plain ``pytest tests/`` run covers the whole figure pipeline too.
"""

import pytest

from repro.experiments.figures import figure1, figure5_table2, figure6, figure8
from repro.experiments.scenarios import Scale

TINY = Scale(duration_ms=600.0, num_clients=12, seed=2)


class TestFigurePipeline:
    def test_figure1_produces_per_group_overheads(self):
        result = figure1(TINY)
        assert len(result.data["overhead_percent_by_group"]) == 12
        assert "overhead" in result.text
        assert result.data["mean_percent"] >= 0.0

    def test_figure5_produces_tables_and_cdfs_for_every_overlay(self):
        result = figure5_table2(TINY)
        assert set(result.data["percentiles"]) == {
            "FlexCast O1", "FlexCast O2",
            "Hierarchical T1", "Hierarchical T2", "Hierarchical T3",
        }
        for label, cdfs in result.data["cdfs"].items():
            assert cdfs[1], label  # at least the 1st destination has a CDF

    def test_figure6_produces_one_series_per_protocol(self):
        result = figure6(TINY, client_counts=(4, 8))
        series = result.data["throughput_ops_per_sec"]
        assert set(series) == {"FlexCast O1", "Hierarchical T1", "Distributed"}
        assert all(set(points) == {4, 8} for points in series.values())

    def test_figure8_produces_twelve_rows_per_protocol(self):
        result = figure8(TINY)
        for label, rows in result.data["per_node"].items():
            assert len(rows) == 12, label
        assert set(result.data["average_kbytes_per_second"]) == set(result.data["per_node"])

    def test_figure_results_render_as_text(self):
        result = figure1(TINY)
        assert result.name.startswith("Figure 1")
        assert str(result).startswith("== Figure 1")
