"""Tests for the experiment runner (small, fast configurations)."""

import pytest

from repro.core.flexcast import FlexCastProtocol
from repro.experiments.config import (
    distributed_config,
    flexcast_config,
    hierarchical_config,
)
from repro.experiments.runner import build_protocol, run_experiment
from repro.protocols.hierarchical import HierarchicalProtocol
from repro.protocols.skeen import SkeenProtocol
from repro.sim.latencies import aws_latency_matrix

FAST = dict(num_clients=6, duration_ms=800.0, seed=3)


class TestBuildProtocol:
    def test_builds_the_right_protocol_types(self, latencies):
        assert isinstance(build_protocol(flexcast_config(), latencies), FlexCastProtocol)
        assert isinstance(build_protocol(hierarchical_config(), latencies), HierarchicalProtocol)
        assert isinstance(build_protocol(distributed_config(), latencies), SkeenProtocol)


class TestRunExperiment:
    def test_flexcast_run_produces_latency_data(self):
        result = run_experiment(flexcast_config(**FAST))
        assert result.completed > 0
        assert result.completed == result.issued
        assert result.latency.latencies_for_destination(1)
        assert result.throughput_ops_per_sec > 0
        assert result.label == "FlexCast O1"

    def test_all_issued_transactions_eventually_complete(self):
        for config in (flexcast_config(**FAST), hierarchical_config(**FAST), distributed_config(**FAST)):
            result = run_experiment(config)
            assert result.completed == result.issued, config.display_label

    def test_genuine_protocols_have_zero_overhead(self):
        for config in (flexcast_config(**FAST), distributed_config(**FAST)):
            result = run_experiment(config)
            assert result.overhead.mean_percent == pytest.approx(0.0, abs=1e-9)

    def test_hierarchical_protocol_has_positive_overhead(self):
        result = run_experiment(hierarchical_config(**FAST))
        assert result.overhead.mean_percent > 0.0

    def test_deterministic_given_seed(self):
        config = flexcast_config(num_clients=4, duration_ms=600.0, seed=11, jitter_ms=0.0)
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.completed == second.completed
        assert first.latency.latencies_for_destination(1) == second.latency.latencies_for_destination(1)

    def test_traffic_counters_populated_for_every_group(self):
        result = run_experiment(flexcast_config(**FAST))
        assert set(result.traffic) == set(range(12))
        assert sum(t.messages_received for t in result.traffic.values()) > 0

    def test_recorded_deliveries_satisfy_atomic_multicast_properties(self):
        from repro.checker import check_trace

        config = flexcast_config(num_clients=8, duration_ms=1000.0, seed=5, record_deliveries=True)
        result = run_experiment(config)
        assert result.deliveries is not None
        messages = {r.message.msg_id: r.message for r in result.deliveries.records}
        check_trace(result.deliveries, messages.values(), expect_all_delivered=True).raise_if_failed()

    def test_gc_keeps_flexcast_histories_bounded(self):
        config = flexcast_config(num_clients=8, duration_ms=2500.0, seed=7, gc_interval_ms=500.0)
        result = run_experiment(config)
        history_sizes = [g.history_size() for g in result.groups.values()]
        # Without GC histories would hold every delivered message (hundreds).
        assert max(history_sizes) < result.completed
