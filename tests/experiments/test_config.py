"""Tests for experiment configuration and scenario builders."""

import pytest

from repro.experiments.config import (
    ExperimentConfig,
    distributed_config,
    flexcast_config,
    hierarchical_config,
)
from repro.experiments.scenarios import (
    DEFAULT_SCALE,
    Scale,
    figure1_scenario,
    figure5_table2_scenarios,
    figure6_scenarios,
    figure7_table3_scenarios,
    figure8_scenarios,
    figure9_table4_scenarios,
)


class TestValidation:
    def test_protocol_overlay_compatibility_enforced(self):
        with pytest.raises(ValueError):
            ExperimentConfig(protocol="flexcast", overlay="T1")
        with pytest.raises(ValueError):
            ExperimentConfig(protocol="hierarchical", overlay="O1")
        with pytest.raises(ValueError):
            ExperimentConfig(protocol="distributed", overlay="T2")

    def test_unknown_protocol_and_overlay_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(protocol="gossip")
        with pytest.raises(ValueError):
            ExperimentConfig(overlay="O9")

    def test_parameter_ranges(self):
        with pytest.raises(ValueError):
            ExperimentConfig(locality=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(num_clients=0)
        with pytest.raises(ValueError):
            ExperimentConfig(duration_ms=0)
        with pytest.raises(ValueError):
            ExperimentConfig(warmup_fraction=0.6)

    def test_display_label(self):
        assert flexcast_config(overlay="O2").display_label == "FlexCast O2"
        assert hierarchical_config().display_label == "Hierarchical T1"
        assert distributed_config().display_label == "Distributed"
        assert ExperimentConfig(label="custom").display_label == "custom"

    def test_with_overrides_returns_new_config(self):
        config = flexcast_config()
        scaled = config.with_overrides(num_clients=7)
        assert scaled.num_clients == 7
        assert config.num_clients != 7 or config is not scaled


class TestScenarios:
    def test_figure1_is_hierarchical_t1_at_90(self):
        config = figure1_scenario()
        assert config.protocol == "hierarchical" and config.overlay == "T1"
        assert config.locality == 0.90

    def test_figure5_covers_all_five_overlays(self):
        overlays = {c.overlay for c in figure5_table2_scenarios()}
        assert overlays == {"O1", "O2", "T1", "T2", "T3"}

    def test_figure6_covers_three_protocols_and_client_sweep(self):
        configs = figure6_scenarios(client_counts=(4, 8))
        protocols = {c.protocol for c in configs}
        assert protocols == {"flexcast", "hierarchical", "distributed"}
        assert all(not c.global_only and c.locality == 0.99 for c in configs)
        assert len(configs) == 6

    def test_figure7_covers_three_localities_per_protocol(self):
        configs = figure7_table3_scenarios()
        assert len(configs) == 9
        assert {c.locality for c in configs} == {0.90, 0.95, 0.99}

    def test_figure8_uses_full_mix(self):
        assert all(not c.global_only for c in figure8_scenarios())

    def test_figure9_covers_trees_and_localities(self):
        configs = figure9_table4_scenarios()
        assert len(configs) == 9
        assert {c.overlay for c in configs} == {"T1", "T2", "T3"}

    def test_scale_applies_duration_clients_and_seed(self):
        scale = Scale(duration_ms=123.0, num_clients=7, seed=99)
        config = scale.apply(flexcast_config())
        assert (config.duration_ms, config.num_clients, config.seed) == (123.0, 7, 99)
