"""Tests for the geo-distributed gTPC-C workload."""

import random
from collections import Counter

import pytest

from repro.workload.gtpcc import GTPCCConfig, GTPCCWorkload


class TestConfig:
    def test_rejects_bad_locality(self):
        with pytest.raises(ValueError):
            GTPCCConfig(locality=0.0)
        with pytest.raises(ValueError):
            GTPCCConfig(locality=1.5)

    def test_rejects_bad_max_destinations(self):
        with pytest.raises(ValueError):
            GTPCCConfig(max_destinations=1)


class TestDestinationSelection:
    def test_home_always_included(self, latencies):
        workload = GTPCCWorkload(latencies, GTPCCConfig(locality=0.9))
        rng = random.Random(1)
        for _ in range(300):
            txn = workload.next_transaction(3, rng)
            assert 3 in txn.destinations
            assert txn.home == 3

    def test_destination_count_capped_at_three(self, latencies):
        workload = GTPCCWorkload(latencies, GTPCCConfig(locality=0.9))
        rng = random.Random(2)
        sizes = {len(workload.next_transaction(0, rng).destinations) for _ in range(2_000)}
        assert max(sizes) <= 3

    def test_global_only_mode_never_generates_local_messages(self, latencies):
        workload = GTPCCWorkload(latencies, GTPCCConfig(locality=0.9, global_only=True))
        rng = random.Random(3)
        for _ in range(500):
            txn = workload.next_transaction(5, rng)
            assert txn.is_global
            assert len(txn.destinations) >= 2

    def test_standard_mode_mostly_local_messages(self, latencies):
        """With the full TPC-C mix most transactions touch a single warehouse."""
        workload = GTPCCWorkload(latencies, GTPCCConfig(locality=0.9))
        rng = random.Random(4)
        global_count = sum(
            workload.next_transaction(0, rng).is_global for _ in range(3_000)
        )
        assert 0.05 < global_count / 3_000 < 0.5

    def test_unknown_home_rejected(self, latencies):
        workload = GTPCCWorkload(latencies)
        with pytest.raises(ValueError):
            workload.next_transaction(99, random.Random(0))


class TestLocality:
    def test_high_locality_prefers_nearest_warehouse(self, latencies):
        workload = GTPCCWorkload(latencies, GTPCCConfig(locality=0.99))
        rng = random.Random(5)
        nearest = latencies.nearest_sites(0)[0]
        picks = Counter(workload.pick_remote_warehouse(0, rng) for _ in range(2_000))
        assert picks[nearest] / 2_000 > 0.95

    def test_lower_locality_spreads_choices(self, latencies):
        workload_high = GTPCCWorkload(latencies, GTPCCConfig(locality=0.99))
        workload_low = GTPCCWorkload(latencies, GTPCCConfig(locality=0.60))
        rng_high, rng_low = random.Random(6), random.Random(6)
        nearest = latencies.nearest_sites(2)[0]
        high = sum(workload_high.pick_remote_warehouse(2, rng_high) == nearest for _ in range(2_000))
        low = sum(workload_low.pick_remote_warehouse(2, rng_low) == nearest for _ in range(2_000))
        assert high > low

    def test_excluded_warehouses_are_skipped(self, latencies):
        workload = GTPCCWorkload(latencies, GTPCCConfig(locality=0.99))
        rng = random.Random(7)
        nearest = latencies.nearest_sites(0)[0]
        pick = workload.pick_remote_warehouse(0, rng, exclude=frozenset({nearest}))
        assert pick != nearest

    def test_exclude_everything_raises(self, latencies):
        workload = GTPCCWorkload(latencies)
        everyone = frozenset(range(12)) - {0}
        with pytest.raises(ValueError):
            workload.pick_remote_warehouse(0, random.Random(0), exclude=everyone)

    def test_destination_size_distribution_mostly_two(self, latencies):
        workload = GTPCCWorkload(latencies, GTPCCConfig(locality=0.95, global_only=True))
        dist = workload.destination_size_distribution(0, random.Random(8), samples=2_000)
        assert dist[2] > 0.8
        assert dist.get(3, 0.0) < 0.2

    def test_generation_counters(self, latencies):
        workload = GTPCCWorkload(latencies, GTPCCConfig(locality=0.9, global_only=True))
        rng = random.Random(9)
        for _ in range(100):
            workload.next_transaction(0, rng)
        assert workload.generated == 100
        assert workload.generated_global == 100


class TestWarehouseSubsets:
    def test_custom_warehouse_subset(self, latencies):
        workload = GTPCCWorkload(latencies, GTPCCConfig(locality=0.9), warehouses=[0, 1, 2, 3])
        rng = random.Random(10)
        for _ in range(200):
            txn = workload.next_transaction(1, rng)
            assert txn.destinations <= {0, 1, 2, 3}

    def test_needs_at_least_two_warehouses(self, latencies):
        with pytest.raises(ValueError):
            GTPCCWorkload(latencies, warehouses=[0])
