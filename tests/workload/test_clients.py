"""Tests for the closed-loop simulator clients."""

import random

import pytest

from repro.core.flexcast import FlexCastProtocol
from repro.core.message import ClientResponse
from repro.overlay.cdag import CDagOverlay
from repro.sim.events import EventLoop
from repro.sim.latencies import LatencyMatrix
from repro.sim.network import Network
from repro.sim.transport import SimTransport
from repro.workload.clients import ClosedLoopClient
from repro.workload.gtpcc import GTPCCConfig, GTPCCWorkload


def deploy(num_groups=3, stop_after_ms=500.0, think_time_ms=0.0):
    loop = EventLoop()
    matrix = LatencyMatrix(
        matrix=[[1 if a == b else 10 for b in range(num_groups)] for a in range(num_groups)],
        names=[f"s{i}" for i in range(num_groups)],
        local_latency=1.0,
    )
    network = Network(loop, matrix)
    overlay = CDagOverlay(list(range(num_groups)))
    protocol = FlexCastProtocol(overlay)

    def sink(group_id, message):
        if network.is_registered(message.sender):
            network.send(group_id, message.sender, ClientResponse(msg_id=message.msg_id, group=group_id))

    for gid in overlay.groups:
        group = protocol.create_group(gid, SimTransport(network, gid), sink)
        network.register(gid, site=gid, handler=group.on_envelope)

    workload = GTPCCWorkload(matrix, GTPCCConfig(locality=0.9, global_only=True))
    completed = []
    client = ClosedLoopClient(
        client_id="client-0",
        home=0,
        protocol=protocol,
        workload=workload,
        network=network,
        rng=random.Random(1),
        group_node=lambda gid: gid,
        on_complete=completed.append,
        stop_after_ms=stop_after_ms,
        think_time_ms=think_time_ms,
    )
    return loop, network, client, completed


class TestClosedLoop:
    def test_client_issues_transactions_until_the_deadline(self):
        loop, network, client, completed = deploy(stop_after_ms=500.0)
        client.start()
        loop.run_until_idle()
        assert client.issued > 5
        assert client.completed == client.issued
        assert len(completed) == client.completed
        assert client.outstanding == 0

    def test_one_transaction_in_flight_at_a_time(self):
        loop, network, client, completed = deploy(stop_after_ms=300.0)
        client.start()
        while loop.step():
            assert client.outstanding <= 1

    def test_completed_records_carry_sorted_latencies(self):
        loop, network, client, completed = deploy(stop_after_ms=300.0)
        client.start()
        loop.run_until_idle()
        for record in completed:
            assert record.latencies_by_arrival == sorted(record.latencies_by_arrival)
            assert record.is_global and record.destinations >= 2
            assert record.completed_at >= record.submitted_at
            assert record.home == 0

    def test_think_time_reduces_throughput(self):
        loop1, _, busy, _ = deploy(stop_after_ms=400.0, think_time_ms=0.0)
        busy.start()
        loop1.run_until_idle()
        loop2, _, idle, _ = deploy(stop_after_ms=400.0, think_time_ms=50.0)
        idle.start()
        loop2.run_until_idle()
        assert idle.issued < busy.issued

    def test_stop_prevents_further_transactions(self):
        loop, network, client, completed = deploy(stop_after_ms=10_000.0)
        client.start()
        loop.run(until=100.0)
        issued_at_stop = client.issued
        client.stop()
        loop.run_until_idle()
        assert client.issued <= issued_at_stop + 1


class TestBoundedResubmitter:
    """Unit tests for the crash-profile resubmit-on-timeout helper."""

    def _make(self, settled, timeout_ms=10.0, max_retries=3):
        from repro.workload.clients import BoundedResubmitter

        loop = EventLoop()
        resent = []
        resubmitter = BoundedResubmitter(
            resend=resent.append,
            is_settled=lambda key: key in settled,
            schedule=lambda delay_ms, cb: loop.schedule(delay_ms, cb),
            timeout_ms=timeout_ms,
            max_retries=max_retries,
        )
        return loop, resent, resubmitter

    def test_settled_key_is_never_resent(self):
        settled = {"m0"}
        loop, resent, resubmitter = self._make(settled)
        resubmitter.track("m0")
        loop.run_until_idle()
        assert resent == []
        assert resubmitter.retries == 0
        assert resubmitter.exhausted == []

    def test_unsettled_key_resent_until_settled(self):
        settled = set()
        loop, resent, resubmitter = self._make(settled)
        resubmitter.track("m0")
        # Settle after the second resend (mid-run delivery).
        original_resend = resubmitter._resend

        def resend_and_maybe_settle(key):
            original_resend(key)
            if len(resent) == 2:
                settled.add(key)

        resubmitter._resend = resend_and_maybe_settle
        loop.run_until_idle()
        assert resent == ["m0", "m0"]
        assert resubmitter.exhausted == []

    def test_retry_budget_is_bounded(self):
        loop, resent, resubmitter = self._make(set(), max_retries=3)
        resubmitter.track("m0")
        loop.run_until_idle()
        assert resent == ["m0"] * 3
        assert resubmitter.retries == 3
        assert resubmitter.exhausted == ["m0"]

    def test_zero_retries_only_records_exhaustion(self):
        loop, resent, resubmitter = self._make(set(), max_retries=0)
        resubmitter.track("m0")
        loop.run_until_idle()
        assert resent == []
        assert resubmitter.exhausted == ["m0"]

    def test_invalid_parameters_rejected(self):
        from repro.workload.clients import BoundedResubmitter

        noop = lambda *a: None  # noqa: E731
        with pytest.raises(ValueError):
            BoundedResubmitter(noop, noop, noop, timeout_ms=0.0)
        with pytest.raises(ValueError):
            BoundedResubmitter(noop, noop, noop, timeout_ms=1.0, max_retries=-1)
