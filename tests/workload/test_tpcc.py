"""Tests for the TPC-C transaction profiles."""

import random
from collections import Counter

import pytest

from repro.workload.tpcc import (
    GLOBAL_ONLY_MIX,
    NEW_ORDER_MAX_ITEMS,
    NEW_ORDER_MIN_ITEMS,
    SINGLE_WAREHOUSE_TYPES,
    STANDARD_MIX,
    TransactionType,
    choose_transaction_type,
    sample_profile,
)


class TestMixes:
    def test_standard_mix_sums_to_one(self):
        assert sum(STANDARD_MIX.values()) == pytest.approx(1.0)

    def test_global_only_mix_normalised(self):
        assert sum(GLOBAL_ONLY_MIX.values()) == pytest.approx(1.0)
        assert set(GLOBAL_ONLY_MIX) == {TransactionType.NEW_ORDER, TransactionType.PAYMENT}

    def test_choose_transaction_type_follows_mix(self):
        rng = random.Random(7)
        counts = Counter(choose_transaction_type(rng) for _ in range(20_000))
        assert counts[TransactionType.NEW_ORDER] / 20_000 == pytest.approx(0.45, abs=0.02)
        assert counts[TransactionType.PAYMENT] / 20_000 == pytest.approx(0.43, abs=0.02)
        for single in SINGLE_WAREHOUSE_TYPES:
            assert counts[single] / 20_000 == pytest.approx(0.04, abs=0.01)


class TestProfiles:
    def test_new_order_item_count_in_spec_range(self):
        rng = random.Random(1)
        for _ in range(500):
            profile = sample_profile(rng, {TransactionType.NEW_ORDER: 1.0})
            assert NEW_ORDER_MIN_ITEMS <= profile.items <= NEW_ORDER_MAX_ITEMS
            assert 0 <= profile.remote_accesses <= profile.items

    def test_new_order_remote_rate_about_two_percent(self):
        rng = random.Random(2)
        items = remote = 0
        for _ in range(5_000):
            profile = sample_profile(rng, {TransactionType.NEW_ORDER: 1.0})
            items += profile.items
            remote += profile.remote_accesses
        assert remote / items == pytest.approx(0.02, abs=0.005)

    def test_payment_remote_rate_about_fifteen_percent(self):
        rng = random.Random(3)
        remote = sum(
            sample_profile(rng, {TransactionType.PAYMENT: 1.0}).remote_accesses
            for _ in range(10_000)
        )
        assert remote / 10_000 == pytest.approx(0.15, abs=0.02)

    def test_single_warehouse_types_never_remote(self):
        rng = random.Random(4)
        for txn_type in SINGLE_WAREHOUSE_TYPES:
            profile = sample_profile(rng, {txn_type: 1.0})
            assert profile.is_single_warehouse
            assert profile.remote_accesses == 0

    def test_payload_bytes_positive_and_new_order_largest(self):
        rng = random.Random(5)
        new_order = sample_profile(rng, {TransactionType.NEW_ORDER: 1.0})
        payment = sample_profile(rng, {TransactionType.PAYMENT: 1.0})
        assert new_order.payload_bytes > payment.payload_bytes > 0
