"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings as hypothesis_settings

from repro.core.message import reset_message_ids
from repro.overlay.builders import standard_overlays
from repro.sim.latencies import aws_latency_matrix

# Hypothesis example budgets.  Tests that pin their own @settings are
# unaffected; tests that don't (the single-shared-group strategy suite)
# scale with the profile — nightly CI exports HYPOTHESIS_PROFILE=nightly
# for a 10x longer adversarial search.
hypothesis_settings.register_profile("ci", max_examples=15, deadline=None)
hypothesis_settings.register_profile(
    "nightly", max_examples=150, deadline=None
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture(autouse=True)
def _fresh_message_ids():
    """Keep message ids short and deterministic within each test."""
    reset_message_ids()
    yield


@pytest.fixture(scope="session")
def latencies():
    """The default 12-region AWS latency matrix."""
    return aws_latency_matrix()


@pytest.fixture(scope="session")
def overlays(latencies):
    """All standard overlays (O1, O2, T1, T2, T3, complete)."""
    return standard_overlays(latencies)


@pytest.fixture
def rng():
    return random.Random(42)
