"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.message import reset_message_ids
from repro.overlay.builders import standard_overlays
from repro.sim.latencies import aws_latency_matrix


@pytest.fixture(autouse=True)
def _fresh_message_ids():
    """Keep message ids short and deterministic within each test."""
    reset_message_ids()
    yield


@pytest.fixture(scope="session")
def latencies():
    """The default 12-region AWS latency matrix."""
    return aws_latency_matrix()


@pytest.fixture(scope="session")
def overlays(latencies):
    """All standard overlays (O1, O2, T1, T2, T3, complete)."""
    return standard_overlays(latencies)


@pytest.fixture
def rng():
    return random.Random(42)
