"""Tests for the atomic multicast trace checker."""

import pytest

from repro.checker.properties import check_genuineness, check_trace
from repro.core.message import Message
from repro.protocols.base import RecordingSink


def msg(mid, dst):
    return Message(msg_id=mid, dst=frozenset(dst))


def sink_from(sequences):
    """Build a RecordingSink from {group: [messages in delivery order]}."""
    sink = RecordingSink()
    for group, messages in sequences.items():
        for m in messages:
            sink(group, m)
    return sink


class TestCleanTraces:
    def test_consistent_trace_passes_all_checks(self):
        m1, m2 = msg("m1", {"A", "B"}), msg("m2", {"A", "B"})
        sink = sink_from({"A": [m1, m2], "B": [m1, m2]})
        report = check_trace(sink, [m1, m2])
        assert report.ok
        report.raise_if_failed()  # must not raise
        assert report.checked_messages == 2 and report.checked_groups == 2

    def test_disjoint_destinations_unconstrained(self):
        m1, m2 = msg("m1", {"A"}), msg("m2", {"B"})
        sink = sink_from({"A": [m1], "B": [m2]})
        assert check_trace(sink, [m1, m2]).ok


class TestViolations:
    def test_prefix_order_violation_detected(self):
        m1, m2 = msg("m1", {"A", "B"}), msg("m2", {"A", "B"})
        sink = sink_from({"A": [m1, m2], "B": [m2, m1]})
        report = check_trace(sink, [m1, m2])
        assert not report.ok
        assert any(v.property_name == "prefix-order" for v in report.violations)
        with pytest.raises(AssertionError):
            report.raise_if_failed()

    def test_acyclic_order_violation_detected(self):
        # A: m1 < m2, B: m2 < m3, C: m3 < m1 — a cycle across three groups.
        m1 = msg("m1", {"A", "C"})
        m2 = msg("m2", {"A", "B"})
        m3 = msg("m3", {"B", "C"})
        sink = sink_from({"A": [m1, m2], "B": [m2, m3], "C": [m3, m1]})
        report = check_trace(sink, [m1, m2, m3])
        assert any(v.property_name == "acyclic-order" for v in report.violations)

    def test_integrity_violations_detected(self):
        m1 = msg("m1", {"A"})
        ghost = msg("ghost", {"A"})
        sink = sink_from({"A": [m1, m1, ghost], "B": [m1]})
        report = check_trace(sink, [m1], expect_all_delivered=False)
        names = {v.property_name for v in report.violations}
        assert "integrity" in names
        descriptions = " ".join(v.description for v in report.violations)
        assert "twice" in descriptions
        assert "never multicast" in descriptions
        assert "addressed to" in descriptions

    def test_missing_delivery_detected_when_expected(self):
        m1 = msg("m1", {"A", "B"})
        sink = sink_from({"A": [m1]})
        report = check_trace(sink, [m1], expect_all_delivered=True)
        assert any(v.property_name == "validity/agreement" for v in report.violations)

    def test_missing_delivery_ignored_when_not_expected(self):
        m1 = msg("m1", {"A", "B"})
        sink = sink_from({"A": [m1]})
        assert check_trace(sink, [m1], expect_all_delivered=False).ok


class TestGenuineness:
    def test_equal_counts_pass(self):
        report = check_genuineness({1: 10, 2: 5}, {1: 10, 2: 5}, groups=[1, 2])
        assert report.ok

    def test_receiving_more_than_delivered_fails(self):
        report = check_genuineness({1: 10}, {1: 7}, groups=[1])
        assert not report.ok
        assert report.violations[0].property_name == "minimality"
