"""Unit tests for the epoch-aware checker properties."""

from repro.checker.properties import check_epochs


class TestEpochMonotonic:
    def test_clean_trace_passes(self):
        report = check_epochs(
            {
                0: [("m1", 0), ("b1", 0), ("m2", 1)],
                1: [("m1", 0), ("b1", 0), ("m2", 1)],
            },
            barriers={"b1": 0},
        )
        assert report.ok

    def test_epoch_regression_flagged(self):
        report = check_epochs({0: [("m1", 1), ("m2", 0)]})
        assert not report.ok
        assert report.violations[0].property_name == "epoch-monotonic"


class TestEpochAgreement:
    def test_message_straddling_the_boundary_flagged(self):
        report = check_epochs(
            {
                0: [("m1", 0)],
                1: [("m1", 1)],
            }
        )
        assert not report.ok
        assert any(
            v.property_name == "epoch-agreement" for v in report.violations
        )


class TestBarrierBoundary:
    def test_barrier_delivered_in_wrong_epoch_flagged(self):
        report = check_epochs({0: [("b1", 1)]}, barriers={"b1": 0})
        assert not report.ok
        assert any(
            v.property_name == "epoch-barrier-boundary" for v in report.violations
        )

    def test_same_epoch_drain_after_barrier_is_legal(self):
        # Groups keep draining concurrent old-epoch messages between
        # delivering the barrier and switching.
        report = check_epochs(
            {0: [("b1", 0), ("m1", 0)]},
            barriers={"b1": 0},
        )
        assert report.ok

    def test_earlier_epoch_delivery_after_barrier_flagged(self):
        report = check_epochs(
            {0: [("b2", 1), ("m1", 0)]},
            barriers={"b2": 1},
        )
        assert not report.ok
        assert any(
            v.property_name == "epoch-barrier-boundary" for v in report.violations
        )

    def test_multiple_barriers_checked_independently(self):
        report = check_epochs(
            {
                0: [("m1", 0), ("b1", 0), ("m2", 1), ("b2", 1), ("m3", 2)],
            },
            barriers={"b1": 0, "b2": 1},
        )
        assert report.ok
