"""Unit tests for the shared sliding-window multiset."""

import pytest

from repro.obs.window import SlidingWindow


class TestSlidingWindow:
    def test_one_observation_many_keys(self):
        window = SlidingWindow(1_000.0)
        window.observe(0.0, [("a",), ("b",), ("c",)])
        assert window.sample_count == 1
        assert window.count(("a",)) == 1
        assert set(window.items()) == {("a",), ("b",), ("c",)}

    def test_eviction_removes_all_keys_of_an_observation(self):
        window = SlidingWindow(100.0)
        window.observe(0.0, ["x", "y"])
        window.observe(500.0, ["y"])
        window.evict(500.0)
        assert window.sample_count == 1
        assert window.count("x") == 0
        assert window.count("y") == 1

    def test_shared_key_counts_decrement_not_vanish(self):
        window = SlidingWindow(100.0)
        window.observe(0.0, ["k"])
        window.observe(50.0, ["k"])
        assert window.count("k") == 2
        window.evict(120.0)  # horizon 20: only the t=0 entry expires
        assert window.count("k") == 1

    def test_total_observed_is_monotonic(self):
        window = SlidingWindow(10.0)
        window.observe(0.0, ["a"])
        window.observe(1_000.0, ["a"])
        window.evict(1_000.0)
        assert window.sample_count == 1
        assert window.total_observed == 2

    def test_items_returns_a_copy(self):
        window = SlidingWindow(10.0)
        window.observe(0.0, ["a"])
        items = window.items()
        items["a"] = 99
        assert window.count("a") == 1

    def test_clear(self):
        window = SlidingWindow(10.0)
        window.observe(0.0, ["a"])
        window.clear()
        assert window.sample_count == 0
        assert window.items() == {}

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            SlidingWindow(0.0)
        with pytest.raises(ValueError):
            SlidingWindow(-5.0)
