"""End-to-end observability: hub feed, instrumented protocol, live export.

Covers the tentpole's three export paths — Prometheus text over the frame
port, ``LocalCluster.scrape``, JSON snapshot — plus the delivery feed and
the leak gauges the fuzz oracle reads.
"""

import asyncio

from repro.core.flexcast import FlexCastGroup, FlexCastProtocol
from repro.core.message import Message
from repro.obs import Observability, STAGE_DELIVER, STAGE_ENQUEUE
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.runtime.cluster import LocalCluster
from repro.sim.transport import RecordingTransport


def run(coro):
    return asyncio.run(coro)


def make_group(obs=None, group_id=0):
    group = FlexCastGroup(
        group_id, CDagOverlay([0, 1, 2]), RecordingTransport(group_id), RecordingSink()
    )
    if obs is not None:
        group.attach_obs(obs)
    return group


class TestDeliveryFeed:
    def test_listeners_receive_each_emission_once(self):
        obs = Observability()
        seen = []
        listener = lambda home, dst, at: seen.append((home, dst, at))  # noqa: E731
        obs.add_delivery_listener(listener)
        obs.add_delivery_listener(listener)  # idempotent
        obs.emit_delivery(0, frozenset({0, 1}), 5.0)
        assert seen == [(0, frozenset({0, 1}), 5.0)]
        obs.remove_delivery_listener(listener)
        obs.emit_delivery(0, frozenset({0}), 6.0)
        assert len(seen) == 1
        assert not obs.has_delivery_listeners


class TestInstrumentedGroup:
    def test_counters_track_protocol_stats(self):
        obs = Observability()
        group = make_group(obs)
        # Global message from the root: the diff fan-out sends MSGs down.
        group.on_client_request(Message(msg_id="m1", dst=frozenset({0, 1, 2})))
        snap = obs.registry.snapshot()
        assert snap["counters"]['group_delivered_total{group="0"}'] == 1
        assert snap["counters"]['flexcast_msgs_sent_total{group="0"}'] >= 1

    def test_leak_gauges_read_zero_on_clean_state(self):
        obs = Observability()
        group = make_group(obs)
        group.on_client_request(Message(msg_id="m1", dst=frozenset({0})))
        snap = obs.registry.snapshot()
        assert snap["gauges"]['flexcast_leaked_pending_entries{group="0"}'] == 0
        assert snap["gauges"]['flexcast_member_index_orphans{group="0"}'] == 0

    def test_trace_covers_enqueue_and_deliver(self):
        obs = Observability.with_tracing()
        group = make_group(obs)
        group.on_client_request(Message(msg_id="m1", dst=frozenset({0})))
        stages = [e[1] for e in obs.tracer.timeline("m1")]
        assert STAGE_ENQUEUE in stages
        assert STAGE_DELIVER in stages

    def test_diff_size_histogram_populated(self):
        obs = Observability()
        group = make_group(obs)
        # Global message: descendants get diffs carrying the new vertex.
        group.on_client_request(Message(msg_id="m1", dst=frozenset({0, 1, 2})))
        hist = obs.registry.snapshot()["histograms"][
            'flexcast_diff_size_items{group="0"}'
        ]
        assert hist["count"] >= 1


class TestLiveExport:
    def test_metrics_endpoint_and_scrape(self):
        async def scenario():
            obs = Observability()
            protocol = FlexCastProtocol(CDagOverlay([0, 1, 2]))
            async with LocalCluster(protocol, obs=obs) as cluster:
                client = await cluster.new_client("client-1")
                await client.multicast([0, 2], payload="order")
                bodies = await cluster.scrape()
                assert set(bodies) == {0, 1, 2}
                # One shared registry: any port's /metrics shows the whole
                # cluster, labelled per group.
                body = bodies[0]
                assert "# TYPE group_delivered_total counter" in body
                assert 'group_delivered_total{group="0"} 1' in body
                assert 'group_delivered_total{group="2"} 1' in body
                assert 'server_frames_received_total{group="0"}' in body

        run(scenario())

    def test_unknown_path_is_404_and_frames_still_work(self):
        async def scenario():
            obs = Observability()
            protocol = FlexCastProtocol(CDagOverlay([0, 1]))
            async with LocalCluster(protocol, obs=obs) as cluster:
                server = cluster.servers[0]
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b"GET /nope HTTP/1.0\r\n\r\n")
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                assert raw.startswith(b"HTTP/1.0 404")
                # The HTTP detour must not break the frame protocol.
                client = await cluster.new_client("client-1")
                latencies = await client.multicast([0, 1])
                assert set(latencies) == {0, 1}

        run(scenario())

    def test_metrics_404_without_observability(self):
        async def scenario():
            protocol = FlexCastProtocol(CDagOverlay([0, 1]))
            async with LocalCluster(protocol) as cluster:
                server = cluster.servers[0]
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                assert raw.startswith(b"HTTP/1.0 404")

        run(scenario())
