"""Unit tests for the metrics registry: instruments, rendering, snapshots."""

import json

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    SIZE_BUCKETS,
)


class TestCounter:
    def test_push_counter_increments(self):
        registry = MetricsRegistry()
        c = registry.counter("reqs_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_callback_counter_reads_live_state(self):
        stats = {"sent": 0}
        registry = MetricsRegistry()
        c = registry.counter("sent_total", fn=lambda: stats["sent"])
        stats["sent"] = 7
        assert c.value == 7.0

    def test_callback_counter_rejects_inc(self):
        registry = MetricsRegistry()
        c = registry.counter("cb_total", fn=lambda: 1)
        with pytest.raises(ValueError):
            c.inc()

    def test_get_or_create_returns_same_series(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        # Distinct labels -> distinct series.
        assert registry.counter("a_total", labels={"g": "1"}) is not registry.counter(
            "a_total", labels={"g": "2"}
        )

    def test_reregistering_callback_rebinds(self):
        # A restarted component re-registers and the series must follow the
        # *new* instance, not the dead one.
        registry = MetricsRegistry()
        registry.counter("x_total", fn=lambda: 1)
        c = registry.counter("x_total", fn=lambda: 2)
        assert c.value == 2


class TestGauge:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10.0)
        g.add(-3.0)
        assert g.value == 7.0

    def test_callback_gauge(self):
        pending = ["a", "b"]
        g = MetricsRegistry().gauge("pending", fn=lambda: len(pending))
        assert g.value == 2.0
        pending.clear()
        assert g.value == 0.0


class TestHistogramEdgeCases:
    def test_empty_histogram(self):
        h = Histogram("lat_ms")
        assert h.total == 0
        assert h.percentile(0.5) is None
        assert h.summary()["p99"] is None
        assert h.min is None and h.max is None

    def test_single_sample(self):
        h = Histogram("lat_ms")
        h.observe(3.0)
        assert h.total == 1
        assert h.min == 3.0 and h.max == 3.0
        # Percentile reports the bucket upper bound: conservative, <=2x off.
        p50 = h.percentile(0.5)
        assert p50 is not None and 3.0 <= p50 <= 6.0

    def test_overflow_bucket_reports_exact_max(self):
        h = Histogram("lat_ms")
        huge = DEFAULT_BUCKETS[-1] * 10
        h.observe(huge)
        assert h.overflow == 1
        assert h.percentile(0.999) == huge

    def test_percentile_ordering(self):
        h = Histogram("lat_ms")
        for v in (1.0, 2.0, 4.0, 8.0, 1000.0):
            h.observe(v)
        assert h.percentile(0.5) <= h.percentile(0.99) <= h.percentile(0.999)

    def test_invalid_quantile_rejected(self):
        h = Histogram("lat_ms")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_weighted_observation_counts_population(self):
        # 1-in-N sampled hot paths observe with weight=N; the histogram
        # must keep estimating the full population.
        h = Histogram("diff_items", bounds=SIZE_BUCKETS)
        h.observe(2.0, weight=4)
        assert h.total == 4
        assert h.sum == 8.0
        assert h.percentile(0.99) == 2.0

    def test_merge(self):
        a = Histogram("lat_ms")
        b = Histogram("lat_ms")
        a.observe(1.0)
        b.observe(100.0)
        b.observe(DEFAULT_BUCKETS[-1] * 2)  # overflow
        a.merge(b)
        assert a.total == 3
        assert a.min == 1.0
        assert a.max == DEFAULT_BUCKETS[-1] * 2
        assert a.overflow == 1

    def test_merge_rejects_different_bounds(self):
        a = Histogram("x", bounds=DEFAULT_BUCKETS)
        b = Histogram("x", bounds=SIZE_BUCKETS)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=(2.0, 1.0))


class TestPrometheusRendering:
    def render(self):
        registry = MetricsRegistry()
        registry.counter(
            "reqs_total", "Requests.", labels={"group": "1"}
        ).inc(3)
        registry.gauge("depth", "Queue depth.").set(2.0)
        h = registry.histogram("lat_ms", "Latency.", bounds=(1.0, 2.0, 4.0))
        h.observe(1.5)
        h.observe(100.0)  # overflow
        return registry.render_prometheus()

    def test_headers_and_samples(self):
        text = self.render()
        assert "# HELP reqs_total Requests.\n# TYPE reqs_total counter" in text
        assert 'reqs_total{group="1"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text

    def test_histogram_series_shape(self):
        text = self.render()
        # Cumulative buckets, +Inf always present, sum and count trailers.
        assert 'lat_ms_bucket{le="2"} 1' in text
        assert 'lat_ms_bucket{le="+Inf"} 2' in text
        assert "lat_ms_sum 101.5" in text
        assert "lat_ms_count 2" in text

    def test_empty_buckets_elided_but_cumulative_correct(self):
        text = self.render()
        # The le="1" and le="4" buckets saw no samples and are elided.
        assert 'le="1"' not in text
        assert 'le="4"' not in text

    def test_text_format_is_line_oriented_and_terminated(self):
        text = self.render()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            assert line.startswith("#") or " " in line

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"path": 'a"b\\c'}).inc()
        text = registry.render_prometheus()
        assert 'path="a\\"b\\\\c"' in text

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")


class TestSnapshot:
    def test_snapshot_round_trips_through_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("g", labels={"k": "v"}).set(1.5)
        registry.histogram("h_ms").observe(4.0)
        path = tmp_path / "snap.json"
        registry.dump_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["counters"]["a_total"] == 2
        assert loaded["gauges"]['g{k="v"}'] == 1.5
        assert loaded["histograms"]["h_ms"]["count"] == 1.0
