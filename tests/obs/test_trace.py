"""Unit tests for the lifecycle tracer, its dumps, and the CLI renderer."""

import json

from repro.obs import (
    STAGE_DELIVER,
    STAGE_ENQUEUE,
    STAGE_SUBMIT,
    Tracer,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.trace import find_trace, render_timeline, summarize


def seeded_tracer():
    tracer = Tracer()
    tracer.record("m1", STAGE_SUBMIT, 10.0, site="client")
    tracer.record("m1", STAGE_ENQUEUE, 12.0, site="g0")
    tracer.record("m1", STAGE_DELIVER, 15.5, site="g0")
    tracer.record("m2", STAGE_SUBMIT, 11.0, site="client")
    return tracer


class TestTracer:
    def test_timeline_groups_and_orders(self):
        tracer = seeded_tracer()
        timeline = tracer.timeline("m1")
        assert [e[1] for e in timeline] == [
            STAGE_SUBMIT,
            STAGE_ENQUEUE,
            STAGE_DELIVER,
        ]
        assert tracer.timeline("m2")[0][2] == 11.0
        assert tracer.timeline("missing") == []

    def test_simultaneous_events_sorted_by_stage_order(self):
        tracer = Tracer()
        # Same timestamp: canonical lifecycle order must win, regardless of
        # arrival order.
        tracer.record("m", STAGE_DELIVER, 5.0)
        tracer.record("m", STAGE_ENQUEUE, 5.0)
        assert [e[1] for e in tracer.timeline("m")] == [
            STAGE_ENQUEUE,
            STAGE_DELIVER,
        ]

    def test_bounded_to_max_events(self):
        tracer = Tracer(max_events=3)
        for i in range(10):
            tracer.record(f"m{i}", STAGE_SUBMIT, float(i))
        assert len(tracer) == 3
        # Oldest events fell off first.
        assert [e[0] for e in tracer.events] == ["m7", "m8", "m9"]

    def test_dump_and_load_round_trip(self, tmp_path):
        tracer = seeded_tracer()
        path = tmp_path / "trace.json"
        tracer.dump_json(str(path))
        loaded = Tracer.load_json(str(path))
        assert list(loaded.events) == list(tracer.events)
        assert loaded.max_events == tracer.max_events

    def test_dump_is_plain_json(self, tmp_path):
        path = tmp_path / "trace.json"
        seeded_tracer().dump_json(str(path))
        data = json.loads(path.read_text())
        assert data["events"][0] == ["m1", STAGE_SUBMIT, 10.0, "client", ""]

    def test_find_trace_by_substring(self):
        tracer = seeded_tracer()
        found = find_trace(tracer, "m2")
        assert found is not None and found[0] == "m2"
        # Ambiguous ("m" matches both) and unknown needles return None.
        assert find_trace(tracer, "m") is None
        assert find_trace(tracer, "zzz") is None


class TestRendering:
    def test_render_timeline_shows_offsets_and_span(self):
        tracer = seeded_tracer()
        text = render_timeline("m1", tracer.timeline("m1"))
        assert "trace m1" in text
        assert STAGE_DELIVER in text
        assert "total span: 5.500 ms" in text

    def test_summarize_lists_every_trace(self):
        text = summarize(seeded_tracer())
        assert "2 traces, 4 events" in text
        assert "m1" in text and "m2" in text


class TestCli:
    def test_trace_summary_and_single_timeline(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        seeded_tracer().dump_json(str(path))
        assert obs_main(["trace", str(path)]) == 0
        assert "2 traces" in capsys.readouterr().out
        assert obs_main(["trace", str(path), "--id", "m1"]) == 0
        assert "total span" in capsys.readouterr().out

    def test_trace_unknown_id_fails(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        seeded_tracer().dump_json(str(path))
        assert obs_main(["trace", str(path), "--id", "nope"]) == 1

    def test_dashboard_over_registry_snapshot(self, tmp_path, capsys):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("reqs_total").inc(3)
        registry.histogram("lat_ms").observe(2.0)
        path = tmp_path / "snap.json"
        registry.dump_json(str(path))
        assert obs_main(["dashboard", str(path)]) == 0
        out = capsys.readouterr().out
        assert "reqs_total" in out
        assert "lat_ms" in out and "p99" in out
