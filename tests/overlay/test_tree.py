"""Unit tests for the tree overlay."""

import pytest

from repro.overlay.base import OverlayError
from repro.overlay.tree import TreeOverlay


@pytest.fixture
def tree():
    # Paper Figure 2(b): A at the root, children B and C; B has children D, E.
    return TreeOverlay("A", {"A": ["B", "C"], "B": ["D", "E"]})


class TestStructure:
    def test_groups_and_root(self, tree):
        assert set(tree.groups) == {"A", "B", "C", "D", "E"}
        assert tree.root == "A"

    def test_parent_and_children(self, tree):
        assert tree.parent("A") is None
        assert tree.parent("D") == "B"
        assert tree.children("A") == ["B", "C"]
        assert tree.children("D") == []

    def test_depth(self, tree):
        assert tree.depth("A") == 0
        assert tree.depth("B") == 1
        assert tree.depth("E") == 2

    def test_leaves_and_inner_groups(self, tree):
        assert tree.is_leaf("C") and tree.is_leaf("D")
        assert not tree.is_leaf("B")
        assert set(tree.inner_groups()) == {"A", "B"}

    def test_path_to_root(self, tree):
        assert tree.path_to_root("E") == ["E", "B", "A"]
        assert tree.path_to_root("A") == ["A"]

    def test_two_parents_rejected(self):
        with pytest.raises(OverlayError):
            TreeOverlay("A", {"A": ["B", "C"], "C": ["B"]})

    def test_unknown_group_query_raises(self, tree):
        with pytest.raises(OverlayError):
            tree.parent("Z")


class TestRouting:
    def test_edges_are_parent_child_links(self, tree):
        assert tree.can_send("A", "B")
        assert tree.can_send("B", "A")
        assert not tree.can_send("D", "E")
        assert not tree.can_send("A", "E")

    def test_lca_of_siblings_is_parent(self, tree):
        assert tree.lca({"B", "C"}) == "A"
        assert tree.lca({"D", "E"}) == "B"

    def test_lca_of_nested_destinations(self, tree):
        assert tree.lca({"B", "D"}) == "B"
        assert tree.lca({"C", "E"}) == "A"
        assert tree.lca({"D"}) == "D"

    def test_entry_group_is_tree_lca_even_if_not_destination(self, tree):
        # Key non-genuineness example from the paper: a message to {B, C}
        # enters at A, which is not a destination.
        assert tree.entry_group({"B", "C"}) == "A"

    def test_next_hops_only_toward_destinations(self, tree):
        assert tree.next_hops("A", {"D", "C"}) == ["B", "C"]
        assert tree.next_hops("B", {"D", "C"}) == ["D"]
        assert tree.next_hops("C", {"D", "C"}) == []

    def test_groups_involved_includes_relays(self, tree):
        # {D, E} involves B (their lca) only, plus the destinations.
        assert tree.groups_involved({"D", "E"}) == {"B", "D", "E"}
        # {B, C} involves the root A as a relay.
        assert tree.groups_involved({"B", "C"}) == {"A", "B", "C"}

    def test_groups_involved_single_destination(self, tree):
        assert tree.groups_involved({"E"}) == {"E"}

    def test_validate_rejects_unknown_destination(self, tree):
        with pytest.raises(OverlayError):
            tree.lca({"A", "Z"})
