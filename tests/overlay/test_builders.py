"""Unit tests for the O1/O2/T1/T2/T3 overlay builders."""

import pytest

from repro.overlay.base import CompleteGraphOverlay
from repro.overlay.builders import (
    build_complete,
    build_o1,
    build_o2,
    build_t1,
    build_t2,
    build_t3,
    nearest_neighbour_order,
    standard_overlays,
)
from repro.overlay.cdag import CDagOverlay
from repro.overlay.tree import TreeOverlay


class TestNearestNeighbourOrder:
    def test_starts_at_seed_and_covers_all_sites(self, latencies):
        order = nearest_neighbour_order(latencies, seed=0)
        assert order[0] == 0
        assert sorted(order) == list(range(12))

    def test_each_step_picks_nearest_remaining(self, latencies):
        order = nearest_neighbour_order(latencies, seed=0)
        for i in range(len(order) - 1):
            current, chosen = order[i], order[i + 1]
            remaining = set(order[i + 1 :])
            best = min(remaining, key=lambda s: (latencies.latency(current, s), s))
            assert chosen == best

    def test_invalid_seed_rejected(self, latencies):
        with pytest.raises(ValueError):
            nearest_neighbour_order(latencies, seed=99)


class TestCDagBuilders:
    def test_o1_seeded_at_central_region(self, latencies):
        o1 = build_o1(latencies)
        assert isinstance(o1, CDagOverlay)
        assert o1.order[0] == latencies.centroid_site()
        # The central site lies between the two continental extremes, never in
        # the periphery (South America or Oceania).
        assert latencies.cluster(o1.order[0]) in {"america", "europe"}

    def test_o2_seeded_at_region_zero(self, latencies):
        o2 = build_o2(latencies)
        assert o2.order[0] == 0

    def test_o1_and_o2_are_different_orders_of_the_same_groups(self, latencies):
        o1, o2 = build_o1(latencies), build_o2(latencies)
        assert sorted(o1.order) == sorted(o2.order) == list(range(12))
        assert o1.order != o2.order


class TestTreeBuilders:
    def test_all_trees_cover_all_regions(self, latencies):
        for builder in (build_t1, build_t2, build_t3):
            tree = builder(latencies)
            assert isinstance(tree, TreeOverlay)
            assert sorted(tree.groups) == list(range(12))

    def test_roots_are_european(self, latencies):
        # The paper's trees are rooted in Europe (the cluster bridging America
        # and Asia in its deployment); the builders preserve that choice.
        for builder in (build_t1, build_t2, build_t3):
            assert latencies.cluster(builder(latencies).root) == "europe"

    def test_t1_has_more_inner_nodes_than_t2_than_t3(self, latencies):
        t1, t2, t3 = build_t1(latencies), build_t2(latencies), build_t3(latencies)
        assert len(t1.inner_groups()) > len(t2.inner_groups()) > len(t3.inner_groups())

    def test_t3_is_a_star(self, latencies):
        t3 = build_t3(latencies)
        assert t3.inner_groups() == [t3.root]
        assert len(t3.children(t3.root)) == 11

    def test_t1_continental_subtrees(self, latencies):
        t1 = build_t1(latencies)
        root_children = t1.children(t1.root)
        # The root's children include the America and Asia subtree roots.
        clusters = {latencies.cluster(c) for c in root_children}
        assert {"america", "asia"} <= clusters


class TestStandardOverlays:
    def test_contains_all_paper_overlays(self, overlays):
        assert set(overlays) == {"O1", "O2", "T1", "T2", "T3", "complete"}

    def test_complete_overlay_type(self, overlays):
        assert isinstance(overlays["complete"], CompleteGraphOverlay)

    def test_complete_overlay_connectivity(self, latencies):
        complete = build_complete(latencies)
        assert complete.can_send(0, 11) and complete.can_send(11, 0)
        assert not complete.can_send(3, 3)

    def test_default_matrix_used_when_none_given(self):
        assert set(standard_overlays()) == {"O1", "O2", "T1", "T2", "T3", "complete"}
