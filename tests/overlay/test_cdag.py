"""Unit tests for the complete-DAG overlay."""

import pytest

from repro.overlay.base import OverlayError
from repro.overlay.cdag import CDagOverlay


@pytest.fixture
def dag():
    # Paper Figure 2(c): A, B, D, E, C from lowest to highest rank.
    return CDagOverlay(["A", "B", "D", "E", "C"])


class TestRanks:
    def test_rank_order(self, dag):
        assert dag.rank("A") == 0
        assert dag.rank("C") == 4
        assert dag.order == ["A", "B", "D", "E", "C"]

    def test_group_at_rank(self, dag):
        assert dag.group_at_rank(0) == "A"
        assert dag.group_at_rank(4) == "C"
        with pytest.raises(OverlayError):
            dag.group_at_rank(5)

    def test_unknown_group_raises(self, dag):
        with pytest.raises(OverlayError):
            dag.rank("Z")

    def test_duplicate_groups_rejected(self):
        with pytest.raises(OverlayError):
            CDagOverlay(["A", "A", "B"])

    def test_empty_overlay_rejected(self):
        with pytest.raises(OverlayError):
            CDagOverlay([])


class TestRelationships:
    def test_ancestors_and_descendants(self, dag):
        assert dag.ancestors("D") == ["A", "B"]
        assert dag.descendants("D") == ["E", "C"]
        assert dag.ancestors("A") == []
        assert dag.descendants("C") == []

    def test_is_ancestor_descendant(self, dag):
        assert dag.is_ancestor("A", "C")
        assert not dag.is_ancestor("C", "A")
        assert dag.is_descendant("C", "A")
        assert not dag.is_ancestor("A", "A")

    def test_edges_go_from_lower_to_higher_rank_only(self, dag):
        assert dag.can_send("A", "C")
        assert dag.can_send("B", "E")
        assert not dag.can_send("C", "A")
        assert not dag.can_send("A", "A")

    def test_complete_connectivity(self, dag):
        # Every lower group can reach every higher group directly: C-DAG.
        for i, low in enumerate(dag.order):
            for high in dag.order[i + 1 :]:
                assert dag.can_send(low, high)


class TestLca:
    def test_lca_is_lowest_ranked_destination(self, dag):
        assert dag.lca({"E", "C"}) == "E"
        assert dag.lca({"B", "C", "D"}) == "B"
        assert dag.lca({"C"}) == "C"

    def test_entry_group_matches_lca(self, dag):
        assert dag.entry_group({"D", "C"}) == dag.lca({"D", "C"})

    def test_lca_rejects_unknown_or_empty_destinations(self, dag):
        with pytest.raises(OverlayError):
            dag.lca({"A", "Z"})
        with pytest.raises(OverlayError):
            dag.lca(set())

    def test_sorted_by_rank(self, dag):
        assert dag.sorted_by_rank({"C", "A", "E"}) == ["A", "E", "C"]

    def test_describe_mentions_order(self, dag):
        assert "A -> B -> D -> E -> C" in dag.describe()

    def test_contains(self, dag):
        assert "A" in dag
        assert "Z" not in dag
