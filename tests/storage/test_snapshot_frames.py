"""Tests for the cold-sync frame helpers in :mod:`repro.storage.recovery`.

``snapshot_frame_for`` packs a group's live history into one
:class:`~repro.core.message.HistorySnapshotFrame`; ``apply_snapshot_frame``
bulk-installs it at the receiver — through the group's own envelope handler
when it has one, so merge side effects happen exactly as for any received
delta.  The asyncio runtime and ``restart_replica`` both ride on these.
"""

import pytest

from repro.core.flexcast import FlexCastGroup
from repro.core.history import History
from repro.core.message import HistorySnapshotFrame, Message
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.transport import RecordingTransport
from repro.storage import apply_snapshot_frame, snapshot_frame_for


def make_group(group_id=0, fill=0):
    overlay = CDagOverlay(list(range(4)))
    group = FlexCastGroup(
        group_id, overlay, RecordingTransport(group_id), RecordingSink()
    )
    for i in range(fill):
        group.history.record_delivery(
            Message(msg_id=f"m{i}", dst=frozenset({group_id}))
        )
    return group


class TestSnapshotFrameFor:
    def test_packs_the_full_live_history(self):
        group = make_group(fill=12)
        frame = snapshot_frame_for(group, epoch=3)
        assert isinstance(frame, HistorySnapshotFrame)
        assert frame.group == 0 and frame.epoch == 3
        assert set(frame.delta.iter_vertices()) == set(
            group.history.full_delta().vertices
        )
        assert set(frame.delta.iter_edges()) == set(group.history.edges())

    def test_rejects_history_less_objects(self):
        with pytest.raises(TypeError):
            snapshot_frame_for(object())


class TestApplySnapshotFrame:
    def test_dispatches_through_the_group_envelope_handler(self):
        source = make_group(fill=10)
        target = make_group(group_id=1)
        apply_snapshot_frame(target, snapshot_frame_for(source))
        assert set(target.history.message_ids()) == set(
            source.history.message_ids()
        )
        assert set(target.history.edges()) == set(source.history.edges())

    def test_application_is_idempotent(self):
        source = make_group(fill=8)
        target = make_group(group_id=1)
        frame = snapshot_frame_for(source)
        apply_snapshot_frame(target, frame)
        before = (set(target.history.message_ids()), target.history.version)
        apply_snapshot_frame(target, frame)
        assert (set(target.history.message_ids()), target.history.version) == before

    def test_falls_back_to_plain_merge_without_a_handler(self):
        class Bare:
            def __init__(self):
                self.history = History()

        source = make_group(fill=6)
        target = Bare()
        apply_snapshot_frame(target, snapshot_frame_for(source))
        assert set(target.history.message_ids()) == set(
            source.history.message_ids()
        )

    def test_rejects_history_less_objects(self):
        frame = snapshot_frame_for(make_group(fill=2))
        with pytest.raises(TypeError):
            apply_snapshot_frame(object(), frame)
