"""FileStorage/FileWAL: framing, torn-write recovery, snapshots, fsync batching."""

from __future__ import annotations

import json
import os
import struct
import zlib

import pytest

from repro.storage import FileStorage, StorageError
from repro.storage.file import _HEADER, FileWAL


def _wal_path(storage: FileStorage, name: str) -> str:
    return os.path.join(storage.root, name + ".wal")


def test_append_and_reopen_round_trip(tmp_path):
    storage = FileStorage(str(tmp_path))
    wal = storage.wal("log")
    records = [["v", "m1", [0, 1]], ["e", "m1", "m2"], {"k": 1}, 7, "plain"]
    for record in records:
        wal.append(record)
    wal.close()

    reopened = FileStorage(str(tmp_path)).wal("log")
    assert reopened.records() == records
    assert len(reopened) == len(records)


def test_records_are_json_normalized(tmp_path):
    wal = FileStorage(str(tmp_path)).wal("log")
    wal.append(["v", "m1", (0, 1)])  # tuple -> list through JSON
    assert wal.records() == [["v", "m1", [0, 1]]]


def test_truncated_payload_recovers_to_last_complete_record(tmp_path):
    storage = FileStorage(str(tmp_path))
    wal = storage.wal("log")
    for i in range(5):
        wal.append({"i": i})
    wal.close()

    path = _wal_path(storage, "log")
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(size - 3)  # torn mid-payload of the last frame

    recovered = FileStorage(str(tmp_path)).wal("log")
    assert recovered.records() == [{"i": i} for i in range(4)]
    # The torn tail was truncated away on open: appends go to a clean end.
    recovered.append({"i": "new"})
    recovered.close()
    again = FileStorage(str(tmp_path)).wal("log")
    assert again.records() == [{"i": 0}, {"i": 1}, {"i": 2}, {"i": 3}, {"i": "new"}]


def test_truncated_header_recovers(tmp_path):
    storage = FileStorage(str(tmp_path))
    wal = storage.wal("log")
    wal.append("a")
    wal.append("b")
    wal.close()
    path = _wal_path(storage, "log")
    with open(path, "ab") as fh:
        fh.write(b"\x00\x00")  # 2 bytes of a header that never finished

    recovered = FileStorage(str(tmp_path)).wal("log")
    assert recovered.records() == ["a", "b"]
    assert os.path.getsize(path) == os.path.getsize(path)  # stable after open


def test_bad_crc_drops_frame_and_everything_after(tmp_path):
    storage = FileStorage(str(tmp_path))
    wal = storage.wal("log")
    for i in range(4):
        wal.append({"i": i})
    wal.close()

    # Flip one payload byte inside the third frame: its CRC no longer
    # matches, so frames 3 and 4 are both gone (boundaries past a corrupt
    # frame cannot be trusted).
    path = _wal_path(storage, "log")
    with open(path, "rb") as fh:
        data = fh.read()
    offset = 0
    for _ in range(2):  # skip two good frames
        length, _ = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size + length
    corrupt_at = offset + _HEADER.size + 2
    corrupted = data[:corrupt_at] + bytes([data[corrupt_at] ^ 0xFF]) + data[corrupt_at + 1 :]
    with open(path, "wb") as fh:
        fh.write(corrupted)

    recovered = FileStorage(str(tmp_path)).wal("log")
    assert recovered.records() == [{"i": 0}, {"i": 1}]
    assert os.path.getsize(path) < len(corrupted)


def test_absurd_length_field_treated_as_torn(tmp_path):
    storage = FileStorage(str(tmp_path))
    wal = storage.wal("log")
    wal.append("good")
    wal.close()
    path = _wal_path(storage, "log")
    with open(path, "ab") as fh:
        fh.write(struct.pack(">II", 2**31, 0) + b"junk")

    recovered = FileStorage(str(tmp_path)).wal("log")
    assert recovered.records() == ["good"]


def test_empty_and_missing_files(tmp_path):
    storage = FileStorage(str(tmp_path))
    assert storage.wal("never-written").records() == []
    open(os.path.join(str(tmp_path), "empty.wal"), "wb").close()
    assert storage.wal("empty").records() == []


def test_reset_replaces_contents_atomically(tmp_path):
    storage = FileStorage(str(tmp_path))
    wal = storage.wal("log")
    for i in range(10):
        wal.append(i)
    wal.reset([["compacted", 1]])
    assert wal.records() == [["compacted", 1]]
    wal.append("after")
    wal.close()
    assert FileStorage(str(tmp_path)).wal("log").records() == [["compacted", 1], "after"]
    assert not os.path.exists(_wal_path(storage, "log") + ".tmp")


def test_fsync_batching_still_flushes_every_append(tmp_path):
    # With fsync_every=1000 nothing forces an fsync, but appends are still
    # flushed to the OS, so a reader sees every record (process-crash model).
    storage = FileStorage(str(tmp_path), fsync_every=1000)
    wal = storage.wal("log")
    for i in range(7):
        wal.append(i)
    with open(_wal_path(storage, "log"), "rb") as fh:
        data = fh.read()
    frames = 0
    offset = 0
    while offset < len(data):
        length, crc = _HEADER.unpack_from(data, offset)
        payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
        assert zlib.crc32(payload) == crc
        frames += 1
        offset += _HEADER.size + length
    assert frames == 7


def test_snapshot_round_trip_and_replace(tmp_path):
    storage = FileStorage(str(tmp_path))
    assert storage.read_snapshot("hist") is None
    storage.write_snapshot("hist", {"version": 1, "vertices": [["m1", [0]]]})
    storage.write_snapshot("hist", {"version": 2, "vertices": []})
    assert FileStorage(str(tmp_path)).read_snapshot("hist") == {
        "version": 2,
        "vertices": [],
    }


def test_corrupt_snapshot_raises(tmp_path):
    storage = FileStorage(str(tmp_path))
    storage.write_snapshot("hist", {"version": 1})
    snap = os.path.join(str(tmp_path), "hist.snap")
    data = bytearray(open(snap, "rb").read())
    data[-1] ^= 0xFF
    with open(snap, "wb") as fh:
        fh.write(bytes(data))
    with pytest.raises(StorageError):
        storage.read_snapshot("hist")


def test_non_serializable_record_rejected(tmp_path):
    wal = FileStorage(str(tmp_path)).wal("log")
    with pytest.raises(StorageError):
        wal.append(object())


def test_wal_names_are_sanitized(tmp_path):
    storage = FileStorage(str(tmp_path))
    wal = storage.wal("group/0:replica 1")
    wal.append(1)
    assert os.path.exists(os.path.join(str(tmp_path), "group_0_replica_1.wal"))


def test_shared_handle_for_same_name(tmp_path):
    storage = FileStorage(str(tmp_path))
    first = storage.wal("log")
    first.append(1)
    second = storage.wal("log")
    assert second is first  # no interleaved double-appenders on one file


def test_direct_filewal_reopen_after_close(tmp_path):
    path = os.path.join(str(tmp_path), "direct.wal")
    wal = FileWAL(path, fsync_every=1)
    wal.append({"x": 1})
    wal.close()
    assert FileWAL(path).records() == [{"x": 1}]
