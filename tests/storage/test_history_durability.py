"""History durability: WAL mirroring, snapshot cadence, snapshot+suffix recovery."""

from __future__ import annotations

import pytest

from repro.core.history import History
from repro.core.message import Message
from repro.storage import FileStorage, InMemoryStorage


def _msg(i: int, dst=(0, 1)) -> Message:
    return Message(msg_id=f"m{i}", dst=frozenset(dst), sender="c", payload_bytes=16)


@pytest.fixture(params=["memory", "file"])
def storage(request, tmp_path):
    if request.param == "memory":
        return InMemoryStorage()
    return FileStorage(str(tmp_path))


def test_recover_empty_storage_is_cold_start(storage):
    recovered = History.recover(storage, "g0")
    assert len(recovered) == 0
    assert recovered.last_delivered is None
    assert recovered.delivered_locally == frozenset()


def test_wal_replay_reproduces_history(storage):
    h = History()
    h.attach_storage(storage, "g0", snapshot_min_wal_records=10**9)
    for i in range(8):
        h.record_delivery(_msg(i))
    h.add_vertex("remote", frozenset({2}))
    h.add_edge("m7", "remote")

    r = History.recover(storage, "g0")
    assert set(r.message_ids()) == set(h.message_ids())
    assert sorted(r.edges()) == sorted(h.edges())
    assert r.last_delivered == "m7"
    assert r.delivered_locally == h.delivered_locally
    assert "remote" not in r.delivered_locally  # merged, not locally delivered


def test_snapshot_plus_suffix_recovery(storage):
    h = History()
    # Tiny threshold: compaction triggers a snapshot almost immediately.
    h.attach_storage(storage, "g0", snapshot_min_wal_records=4)
    for i in range(6):
        h.record_delivery(_msg(i))
    h.compact_journal(h.version)  # snapshot point
    for i in range(6, 10):
        h.record_delivery(_msg(i))  # WAL suffix past the snapshot

    assert storage.read_snapshot("g0") is not None
    r = History.recover(storage, "g0")
    assert set(r.message_ids()) == set(h.message_ids())
    assert sorted(r.edges()) == sorted(h.edges())
    assert r.last_delivered == "m9"
    assert r.delivered_locally == h.delivered_locally


def test_gc_forget_survives_recovery(storage):
    h = History()
    h.attach_storage(storage, "g0", snapshot_min_wal_records=10**9)
    for i in range(6):
        h.record_delivery(_msg(i))
    victims = h.collect_garbage("m5", keep={"m5"})
    assert victims

    r = History.recover(storage, "g0")
    assert set(r.message_ids()) == {"m5"}
    for victim in victims:
        assert r.is_forgotten(victim)
    # A forgotten id must not resurrect through replayed or merged vertices.
    r.add_vertex("m0", frozenset({0, 1}))
    assert "m0" not in r


def test_attach_to_populated_history_snapshots_immediately(storage):
    h = History()
    for i in range(5):
        h.record_delivery(_msg(i))
    h.attach_storage(storage, "g0")
    r = History.recover(storage, "g0")
    assert set(r.message_ids()) == set(h.message_ids())
    assert r.last_delivered == "m4"


def test_recovered_history_keeps_journaling(storage):
    h = History()
    h.attach_storage(storage, "g0", snapshot_min_wal_records=10**9)
    h.record_delivery(_msg(0))
    r = History.recover(storage, "g0")
    r.record_delivery(_msg(1))
    # A second recovery sees the post-recovery delivery too.
    r2 = History.recover(storage, "g0")
    assert r2.last_delivered == "m1"
    assert set(r2.message_ids()) == {"m0", "m1"}


def test_recovered_history_serves_full_diff_to_fresh_descendants(storage):
    h = History()
    h.attach_storage(storage, "g0", snapshot_min_wal_records=2)
    for i in range(5):
        h.record_delivery(_msg(i))
    h.compact_journal(h.version)
    r = History.recover(storage, "g0")
    # A brand-new descendant (watermark 0 < journal_base) gets the whole
    # live history once — as a packed snapshot — exactly like after an
    # ordinary compaction.
    vertices, edges, snapshot, version = r.changes_since(0)
    assert snapshot is not None and not vertices and not edges
    assert set(snapshot.ids) == set(r.message_ids())
    assert version == r.version


def test_snapshot_resets_wal(storage):
    h = History()
    h.attach_storage(storage, "g0", snapshot_min_wal_records=10**9)
    for i in range(4):
        h.record_delivery(_msg(i))
    assert len(h._wal) > 0
    h.snapshot_now()
    assert len(h._wal) == 0
    r = History.recover(storage, "g0")
    assert set(r.message_ids()) == set(h.message_ids())
