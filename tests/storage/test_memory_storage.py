"""InMemoryStorage: determinism, JSON-normalization parity, crash survival."""

from __future__ import annotations

import pytest

from repro.storage import InMemoryStorage, StorageError


def test_wal_survives_handle_loss():
    # The simulated-crash model: the replica (and its WAL handle) dies, the
    # storage object survives; a fresh handle sees everything.
    storage = InMemoryStorage()
    wal = storage.wal("r0.log")
    wal.append(["c", 0, "cmd"])
    del wal
    assert storage.wal("r0.log").records() == [["c", 0, "cmd"]]


def test_normalization_mirrors_json_round_trip():
    storage = InMemoryStorage()
    wal = storage.wal("w")
    wal.append(["v", "m1", (0, 1)])
    assert wal.records() == [["v", "m1", [0, 1]]]  # tuple became a list
    with pytest.raises(StorageError):
        wal.append(object())
    with pytest.raises(StorageError):
        storage.write_snapshot("s", {1, 2})


def test_reset_and_len():
    wal = InMemoryStorage().wal("w")
    for i in range(5):
        wal.append(i)
    assert len(wal) == 5
    wal.reset([10, 11])
    assert wal.records() == [10, 11]
    assert len(wal) == 2


def test_snapshots_and_stats():
    storage = InMemoryStorage()
    assert storage.read_snapshot("s") is None
    storage.write_snapshot("s", {"v": 1})
    storage.write_snapshot("s", {"v": 2})
    assert storage.read_snapshot("s") == {"v": 2}
    assert storage.stats["snapshots"] == 2
    storage.wal("w").append(1)
    assert storage.stats["appends"] == 1
    assert storage.wal_names() == ["w"]


def test_normalize_off_passthrough():
    wal = InMemoryStorage(normalize=False).wal("w")
    marker = object()
    wal.append(marker)
    assert wal.records()[0] is marker
