"""Smoke-run every ``examples/*.py`` entry point under fixed seeds.

The ``replicated_inventory`` replay mismatch sat in ROADMAP for two PRs
because nothing executed the examples in CI — a regression in an example was
invisible to tier-1.  These tests run each example in-process (scaled down
where the default scale would be slow), assert the invariants the examples print,
and replay the produced traces through the trace checker so an ordering or
delivery bug in an example workload fails the suite instead of rotting.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.checker import check_trace, conservation_check

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestReplicatedInventory:
    @pytest.fixture(scope="class")
    def part1(self):
        return load_example("replicated_inventory").run_geo_distributed()

    def test_part1_invariants(self, part1):
        # The printed invariants: 12/12 warehouses match the sequential
        # replay and no stock is created or destroyed.
        assert part1["mismatches"] == 0
        assert part1["total_units"] == part1["expected_units"] == 36_000

    def test_part1_trace_properties(self, part1):
        """The observability gap that let the bug escape: the example never
        ran the checker over its own trace.  Close it here.

        Integrity, validity/agreement (the lost-delivery bug class) and
        prefix order — the properties the inventory's correctness rests on —
        must hold outright.  Global acyclic order across chains of
        disjoint-destination transfers is the protocol's documented residual
        limitation (DESIGN.md "anatomy of a lost delivery"); it is reported
        but does not affect per-pair stock consistency.
        """
        report = check_trace(part1["trace"], part1["messages"], expect_all_delivered=True)
        hard = [v for v in report.violations if v.property_name != "acyclic-order"]
        assert hard == []

    def test_part1_conservation(self, part1):
        sequences = {
            gid: part1["trace"].sequence(gid) for gid in part1["trace"].per_group
        }
        messages = {m.msg_id: m for m in part1["messages"]}
        assert conservation_check(sequences, messages).ok

    def test_part2_failover(self):
        result = load_example("replicated_inventory").run_replicated_failover()
        assert result["agree"]
        delivered = result["delivered"]
        assert len(delivered) == len(set(delivered))  # exactly-once reporting
        assert len(delivered) >= 0.9 * len(result["adjustments"])

    def test_main_prints_the_advertised_numbers(self, capsys):
        load_example("replicated_inventory").main()
        out = capsys.readouterr().out
        assert "warehouses matching replay   : 12/12" in out
        assert "36000 units (expected 36000)" in out
        assert "surviving replicas agree     : True" in out


class TestQuickstart:
    def test_quickstart_checks_pass(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "All atomic multicast properties hold" in out


class TestGtpccComparison:
    def test_comparison_runs_at_small_scale(self, capsys, monkeypatch):
        monkeypatch.setattr(
            sys, "argv",
            ["gtpcc_comparison.py", "--clients", "8", "--duration-ms", "800"],
        )
        load_example("gtpcc_comparison").main()
        out = capsys.readouterr().out
        assert "FlexCast" in out


class TestPaperFigures:
    def test_single_figure_runs_at_small_scale(self, capsys, monkeypatch):
        monkeypatch.setattr(
            sys, "argv",
            ["paper_figures.py", "--figure", "1", "--duration-ms", "800",
             "--clients", "8"],
        )
        load_example("paper_figures").main()
        out = capsys.readouterr().out
        assert "Hierarchical T1" in out


class TestAsyncioCluster:
    def test_localhost_cluster_delivers(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["asyncio_cluster.py"])
        load_example("asyncio_cluster").main()
        out = capsys.readouterr().out
        assert "deliveries per group" in out


class TestWorkloadShift:
    def test_example_main_scaled_down(self, capsys, monkeypatch):
        """Run the example's real ``main`` against a shortened scenario.

        The checker runs inside ``raise_if_unsafe`` (loss/dup/reorder across
        the epoch boundary), so this also covers the trace-checking satellite
        for the workload-shift example.
        """
        import dataclasses

        module = load_example("workload_shift")
        scaled = dataclasses.replace(
            module.workload_shift_scenario(),
            shift_ms=2_000.0,
            duration_ms=6_000.0,
            post_eval_ms=4_500.0,
        )
        monkeypatch.setattr(module, "workload_shift_scenario", lambda: scaled)
        module.main()
        out = capsys.readouterr().out
        assert "atomic multicast safety checks passed across the epoch boundary" in out
        assert "switch-over cost" in out
