"""Tests for the multi-Paxos replicated log and replicated groups."""

import pytest

from repro.core.flexcast import FlexCastProtocol
from repro.core.message import ClientRequest, Message
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.events import EventLoop
from repro.sim.latencies import LatencyMatrix
from repro.sim.network import Network
from repro.sim.transport import SimTransport
from repro.smr.multipaxos import MultiPaxosReplica
from repro.smr.replica import ReplicatedGroup


def deploy_replicas(n=3):
    loop = EventLoop()
    size = max(n, 2)
    matrix = LatencyMatrix(
        matrix=[[1.0 if a != b else 0.1 for b in range(size)] for a in range(size)],
        names=[f"s{i}" for i in range(size)],
    )
    network = Network(loop, matrix)
    ids = [f"r{i}" for i in range(n)]
    applied = {rid: [] for rid in ids}
    replicas = {}
    for i, rid in enumerate(ids):
        replica = MultiPaxosReplica(
            rid, ids, SimTransport(network, rid),
            apply=lambda inst, value, rid=rid: applied[rid].append(value),
        )
        replicas[rid] = replica
        network.register(rid, site=min(i, size - 1), handler=replica.on_message)
    return loop, network, replicas, applied


class TestReplication:
    def test_leader_is_lowest_id(self):
        _, _, replicas, _ = deploy_replicas()
        assert replicas["r0"].is_leader
        assert not replicas["r1"].is_leader
        assert replicas["r1"].leader == "r0"

    def test_commands_applied_in_the_same_order_everywhere(self):
        loop, _, replicas, applied = deploy_replicas()
        for i in range(5):
            replicas[f"r{i % 3}"].submit(f"cmd-{i}")
        loop.run_until_idle()
        logs = list(applied.values())
        assert all(log == logs[0] for log in logs)
        assert sorted(logs[0]) == sorted(f"cmd-{i}" for i in range(5))

    def test_followers_forward_to_leader(self):
        loop, _, replicas, applied = deploy_replicas()
        replicas["r2"].submit("from-follower")
        loop.run_until_idle()
        assert applied["r0"] == ["from-follower"]
        assert replicas["r2"].stats["forwarded"] == 1

    def test_replica_must_be_listed_in_peers(self):
        loop, network, _, _ = deploy_replicas()
        with pytest.raises(ValueError):
            MultiPaxosReplica("rx", ["r0", "r1"], SimTransport(network, "rx"), apply=lambda i, v: None)

    def test_leader_failover_preserves_and_continues_the_log(self):
        loop, network, replicas, applied = deploy_replicas()
        replicas["r0"].submit("before-crash")
        loop.run_until_idle()
        network.unregister("r0")
        for rid in ("r1", "r2"):
            replicas[rid].mark_failed("r0")
        assert replicas["r1"].is_leader
        replicas["r2"].submit("after-crash")
        loop.run_until_idle()
        assert applied["r1"] == ["before-crash", "after-crash"]
        assert applied["r2"] == ["before-crash", "after-crash"]

    def test_pending_forwarded_commands_reproposed_after_failover(self):
        loop, network, replicas, applied = deploy_replicas()
        # Crash the leader before it can decide the forwarded command.
        network.unregister("r0")
        replicas["r1"].submit("lost-then-recovered")
        for rid in ("r1", "r2"):
            replicas[rid].mark_failed("r0")
        loop.run_until_idle()
        assert applied["r1"] == ["lost-then-recovered"]
        assert applied["r2"] == ["lost-then-recovered"]

    def test_single_replica_group_works(self):
        loop, _, replicas, applied = deploy_replicas(n=1)
        replicas["r0"].submit("solo")
        loop.run_until_idle()
        assert applied["r0"] == ["solo"]
        assert replicas["r0"].log == ["solo"]


class TestReplicatedGroup:
    def test_replicated_flexcast_group_delivers_once_and_replicas_agree(self):
        loop = EventLoop()
        matrix = LatencyMatrix(matrix=[[0.5, 5], [5, 0.5]], names=["x", "y"])
        network = Network(loop, matrix)
        overlay = CDagOverlay([0, 1])
        protocol = FlexCastProtocol(overlay)
        sink = RecordingSink()
        group = ReplicatedGroup(
            group_id=0, protocol=protocol, network=network, site=0, sink=sink,
            replication_factor=3,
        )
        request = ClientRequest(message=Message(msg_id="m1", dst=frozenset({0})))
        network.register("client", site=1, handler=lambda s, p: None)
        network.send("client", group.leader.replica_id, request)
        loop.run_until_idle()
        # Delivered exactly once to the outside world...
        assert sink.sequence(0) == ["m1"]
        # ...and every replica applied the same ordered request.
        sequences = group.delivered_sequences()
        assert all(seq == ["m1"] for seq in sequences.values())

    def test_leader_crash_then_new_requests_still_delivered(self):
        loop = EventLoop()
        matrix = LatencyMatrix(matrix=[[0.5, 5], [5, 0.5]], names=["x", "y"])
        network = Network(loop, matrix)
        protocol = FlexCastProtocol(CDagOverlay([0, 1]))
        sink = RecordingSink()
        group = ReplicatedGroup(
            group_id=0, protocol=protocol, network=network, site=0, sink=sink,
            replication_factor=3,
        )
        network.register("client", site=1, handler=lambda s, p: None)
        network.send("client", group.leader.replica_id,
                     ClientRequest(message=Message(msg_id="m1", dst=frozenset({0}))))
        loop.run_until_idle()
        group.crash_replica(0, network)
        new_leader = group.leader
        assert new_leader.replica_id != group.replicas[0].replica_id
        network.send("client", new_leader.replica_id,
                     ClientRequest(message=Message(msg_id="m2", dst=frozenset({0}))))
        loop.run_until_idle()
        assert sink.sequence(0) == ["m1", "m2"]


class TestCatchupChunking:
    """A lapsed replica's decided suffix is served in bounded chunks.

    One giant ``CatchupReply`` would exceed the wire frame cap once a
    replica lapses for hundreds of thousands of instances (the soak's
    kill/restart window); the serving side must split it.
    """

    class _RecordingTransport:
        def __init__(self):
            self.sent = []

        def send(self, destination, payload):
            self.sent.append((destination, payload))

    def _replica_with_decisions(self, count):
        from repro.smr.multipaxos import Commit

        transport = self._RecordingTransport()
        replica = MultiPaxosReplica(
            "r1", ["r0", "r1"], transport, apply=lambda i, v: None,
        )
        for instance in range(count):
            replica.on_message("r0", Commit(instance=instance, value=f"v{instance}"))
        transport.sent.clear()
        return replica, transport

    def test_reply_split_into_bounded_chunks(self, monkeypatch):
        import repro.smr.multipaxos as mp

        monkeypatch.setattr(mp, "CATCHUP_CHUNK", 4)
        replica, transport = self._replica_with_decisions(10)
        replica.on_message(
            "rx", mp.CatchupRequest(from_instance=0, from_replica="rx")
        )

        replies = [msg for dst, msg in transport.sent if dst == "rx"]
        assert [len(reply.entries) for reply in replies] == [4, 4, 2]
        received = [entry for reply in replies for entry in reply.entries]
        assert received == [(i, f"v{i}") for i in range(10)]
        assert replica.stats["catchup_served"] == 1
        assert replica.stats["catchup_entries_sent"] == 10

    def test_chunks_apply_identically_to_one_reply(self, monkeypatch):
        import repro.smr.multipaxos as mp

        monkeypatch.setattr(mp, "CATCHUP_CHUNK", 3)
        source, transport = self._replica_with_decisions(8)
        source.on_message(
            "rx", mp.CatchupRequest(from_instance=2, from_replica="rx")
        )

        applied = []
        lapsed = MultiPaxosReplica(
            "rx", ["r1", "rx"], self._RecordingTransport(),
            apply=lambda i, v: applied.append((i, v)),
        )
        for _, reply in transport.sent:
            lapsed.on_message("r1", reply)
        # Instances 0/1 were never decided at the lapsed replica, so the
        # in-order apply waterline stays parked before the suffix — but the
        # decisions themselves all landed, ready for a lower-instance fill.
        assert lapsed.stats["catchup_entries_applied"] == 6
        assert all(lapsed._decided[i] == f"v{i}" for i in range(2, 8))
