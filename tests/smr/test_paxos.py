"""Unit tests for single-decree Paxos roles."""

import pytest

from repro.smr.paxos import (
    Accept,
    Accepted,
    Acceptor,
    Ballot,
    Nack,
    Prepare,
    Promise,
    Proposer,
    ZERO_BALLOT,
)


class TestBallot:
    def test_total_order(self):
        assert Ballot(0, 1) < Ballot(1, 0)
        assert Ballot(1, 0) < Ballot(1, 2)
        assert Ballot(1, 2) <= Ballot(1, 2)
        assert ZERO_BALLOT < Ballot(0, 0)

    def test_next_increments_round(self):
        assert Ballot(3, 7).next() == Ballot(4, 7)


class TestAcceptor:
    def test_promises_higher_ballots(self):
        acceptor = Acceptor("a")
        reply = acceptor.on_prepare(Prepare(instance=0, ballot=Ballot(1, 0)))
        assert isinstance(reply, Promise)
        assert reply.accepted_ballot == ZERO_BALLOT and reply.accepted_value is None

    def test_nacks_lower_or_equal_ballots(self):
        acceptor = Acceptor("a")
        acceptor.on_prepare(Prepare(instance=0, ballot=Ballot(5, 0)))
        reply = acceptor.on_prepare(Prepare(instance=0, ballot=Ballot(2, 0)))
        assert isinstance(reply, Nack)
        assert reply.promised == Ballot(5, 0)

    def test_accepts_at_promised_ballot(self):
        acceptor = Acceptor("a")
        acceptor.on_prepare(Prepare(instance=0, ballot=Ballot(1, 0)))
        reply = acceptor.on_accept(Accept(instance=0, ballot=Ballot(1, 0), value="v"))
        assert isinstance(reply, Accepted)
        assert acceptor.accepted_value(0) == "v"

    def test_rejects_accept_below_promise(self):
        acceptor = Acceptor("a")
        acceptor.on_prepare(Prepare(instance=0, ballot=Ballot(5, 0)))
        reply = acceptor.on_accept(Accept(instance=0, ballot=Ballot(1, 0), value="v"))
        assert isinstance(reply, Nack)
        assert acceptor.accepted_value(0) is None

    def test_previously_accepted_value_reported_in_promise(self):
        acceptor = Acceptor("a")
        acceptor.on_prepare(Prepare(instance=0, ballot=Ballot(1, 0)))
        acceptor.on_accept(Accept(instance=0, ballot=Ballot(1, 0), value="old"))
        promise = acceptor.on_prepare(Prepare(instance=0, ballot=Ballot(2, 1)))
        assert promise.accepted_value == "old"
        assert promise.accepted_ballot == Ballot(1, 0)

    def test_instances_are_independent(self):
        acceptor = Acceptor("a")
        acceptor.on_prepare(Prepare(instance=0, ballot=Ballot(9, 0)))
        reply = acceptor.on_prepare(Prepare(instance=1, ballot=Ballot(1, 0)))
        assert isinstance(reply, Promise)


class TestProposer:
    def _promise(self, ballot, replica, accepted_ballot=ZERO_BALLOT, accepted_value=None):
        return Promise(
            instance=0,
            ballot=ballot,
            accepted_ballot=accepted_ballot,
            accepted_value=accepted_value,
            from_replica=replica,
        )

    def test_phase2_starts_after_quorum_of_promises(self):
        proposer = Proposer(instance=0, ballot=Ballot(1, 0), value="mine", quorum_size=2)
        assert not proposer.on_promise(self._promise(Ballot(1, 0), "a"))
        assert proposer.on_promise(self._promise(Ballot(1, 0), "b"))
        assert proposer.accept_message().value == "mine"

    def test_adopts_highest_previously_accepted_value(self):
        proposer = Proposer(instance=0, ballot=Ballot(2, 0), value="mine", quorum_size=2)
        proposer.on_promise(self._promise(Ballot(2, 0), "a", Ballot(0, 1), "older"))
        proposer.on_promise(self._promise(Ballot(2, 0), "b", Ballot(1, 1), "newer"))
        assert proposer.accept_message().value == "newer"

    def test_chosen_after_quorum_of_accepts(self):
        proposer = Proposer(instance=0, ballot=Ballot(1, 0), value="v", quorum_size=2)
        proposer.on_promise(self._promise(Ballot(1, 0), "a"))
        proposer.on_promise(self._promise(Ballot(1, 0), "b"))
        acc = Accepted(instance=0, ballot=Ballot(1, 0), value="v", from_replica="a")
        assert not proposer.on_accepted(acc)
        acc2 = Accepted(instance=0, ballot=Ballot(1, 0), value="v", from_replica="b")
        assert proposer.on_accepted(acc2)
        assert proposer.chosen

    def test_stale_ballot_messages_ignored(self):
        proposer = Proposer(instance=0, ballot=Ballot(3, 0), value="v", quorum_size=1)
        assert not proposer.on_promise(self._promise(Ballot(2, 0), "a"))
        assert not proposer.on_accepted(
            Accepted(instance=0, ballot=Ballot(2, 0), value="v", from_replica="a")
        )

    def test_accept_message_requires_phase2(self):
        proposer = Proposer(instance=0, ballot=Ballot(1, 0), value="v", quorum_size=2)
        with pytest.raises(RuntimeError):
            proposer.accept_message()

    def test_nack_records_preempting_ballot(self):
        proposer = Proposer(instance=0, ballot=Ballot(1, 0), value="v", quorum_size=2)
        proposer.on_nack(Nack(instance=0, ballot=Ballot(1, 0), promised=Ballot(7, 1), from_replica="a"))
        assert proposer.preempted_by == Ballot(7, 1)
