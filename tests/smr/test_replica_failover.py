"""Leader fail-over under load for :class:`ReplicatedGroup` (paper §4.4).

A replicated FlexCast group keeps a client-visible exactly-once delivery
stream even when its leader replica crashes mid-stream: commands forwarded
through surviving followers are re-proposed by the new leader, nothing is
delivered twice (the protocol state machine would raise on a duplicate), and
all surviving replicas apply the same log.
"""

from repro.core.flexcast import FlexCastProtocol
from repro.core.message import ClientRequest, Message
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.events import EventLoop
from repro.sim.latencies import LatencyMatrix
from repro.sim.network import Network
from repro.smr.replica import ReplicatedGroup


def deploy(replication_factor=3):
    loop = EventLoop()
    matrix = LatencyMatrix(matrix=[[0.5, 5], [5, 0.5]], names=["x", "y"])
    network = Network(loop, matrix)
    protocol = FlexCastProtocol(CDagOverlay([0, 1]))
    sink = RecordingSink(clock=lambda: loop.now)
    group = ReplicatedGroup(
        group_id=0,
        protocol=protocol,
        network=network,
        site=0,
        sink=sink,
        replication_factor=replication_factor,
    )
    network.register("client", site=1, handler=lambda s, p: None)
    return loop, network, group, sink


class TestLeaderFailoverMidStream:
    def test_no_lost_or_duplicated_deliveries_across_the_crash(self):
        loop, network, group, sink = deploy()
        follower = group.replicas[1].replica_id
        total = 20

        # A steady stream of requests, all submitted through a *surviving*
        # follower (which forwards to whoever currently leads).
        for i in range(total):
            message = Message(msg_id=f"m{i}", dst=frozenset({0}), sender="client")
            loop.schedule_at(
                10.0 * i,
                lambda m=message: network.send(
                    "client", follower, ClientRequest(message=m)
                ),
            )

        # Crash the leader mid-stream, with commands still in flight.
        loop.schedule_at(95.0, lambda: group.crash_replica(0, network))
        loop.run_until_idle()

        # The new leader resumed the stream: every message delivered to the
        # outside world exactly once, in submission order.
        assert group.leader.replica_id != group.replicas[0].replica_id
        assert sink.sequence(0) == [f"m{i}" for i in range(total)]

        # All surviving replicas applied the identical ordered log.
        sequences = group.delivered_sequences()
        survivors = [
            sequences[r.replica_id]
            for i, r in enumerate(group.replicas)
            if i != 0
        ]
        assert survivors[0] == survivors[1] == [f"m{i}" for i in range(total)]

    def test_crash_between_streams_loses_nothing(self):
        loop, network, group, sink = deploy()
        follower = group.replicas[2].replica_id

        for i in range(5):
            message = Message(msg_id=f"a{i}", dst=frozenset({0}), sender="client")
            network.send("client", follower, ClientRequest(message=message))
        loop.run_until_idle()
        assert sink.sequence(0) == [f"a{i}" for i in range(5)]

        group.crash_replica(0, network)
        for i in range(5):
            message = Message(msg_id=f"b{i}", dst=frozenset({0}), sender="client")
            network.send("client", follower, ClientRequest(message=message))
        loop.run_until_idle()

        assert sink.sequence(0) == [f"a{i}" for i in range(5)] + [
            f"b{i}" for i in range(5)
        ]
        assert len(set(sink.sequence(0))) == 10
