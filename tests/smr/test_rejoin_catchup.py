"""Rejoin catch-up via the ordered history snapshot (paper §4.4 + cold sync).

``restart_replica`` follows the SMR rejoin with one ``history-snapshot``
frame, packed from the current leader's live history and ordered *through*
the replicated log — so the rebooted replica bulk-installs the history it
missed in one O(affected) merge, every replica's protocol state stays a pure
function of the log, and survivors no-op on the idempotent install.
"""

from repro.core.flexcast import FlexCastProtocol
from repro.core.message import ClientRequest, HistorySnapshotFrame, Message
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.events import EventLoop
from repro.sim.latencies import LatencyMatrix
from repro.sim.network import Network
from repro.smr.replica import ReplicatedGroup
from repro.storage import InMemoryStorage


def deploy(storage=None):
    loop = EventLoop()
    matrix = LatencyMatrix(matrix=[[0.5, 5], [5, 0.5]], names=["x", "y"])
    network = Network(loop, matrix)
    protocol = FlexCastProtocol(CDagOverlay([0, 1]))
    sink = RecordingSink(clock=lambda: loop.now)
    group = ReplicatedGroup(
        group_id=0,
        protocol=protocol,
        network=network,
        site=0,
        sink=sink,
        replication_factor=3,
        storage=storage,
    )
    network.register("client", site=1, handler=lambda s, p: None)
    return loop, network, group, sink


def submit(network, target, ids):
    for mid in ids:
        network.send(
            "client",
            target,
            ClientRequest(message=Message(msg_id=mid, dst=frozenset({0}), sender="client")),
        )


def snapshot_frames_applied(replica):
    return [
        entry
        for entry in replica.applied
        if isinstance(entry.envelope, HistorySnapshotFrame)
    ]


class TestRejoinSnapshotCatchup:
    def test_restarted_replica_bulk_installs_the_missed_history(self):
        loop, network, group, sink = deploy(storage=InMemoryStorage())
        leader_id = group.replicas[0].replica_id

        submit(network, leader_id, [f"a{i}" for i in range(6)])
        loop.run_until_idle()

        group.crash_replica(2, network)
        submit(network, leader_id, [f"b{i}" for i in range(4)])
        loop.run_until_idle()

        restarted = group.restart_replica(2, network)
        loop.run_until_idle()

        # The catch-up frame went through the log: the restarted replica
        # applied it, and its protocol history now holds everything.
        assert snapshot_frames_applied(restarted), "no snapshot frame ordered"
        expected = {f"a{i}" for i in range(6)} | {f"b{i}" for i in range(4)}
        assert expected <= set(restarted.protocol_state.history.message_ids())

        # Survivors applied the same frame (same log) and no-op'd: their
        # histories hold the same live content as the restarted copy.
        for replica in group.replicas:
            assert snapshot_frames_applied(replica) or replica is restarted
            assert expected <= set(replica.protocol_state.history.message_ids())

        # The client-visible stream stayed exactly-once throughout.
        assert sink.sequence(0) == [f"a{i}" for i in range(6)] + [
            f"b{i}" for i in range(4)
        ]

    def test_stream_continues_cleanly_after_catchup(self):
        loop, network, group, sink = deploy(storage=InMemoryStorage())
        leader_id = group.replicas[0].replica_id

        submit(network, leader_id, ["a0", "a1"])
        loop.run_until_idle()
        group.crash_replica(1, network)
        submit(network, leader_id, ["b0", "b1"])
        loop.run_until_idle()
        group.restart_replica(1, network)
        loop.run_until_idle()

        submit(network, leader_id, ["c0", "c1"])
        loop.run_until_idle()
        assert sink.sequence(0) == ["a0", "a1", "b0", "b1", "c0", "c1"]

        # Every live replica converged on the identical applied log.
        sequences = group.delivered_sequences()
        assert len({tuple(s) for s in sequences.values()}) == 1

    def test_no_frame_ordered_when_the_leader_has_no_history(self):
        loop, network, group, sink = deploy(storage=InMemoryStorage())
        group.crash_replica(2, network)
        restarted = group.restart_replica(2, network)
        loop.run_until_idle()
        assert snapshot_frames_applied(restarted) == []
