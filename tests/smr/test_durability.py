"""SMR durability: acceptor stable storage, commit-log replay, rejoin catch-up."""

from __future__ import annotations

import pytest

from repro.sim.events import EventLoop
from repro.sim.latencies import LatencyMatrix
from repro.sim.network import Network
from repro.sim.transport import SimTransport
from repro.smr.multipaxos import MultiPaxosReplica
from repro.smr.paxos import ZERO_BALLOT, Accept, Acceptor, Ballot, Nack, Prepare, Promise
from repro.storage import InMemoryStorage


# ----------------------------------------------------------------- acceptor WAL
class TestAcceptorDurability:
    def test_restarted_acceptor_never_repromises_below_durable_ballot(self):
        """The Paxos stable-storage requirement, pinned.

        An acceptor that promised ballot (5, 1) before crashing must keep
        refusing lower ballots after a restart — otherwise two proposers can
        both believe they own the instance and safety is gone.
        """
        storage = InMemoryStorage()
        acceptor = Acceptor("r0", wal=storage.wal("r0.acceptor"))
        high = Ballot(round=5, proposer=1)
        assert isinstance(acceptor.on_prepare(Prepare(instance=0, ballot=high)), Promise)

        # Crash: the object dies, the storage survives.
        restarted = Acceptor("r0", wal=storage.wal("r0.acceptor"))
        assert restarted.promised_ballot(0) == high
        low = Ballot(round=3, proposer=0)
        assert isinstance(restarted.on_prepare(Prepare(instance=0, ballot=low)), Nack)
        assert isinstance(
            restarted.on_accept(Accept(instance=0, ballot=low, value="v")), Nack
        )

    def test_accepted_value_survives_restart_and_feeds_recovery(self):
        storage = InMemoryStorage()
        acceptor = Acceptor("r0", wal=storage.wal("w"))
        ballot = Ballot(round=2, proposer=0)
        acceptor.on_prepare(Prepare(instance=3, ballot=ballot))
        acceptor.on_accept(Accept(instance=3, ballot=ballot, value={"cmd": "x"}))

        restarted = Acceptor("r0", wal=storage.wal("w"))
        assert restarted.accepted_value(3) == {"cmd": "x"}
        # A later prepare must report the accepted value (Paxos adoption rule).
        promise = restarted.on_prepare(Prepare(instance=3, ballot=Ballot(9, 1)))
        assert isinstance(promise, Promise)
        assert promise.accepted_ballot == ballot
        assert promise.accepted_value == {"cmd": "x"}

    def test_persist_happens_before_reply(self):
        """The WAL already holds the promise when on_prepare returns."""
        storage = InMemoryStorage()
        acceptor = Acceptor("r0", wal=storage.wal("w"))
        acceptor.on_prepare(Prepare(instance=0, ballot=Ballot(1, 0)))
        assert ["p", 0, [1, 0]] in storage.wal("w").records()
        acceptor.on_accept(Accept(instance=0, ballot=Ballot(1, 0), value="v"))
        assert ["a", 0, [1, 0], "v"] in storage.wal("w").records()

    def test_wal_compaction_preserves_state(self):
        storage = InMemoryStorage()
        wal = storage.wal("w")
        acceptor = Acceptor("r0", wal=wal)
        # Many generations of retried ballots on a few instances force the
        # fold-to-current-state compaction.
        for round_no in range(120):
            acceptor.on_prepare(Prepare(instance=round_no % 3, ballot=Ballot(round_no, 0)))
        acceptor.on_accept(Accept(instance=1, ballot=Ballot(200, 0), value="kept"))
        assert len(wal) < 120  # compaction actually ran

        restarted = Acceptor("r0", wal=storage.wal("w"))
        for instance in range(3):
            assert restarted.promised_ballot(instance) == acceptor.promised_ballot(
                instance
            )
        assert restarted.accepted_value(1) == "kept"

    def test_value_codec_round_trips_through_wal(self):
        storage = InMemoryStorage()
        acceptor = Acceptor(
            "r0",
            wal=storage.wal("w"),
            encode_value=lambda v: {"wire": v},
            decode_value=lambda v: v["wire"],
        )
        ballot = Ballot(0, 0)
        acceptor.on_accept(Accept(instance=0, ballot=ballot, value="native"))
        assert storage.wal("w").records() == [["a", 0, [0, 0], {"wire": "native"}]]
        restarted = Acceptor(
            "r0",
            wal=storage.wal("w"),
            encode_value=lambda v: {"wire": v},
            decode_value=lambda v: v["wire"],
        )
        assert restarted.accepted_value(0) == "native"

    def test_unknown_wal_record_rejected(self):
        storage = InMemoryStorage()
        storage.wal("w").append(["z", 0, [0, 0]])
        with pytest.raises(ValueError):
            Acceptor("r0", wal=storage.wal("w"))


# ------------------------------------------------------------------- multipaxos
def deploy(storage_by_id=None, n=3):
    loop = EventLoop()
    matrix = LatencyMatrix(
        matrix=[[1.0 if a != b else 0.1 for b in range(n)] for a in range(n)],
        names=[f"s{i}" for i in range(n)],
    )
    network = Network(loop, matrix)
    ids = [f"r{i}" for i in range(n)]
    applied = {rid: [] for rid in ids}
    replicas = {}
    for i, rid in enumerate(ids):
        storage = (storage_by_id or {}).get(rid)
        replicas[rid] = MultiPaxosReplica(
            rid,
            ids,
            SimTransport(network, rid),
            apply=lambda inst, value, rid=rid: applied[rid].append(value),
            acceptor_wal=storage.wal(f"{rid}.acceptor") if storage else None,
            log_wal=storage.wal(f"{rid}.log") if storage else None,
        )
        network.register(rid, site=i, handler=replicas[rid].on_message)
    return loop, network, replicas, applied


class TestCommitLogReplay:
    def test_restart_replays_applied_prefix_without_network(self):
        storage = {"r0": InMemoryStorage()}
        loop, _, replicas, applied = deploy(storage)
        for i in range(4):
            replicas["r0"].submit(f"cmd-{i}")
        loop.run_until_idle()
        assert applied["r0"] == [f"cmd-{i}" for i in range(4)]

        # Rebuild r0 from its WALs alone: fresh loop, no peers reachable.
        replay = []
        rebuilt = MultiPaxosReplica(
            "r0",
            ["r0"],
            SimTransport(Network(EventLoop(), LatencyMatrix([[0.1]], ["s0"])), "r0"),
            apply=lambda inst, value: replay.append(value),
            log_wal=storage["r0"].wal("r0.log"),
        )
        assert replay == applied["r0"]
        assert rebuilt.recovered_instances == 4
        assert rebuilt.log == applied["r0"]
        assert rebuilt._next_instance == 4

    def test_unknown_commit_record_rejected(self):
        storage = InMemoryStorage()
        storage.wal("log").append(["x", 0, "v"])
        with pytest.raises(ValueError):
            deploy_one_with_log(storage)

    def test_rejoin_catches_up_on_missed_decisions(self):
        storage = {"r2": InMemoryStorage()}
        loop, network, replicas, applied = deploy(storage)
        replicas["r0"].submit("before")
        loop.run_until_idle()

        # r2 crashes after applying "before".
        network.unregister("r2")
        for rid in ("r0", "r1"):
            replicas[rid].mark_failed("r2")
        replicas["r0"].submit("while-down-1")
        replicas["r0"].submit("while-down-2")
        loop.run_until_idle()
        assert applied["r0"] == ["before", "while-down-1", "while-down-2"]

        # Restart r2 from its WALs; rejoin() pulls the missed suffix.
        rebuilt_applied = []
        rebuilt = MultiPaxosReplica(
            "r2",
            ["r0", "r1", "r2"],
            SimTransport(network, "r2"),
            apply=lambda inst, value: rebuilt_applied.append(value),
            acceptor_wal=storage["r2"].wal("r2.acceptor"),
            log_wal=storage["r2"].wal("r2.log"),
        )
        assert rebuilt_applied == ["before"]  # local replay only
        network.register("r2", site=2, handler=rebuilt.on_message)
        rebuilt.rejoin()
        loop.run_until_idle()
        assert rebuilt_applied == ["before", "while-down-1", "while-down-2"]
        # Peers re-admitted the restarted replica.
        assert "r2" in replicas["r0"].alive

    def test_rejoined_replica_keeps_ordering_with_new_commands(self):
        storage = {"r1": InMemoryStorage()}
        loop, network, replicas, applied = deploy(storage)
        replicas["r0"].submit("a")
        loop.run_until_idle()
        network.unregister("r1")
        for rid in ("r0", "r2"):
            replicas[rid].mark_failed("r1")
        replicas["r0"].submit("b")
        loop.run_until_idle()

        rebuilt_applied = []
        rebuilt = MultiPaxosReplica(
            "r1",
            ["r0", "r1", "r2"],
            SimTransport(network, "r1"),
            apply=lambda inst, value: rebuilt_applied.append(value),
            acceptor_wal=storage["r1"].wal("r1.acceptor"),
            log_wal=storage["r1"].wal("r1.log"),
        )
        network.register("r1", site=1, handler=rebuilt.on_message)
        rebuilt.rejoin()
        loop.run_until_idle()
        replicas["r0"].submit("c")
        loop.run_until_idle()
        assert rebuilt_applied == ["a", "b", "c"]
        assert applied["r0"] == ["a", "b", "c"]


def deploy_one_with_log(storage):
    loop = EventLoop()
    network = Network(loop, LatencyMatrix([[0.1]], ["s0"]))
    return MultiPaxosReplica(
        "r0",
        ["r0"],
        SimTransport(network, "r0"),
        apply=lambda inst, value: None,
        log_wal=storage.wal("log"),
    )
