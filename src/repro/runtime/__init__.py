"""Asyncio/TCP runtime: the same protocols over real sockets."""

from .client import AsyncMulticastClient
from .cluster import LocalCluster
from .codec import CodecError, decode_frame, encode_frame, read_frame
from .node import GroupServer
from .transport import AddressBook, AsyncioTransport

__all__ = [
    "AsyncMulticastClient",
    "LocalCluster",
    "CodecError",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "GroupServer",
    "AddressBook",
    "AsyncioTransport",
]
