"""Asyncio/TCP runtime: the same protocols over real sockets.

What lives here: the deployment surface for running any protocol from this
repo outside the simulator.  The main entry points are :class:`LocalCluster`
(one TCP :class:`GroupServer` per group on localhost, optionally with
emulated WAN latencies) and :class:`AsyncMulticastClient` (submit
multicasts — single or batched via ``multicast_batch`` — and await every
destination's response).  Frames are length-prefixed JSON
(:mod:`~repro.runtime.codec`); :class:`AsyncioTransport` adapts the
protocol-facing :class:`~repro.sim.transport.Transport` interface to
sockets, so the protocol classes themselves are byte-for-byte the ones the
simulator runs.

For deployments beyond one process, :class:`ProcessCluster`
(:mod:`~repro.runtime.proc`) supervises N groups × M replicas as separate
OS processes with per-replica WAL durability and an HTTP admin plane —
see ``docs/OPERATIONS.md``.
"""

from .client import AsyncMulticastClient
from .cluster import LocalCluster
from .codec import CodecError, decode_frame, encode_frame, read_frame
from .node import FrameServer, GroupServer
from .proc import ClusterSpec, ProcessCluster, ReplicaServer
from .transport import AddressBook, AsyncioTransport

__all__ = [
    "AsyncMulticastClient",
    "LocalCluster",
    "ClusterSpec",
    "ProcessCluster",
    "ReplicaServer",
    "FrameServer",
    "CodecError",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "GroupServer",
    "AddressBook",
    "AsyncioTransport",
]
