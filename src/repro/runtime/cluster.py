"""In-process localhost cluster for the asyncio runtime.

``LocalCluster`` starts one :class:`~repro.runtime.node.GroupServer` per group
of a protocol on ephemeral localhost ports, plus any number of clients, and
tears everything down cleanly.  It is the backbone of the asyncio integration
tests and of ``examples/asyncio_cluster.py``.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from ..obs import Observability
from ..overlay.base import GroupId
from ..protocols.base import AtomicMulticastProtocol
from ..sim.latencies import LatencyMatrix
from .client import AsyncMulticastClient
from .node import GroupServer
from .transport import AddressBook


class LocalCluster:
    """All groups of one protocol running over TCP on localhost."""

    def __init__(
        self,
        protocol: AtomicMulticastProtocol,
        latencies: Optional[LatencyMatrix] = None,
        emulate_wan: bool = False,
        storage: Optional[Dict[GroupId, object]] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self._protocol = protocol
        self._latencies = latencies if emulate_wan else None
        #: Optional per-group durable storage backends (:mod:`repro.storage`);
        #: a restarted cluster handed the same mapping resumes each group
        #: from its persisted history instead of a blank one.
        self._storage = storage or {}
        #: Optional observability hub, shared by every server (series are
        #: labelled per group, so one registry holds the whole cluster and
        #: any port's ``/metrics`` shows the full picture).
        self.obs = obs
        self.addresses: AddressBook = {}
        self.servers: Dict[GroupId, GroupServer] = {}
        self.clients: List[AsyncMulticastClient] = []

    async def start(self) -> None:
        """Start one server per group; addresses become known to everyone."""
        sites = {gid: gid for gid in self._protocol.groups}
        for gid in self._protocol.groups:
            server = GroupServer(
                group_id=gid,
                protocol=self._protocol,
                addresses=self.addresses,
                latencies=self._latencies,
                sites=sites if self._latencies is not None else None,
                storage=self._storage.get(gid),
                obs=self.obs,
            )
            host, port = await server.start()
            self.addresses[gid] = (host, port)
            self.servers[gid] = server

    async def new_client(self, client_id: str) -> AsyncMulticastClient:
        """Create and start a client wired to this cluster's address book."""
        client = AsyncMulticastClient(
            client_id=client_id, protocol=self._protocol, addresses=self.addresses
        )
        host, port = await client.start()
        self.addresses[client_id] = (host, port)
        self.clients.append(client)
        return client

    async def stop(self) -> None:
        """Stop every client and server."""
        for client in self.clients:
            await client.stop()
        for server in self.servers.values():
            await server.stop()
        # Give in-flight connection tasks a tick to finish closing.
        await asyncio.sleep(0)

    async def __aenter__(self) -> "LocalCluster":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------- inspection
    def delivered_at(self, group_id: GroupId) -> List[str]:
        """Message ids delivered at ``group_id`` so far, in delivery order."""
        return [m.msg_id for m in self.servers[group_id].delivered]

    async def scrape(self) -> Dict[GroupId, str]:
        """``GET /metrics`` every server over real TCP.

        Returns the Prometheus text body per group.  With the default shared
        hub every body renders the same cluster-wide registry; the per-group
        round trip is still worthwhile because it exercises the actual HTTP
        path a scraper would hit.  Raises ``RuntimeError`` on a non-200
        (e.g. the cluster was started without an observability hub).
        """
        bodies: Dict[GroupId, str] = {}
        for gid, server in self.servers.items():
            reader, writer = await asyncio.open_connection(server.host, server.port)
            try:
                writer.write(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")
                await writer.drain()
                raw = await reader.read(-1)
            finally:
                writer.close()
            head, _, body = raw.partition(b"\r\n\r\n")
            status = head.split(b"\r\n", 1)[0].split(b" ")
            if len(status) < 2 or status[1] != b"200":
                raise RuntimeError(
                    f"scrape of group {gid} failed: {head.decode('latin-1')!r}"
                )
            bodies[gid] = body.decode("utf-8")
        return bodies
