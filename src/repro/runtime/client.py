"""Asyncio multicast client."""

from __future__ import annotations

import asyncio
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.message import ClientRequest, ClientResponse, Message
from ..overlay.base import GroupId
from ..protocols.base import AtomicMulticastProtocol
from .codec import CodecError, read_frame
from .transport import AddressBook, AsyncioTransport


class AsyncMulticastClient:
    """A client that multicasts messages over TCP and awaits all responses.

    The client runs a tiny server of its own so groups can push delivery
    confirmations back to it (the same shape as the paper's evaluation, where
    "upon delivering a message, each message destination replies to the
    message's sender").
    """

    def __init__(
        self,
        client_id: str,
        protocol: AtomicMulticastProtocol,
        addresses: AddressBook,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.client_id = client_id
        self._protocol = protocol
        self.host = host
        self.port = port
        self.transport = AsyncioTransport(node_id=client_id, addresses=addresses)
        self._server: Optional[asyncio.AbstractServer] = None
        #: msg_id -> (expected destination count, responses received, done event)
        self._waiting: Dict[str, Tuple[int, Dict[GroupId, float], asyncio.Event]] = {}
        self._loop = asyncio.get_event_loop()

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self.transport.register_address(self.client_id, self.host, self.port)
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    _, envelope = await read_frame(reader)
                except (asyncio.IncompleteReadError, CodecError):
                    break
                if isinstance(envelope, ClientResponse):
                    self._on_response(envelope)
        finally:
            writer.close()

    def _on_response(self, response: ClientResponse) -> None:
        waiting = self._waiting.get(response.msg_id)
        if waiting is None:
            return
        expected, responses, done = waiting
        responses.setdefault(response.group, self._loop.time() * 1000.0)
        if len(responses) >= expected:
            done.set()

    # ----------------------------------------------------------------- public
    async def multicast(
        self,
        destinations: Iterable[GroupId],
        payload=None,
        timeout: float = 10.0,
    ) -> Dict[GroupId, float]:
        """Multicast a message and wait until every destination delivered it.

        Returns the per-group response latencies in milliseconds.  Raises
        ``asyncio.TimeoutError`` if some destination does not respond in time.
        """
        message = Message.create(
            destinations=destinations, sender=self.client_id, payload=payload
        )
        done = asyncio.Event()
        responses: Dict[GroupId, float] = {}
        self._waiting[message.msg_id] = (len(message.dst), responses, done)
        started = self._loop.time() * 1000.0
        request = ClientRequest(message=message)
        for entry in self._protocol.entry_groups(message):
            self.transport.send(entry, request)
        await asyncio.wait_for(done.wait(), timeout=timeout)
        del self._waiting[message.msg_id]
        return {group: at - started for group, at in responses.items()}
