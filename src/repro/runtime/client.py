"""Asyncio multicast client."""

from __future__ import annotations

import asyncio
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.message import ClientRequest, ClientResponse, FlexCastBatch, Message
from ..overlay.base import GroupId
from ..protocols.base import AtomicMulticastProtocol
from .codec import CodecError, read_frame
from .transport import AddressBook, AsyncioTransport


class AsyncMulticastClient:
    """A client that multicasts messages over TCP and awaits all responses.

    The client runs a tiny server of its own so groups can push delivery
    confirmations back to it (the same shape as the paper's evaluation, where
    "upon delivering a message, each message destination replies to the
    message's sender").
    """

    def __init__(
        self,
        client_id: str,
        protocol: AtomicMulticastProtocol,
        addresses: AddressBook,
        host: str = "127.0.0.1",
        port: int = 0,
        pool: bool = False,
    ) -> None:
        self.client_id = client_id
        self._protocol = protocol
        self.host = host
        self.port = port
        # ``pool=True`` keeps one persistent connection per destination —
        # what the soak harness needs to push millions of frames without
        # drowning in TCP handshakes (see AsyncioTransport).
        self.transport = AsyncioTransport(
            node_id=client_id, addresses=addresses, pool=pool
        )
        self._server: Optional[asyncio.AbstractServer] = None
        #: msg_id -> (expected destination count, responses received, done event)
        self._waiting: Dict[str, Tuple[int, Dict[GroupId, float], asyncio.Event]] = {}
        self._loop = asyncio.get_event_loop()

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self.transport.register_address(self.client_id, self.host, self.port)
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.transport.aclose()

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    _, envelope = await read_frame(reader)
                except (asyncio.IncompleteReadError, CodecError):
                    break
                if isinstance(envelope, ClientResponse):
                    self._on_response(envelope)
        finally:
            writer.close()

    def _on_response(self, response: ClientResponse) -> None:
        waiting = self._waiting.get(response.msg_id)
        if waiting is None:
            return
        expected, responses, done = waiting
        responses.setdefault(response.group, self._loop.time() * 1000.0)
        if len(responses) >= expected:
            done.set()

    async def _send_and_await(
        self,
        messages: List[Message],
        request: ClientRequest,
        route_by: Message,
        timeout: float,
    ) -> Dict[str, Dict[GroupId, float]]:
        """Register waiting slots for ``messages``, ship one ``request`` to
        ``route_by``'s entry group(s), await every per-destination response.

        Shared tail of :meth:`multicast` and :meth:`multicast_batch`.
        Returns ``{msg_id: {group: latency_ms}}``; waiting slots are cleaned
        up on success *and* on timeout.
        """
        started = self._loop.time() * 1000.0
        done_events: List[asyncio.Event] = []
        all_responses: Dict[str, Dict[GroupId, float]] = {}
        for message in messages:
            done = asyncio.Event()
            responses: Dict[GroupId, float] = {}
            self._waiting[message.msg_id] = (len(message.dst), responses, done)
            done_events.append(done)
            all_responses[message.msg_id] = responses
        try:
            for entry in self._protocol.entry_groups(route_by):
                self.transport.send(entry, request)
            await asyncio.wait_for(
                asyncio.gather(*(done.wait() for done in done_events)),
                timeout=timeout,
            )
        finally:
            for message in messages:
                self._waiting.pop(message.msg_id, None)
        return {
            msg_id: {group: at - started for group, at in responses.items()}
            for msg_id, responses in all_responses.items()
        }

    # ----------------------------------------------------------------- public
    async def multicast(
        self,
        destinations: Iterable[GroupId],
        payload=None,
        timeout: float = 10.0,
    ) -> Dict[GroupId, float]:
        """Multicast a message and wait until every destination delivered it.

        Returns the per-group response latencies in milliseconds.  Raises
        ``asyncio.TimeoutError`` if some destination does not respond in time.
        """
        message = Message.create(
            destinations=destinations, sender=self.client_id, payload=payload
        )
        latencies = await self._send_and_await(
            [message], ClientRequest(message=message), message, timeout
        )
        return latencies[message.msg_id]

    async def multicast_batch(
        self,
        destinations: Iterable[GroupId],
        payloads: Iterable,
        timeout: float = 10.0,
    ) -> Dict[str, Dict[GroupId, float]]:
        """Multicast ``payloads`` as one batch and await every response.

        The payloads share one destination set and travel the wire as a
        single :class:`~repro.core.message.FlexCastBatch` frame; the lca
        orders the batch as one unit and each destination fans it out into
        per-member deliveries, so — exactly as with :meth:`multicast` —
        every member message gets one response from every destination.
        Returns ``{msg_id: {group: latency_ms}}`` in payload order.  Raises
        ``asyncio.TimeoutError`` if some response does not arrive in time.
        """
        dst = frozenset(destinations)
        messages: List[Message] = [
            Message.create(destinations=dst, sender=self.client_id, payload=payload)
            for payload in payloads
        ]
        carrier = Message.batch_of(messages)
        return await self._send_and_await(
            messages, FlexCastBatch(message=carrier), carrier, timeout
        )
