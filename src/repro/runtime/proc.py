"""Process-level cluster runtime: N groups × M replicas as real OS processes.

Everything below one process boundary reuses the existing building blocks —
the wire codec (which since this module also carries the multi-Paxos frames),
:class:`~repro.runtime.transport.AsyncioTransport` in pooled mode,
:class:`~repro.smr.replica.GroupReplica` for the gated leader/follower state
machine, and :class:`~repro.storage.file.FileStorage` for per-replica WAL
durability.  What this module adds is the topology and the supervision:

* :class:`ReplicaServer` — the child side.  One OS process runs exactly one
  replica of one group, serving frames and a small HTTP plane (``/metrics``,
  ``/ready``, ``/delivered``, ``/stop`` and the ``/admin/*`` failure-detector
  endpoints) on a single TCP port.  Run it with
  ``python -m repro.runtime.proc --spec spec.json --group G --replica I``.
* :class:`ProcessCluster` — the parent side.  Allocates ports, writes the
  cluster spec, spawns the children, polls readiness, and drives
  kill/restart through the PR-6/PR-8 rejoin + snapshot-frame path.

Topology conventions (documented for operators in ``docs/OPERATIONS.md``):

* Replica ``i`` of group ``g`` is the network node ``group-g-replica-i``
  (:func:`~repro.smr.replica.replica_node`) and owns exactly one port.
* A *group-level* destination (an int group id, as used by clients and by
  inter-group protocol traffic) is routed to that group's replica 0 — the
  default multi-Paxos leader.  While replica 0 is down, frames addressed to
  the group are lost until it restarts; client resubmission covers the gap
  (the same asynchronous-model loss the protocol already tolerates).
* Storage lives under ``<storage_root>/group-G/replica-I/`` — the acceptor
  WAL and commit log of that replica, nothing else.  Replica protocol state
  is a pure function of the replicated log, so a SIGKILL'd process restarts
  from its WALs, catches up the decided suffix from its peers, and converges
  (the recovery-oracle invariant from PR 6, now across real processes).
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple
from urllib.parse import parse_qs, quote, urlsplit

from ..core.flexcast import FlexCastProtocol
from ..core.message import ClientResponse, Message, NodeHello
from ..obs import Observability
from ..overlay.base import GroupId
from ..overlay.cdag import CDagOverlay
from ..smr.replica import GroupReplica, replica_node
from ..storage.file import FileStorage
from .client import AsyncMulticastClient
from .node import FrameServer, HttpResponse
from .transport import AddressBook, AsyncioTransport


# ------------------------------------------------------------------- spec
@dataclass
class ClusterSpec:
    """Everything a child process needs to know about the cluster.

    The parent writes this to ``<storage_root>/spec.json``; each child is
    handed the file path plus its own ``(group, replica)`` coordinates.
    Addresses are stored as ``[node_id, host, port]`` triples so int group
    ids survive the JSON round-trip (a JSON object would stringify them).
    """

    groups: List[GroupId]
    replication: int
    storage_root: str
    host: str = "127.0.0.1"
    hybrid: bool = False
    addresses: List[Tuple[Hashable, str, int]] = field(default_factory=list)

    # ----------------------------------------------------------- derived views
    def address_book(self) -> AddressBook:
        """The spec's addresses as a transport address book."""
        return {node_id: (host, port) for node_id, host, port in self.addresses}

    def replica_ids(self, group_id: GroupId) -> List[str]:
        return [replica_node(group_id, i) for i in range(self.replication)]

    def replica_address(self, group_id: GroupId, index: int) -> Tuple[str, int]:
        return self.address_book()[replica_node(group_id, index)]

    def replica_dir(self, group_id: GroupId, index: int) -> str:
        return os.path.join(
            self.storage_root, f"group-{group_id}", f"replica-{index}"
        )

    def build_protocol(self) -> FlexCastProtocol:
        """The (deterministic) protocol instance every process agrees on."""
        return FlexCastProtocol(CDagOverlay(list(self.groups)), hybrid=self.hybrid)

    # -------------------------------------------------------------------- json
    def to_json(self) -> str:
        return json.dumps(
            {
                "groups": list(self.groups),
                "replication": self.replication,
                "storage_root": self.storage_root,
                "host": self.host,
                "hybrid": self.hybrid,
                "addresses": [list(triple) for triple in self.addresses],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        data = json.loads(text)
        return cls(
            groups=list(data["groups"]),
            replication=data["replication"],
            storage_root=data["storage_root"],
            host=data.get("host", "127.0.0.1"),
            hybrid=data.get("hybrid", False),
            addresses=[tuple(triple) for triple in data["addresses"]],
        )


def _sequence_digest(ids: List[str]) -> str:
    """Stable digest of a delivery sequence (cheap cross-process comparison)."""
    return hashlib.sha256("\n".join(ids).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------- child side
class ReplicaServer(FrameServer):
    """One replica of one group, served over TCP in its own process.

    Frames (client requests, inter-group protocol traffic, intra-group
    multi-Paxos traffic) arrive on the replica's single port and are fed to
    the :class:`~repro.smr.replica.GroupReplica`; the same port answers the
    HTTP admin plane the supervisor drives:

    ``/metrics``
        Prometheus text exposition of this process's registry.
    ``/ready``
        JSON readiness document (also reports leadership and log position).
    ``/delivered``
        Local delivery sequence as ``{count, digest}``; ``?full=1`` adds the
        ids themselves (used by the convergence checks and the tests'
        recovery oracle; digests keep the common case O(1)-sized).
    ``/admin/mark-failed?replica=ID``
        Failure-detector input: consider ``ID`` crashed.
    ``/admin/rejoin``
        Announce this (restarted) replica to its peers and pull the decided
        suffix (:meth:`~repro.smr.replica.GroupReplica.rejoin`).
    ``/admin/offer-snapshot``
        If this replica currently leads, order a packed history snapshot
        through the log for any rejoiner (the PR-8 snapshot-frame path).
    ``/stop``
        Graceful shutdown: the serve loop exits and the process ends.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        group_id: GroupId,
        index: int,
        obs: Optional[Observability] = None,
    ) -> None:
        self.spec = spec
        self.group_id = group_id
        self.index = index
        self.replica_id = replica_node(group_id, index)
        addresses = spec.address_book()
        host, port = addresses[self.replica_id]
        super().__init__(host=host, port=port)
        self.obs = obs if obs is not None else Observability()
        # Pooled: intra-group consensus traffic is ~4 frames per ordered
        # envelope — ephemeral connections would dominate the cost.
        self.transport = AsyncioTransport(
            node_id=self.replica_id, addresses=addresses, pool=True
        )
        storage = FileStorage(
            spec.replica_dir(group_id, index), obs=self.obs
        )
        #: Count only — a soak run pushes millions of messages through one
        #: process; retaining the Message objects would dwarf the protocol
        #: state.  The id sequence (for oracles) lives in
        #: ``replica.local_deliveries``.
        self.reported_deliveries = 0
        self.replica = GroupReplica(
            group_id=group_id,
            replica_id=self.replica_id,
            peer_replicas=spec.replica_ids(group_id),
            protocol=spec.build_protocol(),
            transport=self.transport,
            sink=self._sink,
            storage=storage,
        )
        self.replica.attach_obs(self.obs)
        labels = {"group": str(group_id), "replica": self.replica_id}
        self.obs.registry.counter(
            "server_frames_received_total",
            "Wire frames accepted by this replica server.",
            labels,
            fn=lambda: self.frames_received,
        )
        self.obs.registry.gauge(
            "server_delivered",
            "Messages this replica reported to clients since start.",
            labels,
            fn=lambda: self.reported_deliveries,
        )
        self.stop_requested = asyncio.Event()

    # ------------------------------------------------------------------ frames
    def handle_frame(self, sender: Hashable, envelope: Any) -> None:
        if isinstance(envelope, NodeHello):
            # A client announcing its response address: every replica needs
            # it (any replica may lead after a fail-over), and it must never
            # be ordered through the log.
            self.transport.register_address(
                envelope.node_id, envelope.host, envelope.port
            )
            return
        self.replica.on_message(sender, envelope)

    def _sink(self, group_id: GroupId, message: Message) -> None:
        # Only the current leader's sink fires (the gate inside
        # GroupReplica); respond to the client if we can reach it.
        self.reported_deliveries += 1
        try:
            self.transport.send(
                message.sender, ClientResponse(msg_id=message.msg_id, group=group_id)
            )
        except KeyError:
            pass

    # -------------------------------------------------------------------- http
    def handle_http(self, path: str) -> HttpResponse:
        split = urlsplit(path)
        route = split.path
        query = parse_qs(split.query)
        if route == "/metrics":
            return (
                b"200 OK",
                self.obs.registry.render_prometheus().encode("utf-8"),
                b"text/plain; version=0.0.4; charset=utf-8",
            )
        if route == "/ready":
            return self._json_response(
                {
                    "ready": True,
                    "group": self.group_id,
                    "replica": self.replica_id,
                    "leader": self.replica.is_leader,
                    "applied": len(self.replica.applied),
                    "recovered_instances": self.replica.smr.recovered_instances,
                }
            )
        if route == "/delivered":
            ids = list(self.replica.local_deliveries)
            body: Dict[str, Any] = {
                "count": len(ids),
                "digest": _sequence_digest(ids),
            }
            if query.get("full", ["0"])[-1] == "1":
                body["sequence"] = ids
            return self._json_response(body)
        if route == "/admin/mark-failed":
            victims = query.get("replica", [])
            for victim in victims:
                self.replica.mark_failed(victim)
            return self._json_response({"marked_failed": victims})
        if route == "/admin/rejoin":
            self.replica.rejoin()
            return self._json_response({"rejoined": self.replica_id})
        if route == "/admin/offer-snapshot":
            return self._json_response({"offered": self._offer_snapshot()})
        if route == "/stop":
            self.stop_requested.set()
            return self._json_response({"stopping": self.replica_id})
        return super().handle_http(path)

    @staticmethod
    def _json_response(payload: Dict[str, Any]) -> HttpResponse:
        body = json.dumps(payload).encode("utf-8") + b"\n"
        return b"200 OK", body, b"application/json"

    def _offer_snapshot(self) -> bool:
        """Order a packed history snapshot through the log (leaders only).

        Mirrors :meth:`repro.smr.replica.ReplicatedGroup._offer_snapshot_catchup`
        across the process boundary: the supervisor asks *every* survivor
        after a restart, and only the current leader acts.  Survivors apply
        the frame too and no-op on the idempotent merge.
        """
        if not self.replica.is_leader:
            return False
        state = self.replica.protocol_state
        if not hasattr(state, "history") or len(state.history) == 0:
            return False
        from ..storage.recovery import snapshot_frame_for

        frame = snapshot_frame_for(state, epoch=getattr(state, "epoch", 0))
        if frame.delta.is_empty:
            return False
        self.replica.on_message("rejoin-catchup", frame)
        return True

    # --------------------------------------------------------------- lifecycle
    async def serve_until_stopped(self) -> None:
        """Serve frames and HTTP until ``/stop`` (or SIGTERM/SIGINT)."""
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.stop_requested.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await self.stop_requested.wait()
        await self.stop()
        await self.transport.aclose()


async def _serve_child(spec_path: str, group_id: GroupId, index: int) -> None:
    with open(spec_path, "r", encoding="utf-8") as handle:
        spec = ClusterSpec.from_json(handle.read())
    server = ReplicaServer(spec, group_id, index)
    await server.serve_until_stopped()


def main(argv: Optional[List[str]] = None) -> int:
    """Child entry point: ``python -m repro.runtime.proc`` runs one replica."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.proc",
        description="Run one replica of one group of a process cluster.",
        epilog=(
            "Normally spawned by repro.runtime.proc.ProcessCluster; see "
            "docs/OPERATIONS.md for the cluster topology and admin endpoints."
        ),
    )
    parser.add_argument("--spec", required=True, help="path to spec.json")
    parser.add_argument("--group", required=True, type=int, help="group id")
    parser.add_argument("--replica", required=True, type=int, help="replica index")
    args = parser.parse_args(argv)
    asyncio.run(_serve_child(args.spec, args.group, args.replica))
    return 0


# --------------------------------------------------------------- parent side
class ProcessCluster:
    """Supervisor for N groups × M replicas running as real OS processes.

    Startup ordering is a non-issue by construction: every port is allocated
    and written into the spec *before* the first child starts, children do
    not talk to each other until traffic arrives, and the supervisor gates
    :meth:`start` on every child's ``/ready`` endpoint.  Shutdown is
    graceful-first (``/stop``), escalating to SIGTERM then SIGKILL.

    Crash handling follows the PR-6/PR-8 model, driven over the admin plane:
    :meth:`kill_replica` SIGKILLs one child and tells its group's survivors
    to mark it failed; :meth:`restart_replica` respawns it from its WALs,
    waits for readiness, triggers :meth:`GroupReplica.rejoin` catch-up, and
    offers a packed history snapshot through the log from the current
    leader.  :meth:`await_group_convergence` then polls the survivors' and
    the rejoiner's ``/delivered`` digests until they agree.
    """

    def __init__(
        self,
        groups: int = 2,
        replication: int = 3,
        storage_root: Optional[str] = None,
        hybrid: bool = False,
        host: str = "127.0.0.1",
    ) -> None:
        if groups < 1 or replication < 1:
            raise ValueError("need at least one group and one replica")
        self.spec = ClusterSpec(
            groups=list(range(groups)),
            replication=replication,
            storage_root=(
                storage_root
                if storage_root is not None
                else tempfile.mkdtemp(prefix="repro-cluster-")
            ),
            host=host,
            hybrid=hybrid,
        )
        self.protocol = self.spec.build_protocol()
        self.processes: Dict[Tuple[GroupId, int], subprocess.Popen] = {}
        self.clients: List[AsyncMulticastClient] = []
        self._spec_path: Optional[str] = None

    # -------------------------------------------------------------- inventory
    def replica_coords(self) -> List[Tuple[GroupId, int]]:
        return [
            (gid, i)
            for gid in self.spec.groups
            for i in range(self.spec.replication)
        ]

    def live_replicas(self, group_id: GroupId) -> List[int]:
        """Indices of this group's replicas whose process is running."""
        return [
            i
            for i in range(self.spec.replication)
            if (proc := self.processes.get((group_id, i))) is not None
            and proc.poll() is None
        ]

    def replica_address(self, group_id: GroupId, index: int) -> Tuple[str, int]:
        """The (host, port) a replica serves frames *and* HTTP on."""
        return self.spec.replica_address(group_id, index)

    # --------------------------------------------------------------- lifecycle
    async def start(self, ready_timeout: float = 30.0) -> None:
        """Allocate ports, write the spec, spawn every replica, await ready."""
        self._allocate_addresses()
        os.makedirs(self.spec.storage_root, exist_ok=True)
        self._spec_path = os.path.join(self.spec.storage_root, "spec.json")
        with open(self._spec_path, "w", encoding="utf-8") as handle:
            handle.write(self.spec.to_json())
        for gid, index in self.replica_coords():
            self._spawn(gid, index)
        await asyncio.gather(
            *(
                self._await_ready(gid, index, ready_timeout)
                for gid, index in self.replica_coords()
            )
        )

    async def stop(self) -> None:
        """Stop clients, then every replica process (graceful, then forceful)."""
        for client in self.clients:
            await client.stop()
        self.clients.clear()
        for (gid, index), proc in list(self.processes.items()):
            if proc.poll() is None:
                host, port = self.spec.replica_address(gid, index)
                try:
                    await _http_get(host, port, "/stop", timeout=2.0)
                except OSError:
                    pass
        deadline = asyncio.get_running_loop().time() + 5.0
        for proc in self.processes.values():
            while proc.poll() is None:
                if asyncio.get_running_loop().time() >= deadline:
                    proc.terminate()
                    try:
                        proc.wait(timeout=2.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()
                    break
                await asyncio.sleep(0.02)
        self.processes.clear()

    async def __aenter__(self) -> "ProcessCluster":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ----------------------------------------------------------------- clients
    async def new_client(
        self, client_id: str, pool: bool = True
    ) -> AsyncMulticastClient:
        """Create a client and announce its response address to every replica.

        The client routes requests by group id (→ the group's replica 0, the
        default leader); the :class:`~repro.core.message.NodeHello` announce
        lets *any* replica — including one that takes over leadership later —
        push :class:`ClientResponse` frames back to it.
        """
        client = AsyncMulticastClient(
            client_id=client_id,
            protocol=self.protocol,
            addresses=self.spec.address_book(),
            pool=pool,
        )
        host, port = await client.start()
        hello = NodeHello(node_id=client_id, host=host, port=port)
        for gid, index in self.replica_coords():
            client.transport.send(replica_node(gid, index), hello)
        self.clients.append(client)
        # One scheduler tick + a breath so the hello frames get on the wire
        # before the first request's responses could possibly come back.
        await asyncio.sleep(0.05)
        return client

    # ------------------------------------------------------------ kill/restart
    async def kill_replica(self, group_id: GroupId, index: int) -> None:
        """SIGKILL one replica process and inform its group's survivors."""
        proc = self.processes[(group_id, index)]
        proc.kill()
        proc.wait()
        victim = replica_node(group_id, index)
        for survivor in self.live_replicas(group_id):
            host, port = self.spec.replica_address(group_id, survivor)
            await _http_get(
                host, port, f"/admin/mark-failed?replica={quote(victim)}"
            )

    async def restart_replica(
        self, group_id: GroupId, index: int, ready_timeout: float = 30.0
    ) -> None:
        """Respawn a killed replica from its WALs and drive the rejoin path."""
        self._spawn(group_id, index)
        await self._await_ready(group_id, index, ready_timeout)
        host, port = self.spec.replica_address(group_id, index)
        await _http_get(host, port, "/admin/rejoin")
        # Let the catch-up round land before offering the history snapshot
        # (both are idempotent; the sleep only shortens convergence).
        await asyncio.sleep(0.2)
        for survivor in self.live_replicas(group_id):
            shost, sport = self.spec.replica_address(group_id, survivor)
            await _http_get(shost, sport, "/admin/offer-snapshot")

    async def await_group_convergence(
        self, group_id: GroupId, timeout: float = 30.0, min_count: int = 0
    ) -> Dict[str, Any]:
        """Poll ``/delivered`` until every live replica agrees on the sequence.

        Returns the agreed ``{count, digest}``; raises ``TimeoutError`` with
        the divergent snapshots otherwise.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        last: List[Dict[str, Any]] = []
        while loop.time() < deadline:
            last = []
            for index in self.live_replicas(group_id):
                host, port = self.spec.replica_address(group_id, index)
                try:
                    status, body = await _http_get(host, port, "/delivered")
                except OSError:
                    # A freshly respawned replica may not be listening yet;
                    # that is "not converged", not an error.
                    break
                if status != 200:
                    break
                last.append(json.loads(body))
            else:
                digests = {d["digest"] for d in last}
                counts = {d["count"] for d in last}
                if (
                    len(digests) == 1
                    and len(counts) == 1
                    and next(iter(counts)) >= min_count
                ):
                    return last[0]
            await asyncio.sleep(0.05)
        raise TimeoutError(
            f"group {group_id} did not converge within {timeout}s: {last}"
        )

    async def delivered_sequence(self, group_id: GroupId, index: int) -> List[str]:
        """One replica's full local delivery sequence (oracle input)."""
        host, port = self.spec.replica_address(group_id, index)
        status, body = await _http_get(host, port, "/delivered?full=1")
        if status != 200:
            raise RuntimeError(f"/delivered on {group_id}/{index} -> {status}")
        return list(json.loads(body)["sequence"])

    async def scrape(self, group_id: GroupId, index: int) -> str:
        """``GET /metrics`` one replica process over real TCP."""
        host, port = self.spec.replica_address(group_id, index)
        status, body = await _http_get(host, port, "/metrics")
        if status != 200:
            raise RuntimeError(f"/metrics on {group_id}/{index} -> {status}")
        return body.decode("utf-8")

    # ----------------------------------------------------------------- helpers
    def _allocate_addresses(self) -> None:
        """Pick one free port per replica, then map group ids to replica 0.

        All probe sockets stay open until every port is picked, so the OS
        cannot hand the same port out twice within one allocation pass.
        """
        if self.spec.addresses:
            return
        probes: List[socket.socket] = []
        triples: List[Tuple[Hashable, str, int]] = []
        try:
            for gid, index in self.replica_coords():
                probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                probe.bind((self.spec.host, 0))
                probes.append(probe)
                port = probe.getsockname()[1]
                triples.append((replica_node(gid, index), self.spec.host, port))
        finally:
            for probe in probes:
                probe.close()
        book = {node_id: (host, port) for node_id, host, port in triples}
        for gid in self.spec.groups:
            host, port = book[replica_node(gid, 0)]
            triples.append((gid, host, port))
        self.spec.addresses = triples

    def _spawn(self, group_id: GroupId, index: int) -> None:
        assert self._spec_path is not None, "start() writes the spec first"
        log_dir = os.path.join(self.spec.storage_root, "logs")
        os.makedirs(log_dir, exist_ok=True)
        log_path = os.path.join(log_dir, f"group-{group_id}-replica-{index}.log")
        env = dict(os.environ)
        # The child must import the same ``repro`` this supervisor runs.
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(os.path.join(__file__, "..")))
        )
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        with open(log_path, "ab") as log:
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.runtime.proc",
                    "--spec",
                    self._spec_path,
                    "--group",
                    str(group_id),
                    "--replica",
                    str(index),
                ],
                stdout=log,
                stderr=log,
                env=env,
            )
        self.processes[(group_id, index)] = proc

    async def _await_ready(
        self, group_id: GroupId, index: int, timeout: float
    ) -> None:
        host, port = self.spec.replica_address(group_id, index)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        proc = self.processes[(group_id, index)]
        while loop.time() < deadline:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"replica {group_id}/{index} exited with {proc.returncode} "
                    f"before becoming ready (see "
                    f"{self.spec.storage_root}/logs/"
                    f"group-{group_id}-replica-{index}.log)"
                )
            try:
                status, _ = await _http_get(host, port, "/ready", timeout=1.0)
                if status == 200:
                    return
            except OSError:
                pass
            await asyncio.sleep(0.05)
        raise TimeoutError(f"replica {group_id}/{index} not ready in {timeout}s")


async def _http_get(
    host: str, port: int, path: str, timeout: float = 5.0
) -> Tuple[int, bytes]:
    """Minimal HTTP/1.0 GET against a replica's admin plane."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:  # pragma: no cover - platform dependent
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_parts = head.split(b"\r\n", 1)[0].split(b" ")
    status = int(status_parts[1]) if len(status_parts) >= 2 else 0
    return status, body


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
