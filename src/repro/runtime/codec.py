"""Wire codec for the asyncio runtime.

Every envelope the protocols exchange (plus the application-level
:class:`~repro.core.message.Message` and history deltas) is encoded as
length-prefixed JSON.  JSON keeps the frames debuggable with ``tcpdump``/
``wireshark`` and avoids pickling code objects across trust boundaries; the
size model used by the simulator (``size_bytes``) intentionally stays separate
so simulated byte counts do not depend on JSON verbosity.
"""

from __future__ import annotations

import json
import struct
import sys
from typing import Any, Dict, Tuple

from ..core import message as msg
from ..smr.multipaxos import (
    CatchupReply,
    CatchupRequest,
    ClientCommand,
    Commit,
    Heartbeat,
)
from ..smr.paxos import Accept, Accepted, Ballot, Nack, Prepare, Promise

#: 4-byte big-endian length prefix.
_LENGTH = struct.Struct(">I")

#: Maximum accepted frame size (16 MiB) — guards against corrupted prefixes.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class CodecError(ValueError):
    """Raised when a frame cannot be encoded or decoded."""


# --------------------------------------------------------------- message pieces
def _message_to_dict(m: msg.Message) -> Dict[str, Any]:
    d = {
        "msg_id": m.msg_id,
        "dst": sorted(m.dst),
        "sender": m.sender,
        "payload": m.payload,
        "payload_bytes": m.payload_bytes,
        "is_flush": m.is_flush,
    }
    if m.trace_id is not None:
        # Observability correlation id (repro.obs): emitted only when set,
        # so untraced frames keep their historical byte-for-byte shape.
        d["trace_id"] = m.trace_id
    if m.members:
        # Batch carrier: one level of member messages (batch_of forbids
        # nesting, so the recursion is bounded at depth one).
        d["members"] = [_message_to_dict(member) for member in m.members]
    return d


def _message_from_dict(d: Dict[str, Any]) -> msg.Message:
    return msg.Message(
        msg_id=d["msg_id"],
        dst=frozenset(d["dst"]),
        sender=d["sender"],
        payload=d.get("payload"),
        payload_bytes=d.get("payload_bytes", 64),
        is_flush=d.get("is_flush", False),
        trace_id=d.get("trace_id"),
        members=tuple(
            _message_from_dict(member) for member in d.get("members", [])
        ),
    )


def _snapshot_to_dict(snapshot: msg.HistorySnapshot) -> Dict[str, Any]:
    return {
        "ids": list(snapshot.ids),
        "dsts": [sorted(dst) for dst in snapshot.dsts],
        "edges_a": list(snapshot.edges_a),
        "edges_b": list(snapshot.edges_b),
        "last_delivered": snapshot.last_delivered,
        "version": snapshot.version,
    }


def _snapshot_from_dict(d: Dict[str, Any]) -> msg.HistorySnapshot:
    intern = sys.intern
    return msg.HistorySnapshot(
        ids=tuple(intern(mid) for mid in d.get("ids", [])),
        dsts=tuple(frozenset(dst) for dst in d.get("dsts", [])),
        edges_a=tuple(intern(a) for a in d.get("edges_a", [])),
        edges_b=tuple(intern(b) for b in d.get("edges_b", [])),
        last_delivered=d.get("last_delivered"),
        version=d.get("version", 0),
    )


def _delta_to_dict(delta: msg.HistoryDelta) -> Dict[str, Any]:
    d = {
        "vertices": [[mid, sorted(dst)] for mid, dst in delta.vertices],
        "edges": [list(edge) for edge in delta.edges],
        "last_delivered": delta.last_delivered,
        "seq": delta.seq,
    }
    if delta.snapshot is not None:
        # Cold-sync deltas only: warm diffs keep their historical
        # byte-for-byte frame shape (same emit-only-when-set discipline as
        # trace_id/members).
        d["snapshot"] = _snapshot_to_dict(delta.snapshot)
    return d


def _delta_from_dict(d: Dict[str, Any]) -> msg.HistoryDelta:
    # Delta vertex/edge ids recur across every index and pending-set on the
    # receiving group; interning at the decode boundary makes the in-memory
    # copies pointer-identical (see Message.__post_init__).
    intern = sys.intern
    snapshot = d.get("snapshot")
    return msg.HistoryDelta(
        vertices=tuple(
            (intern(mid), frozenset(dst)) for mid, dst in d.get("vertices", [])
        ),
        edges=tuple((intern(a), intern(b)) for a, b in d.get("edges", [])),
        last_delivered=d.get("last_delivered"),
        seq=d.get("seq"),
        snapshot=_snapshot_from_dict(snapshot) if snapshot is not None else None,
    )


# ---------------------------------------------------------------- SMR values
# SMR frames carry log *values*: OrderedEnvelope wrappers around protocol
# envelopes (the process-cluster runtime), or plain JSON-able commands
# (tests).  The wrapper's own wire form lives in repro.smr.replica; the
# import is lazy because that module imports this codec inside functions.
def _smr_value_to_wire(value: Any) -> Any:
    from ..smr.replica import _entry_to_wire

    return _entry_to_wire(value)


def _smr_value_from_wire(wire: Any) -> Any:
    from ..smr.replica import _entry_from_wire

    return _entry_from_wire(wire)


def _ballot_to_list(ballot: Ballot) -> list:
    return [ballot.round, ballot.proposer]


# ------------------------------------------------------------------- envelopes
def _encode_envelope(envelope: Any) -> Dict[str, Any]:
    if isinstance(envelope, msg.FlexCastBatch):
        # Before ClientRequest: FlexCastBatch subclasses it, and the frame
        # type must survive the round-trip so receivers account batches.
        return {"type": "flexcast-batch", "message": _message_to_dict(envelope.message)}
    if isinstance(envelope, msg.ClientRequest):
        return {"type": "request", "message": _message_to_dict(envelope.message)}
    if isinstance(envelope, msg.ClientResponse):
        return {"type": "response", "msg_id": envelope.msg_id, "group": envelope.group}
    if isinstance(envelope, msg.FlexCastMsg):
        return {
            "type": "flexcast-msg",
            "message": _message_to_dict(envelope.message),
            "history": _delta_to_dict(envelope.history),
            "notified": sorted(envelope.notified),
            "epoch": envelope.epoch,
            "ts_proposals": [list(p) for p in envelope.ts_proposals],
        }
    if isinstance(envelope, msg.FlexCastAck):
        return {
            "type": "flexcast-ack",
            "message": _message_to_dict(envelope.message),
            "history": _delta_to_dict(envelope.history),
            "from_group": envelope.from_group,
            "notified": sorted(envelope.notified),
            "epoch": envelope.epoch,
            "ts_proposals": [list(p) for p in envelope.ts_proposals],
        }
    if isinstance(envelope, msg.HistorySnapshotFrame):
        return {
            "type": "history-snapshot",
            "group": envelope.group,
            "history": _delta_to_dict(envelope.delta),
            "epoch": envelope.epoch,
        }
    if isinstance(envelope, msg.FlexCastTsPropose):
        return {
            "type": "flexcast-ts-propose",
            "message": _message_to_dict(envelope.message),
            "timestamp": envelope.timestamp,
            "from_group": envelope.from_group,
            "epoch": envelope.epoch,
        }
    if isinstance(envelope, msg.FlexCastNotif):
        return {
            "type": "flexcast-notif",
            "message": _message_to_dict(envelope.message),
            "history": _delta_to_dict(envelope.history),
            "from_group": envelope.from_group,
            "epoch": envelope.epoch,
        }
    if isinstance(envelope, msg.EpochPrepare):
        return {
            "type": "epoch-prepare",
            "new_epoch": envelope.new_epoch,
            "reply_to": envelope.reply_to,
            "barrier_id": envelope.barrier_id,
        }
    if isinstance(envelope, msg.EpochPrepareAck):
        return {
            "type": "epoch-prepare-ack",
            "new_epoch": envelope.new_epoch,
            "group": envelope.group,
        }
    if isinstance(envelope, msg.QuiesceQuery):
        return {
            "type": "quiesce-query",
            "new_epoch": envelope.new_epoch,
            "round_id": envelope.round_id,
            "barrier_id": envelope.barrier_id,
            "reply_to": envelope.reply_to,
        }
    if isinstance(envelope, msg.QuiesceReply):
        return {
            "type": "quiesce-reply",
            "new_epoch": envelope.new_epoch,
            "round_id": envelope.round_id,
            "group": envelope.group,
            "quiescent": envelope.quiescent,
            "barrier_delivered": envelope.barrier_delivered,
            "envelopes_sent": envelope.envelopes_sent,
            "envelopes_received": envelope.envelopes_received,
        }
    if isinstance(envelope, msg.EpochSwitch):
        return {
            "type": "epoch-switch",
            "new_epoch": envelope.new_epoch,
            "order": list(envelope.order),
            "reply_to": envelope.reply_to,
        }
    if isinstance(envelope, msg.EpochSwitchAck):
        return {
            "type": "epoch-switch-ack",
            "epoch": envelope.epoch,
            "group": envelope.group,
        }
    if isinstance(envelope, msg.EpochBounce):
        return {
            "type": "epoch-bounce",
            "message": _message_to_dict(envelope.message),
            "epoch": envelope.epoch,
            "from_group": envelope.from_group,
        }
    if isinstance(envelope, msg.SkeenTimestamp):
        return {
            "type": "skeen-timestamp",
            "msg_id": envelope.msg_id,
            "timestamp": envelope.timestamp,
            "from_group": envelope.from_group,
        }
    if isinstance(envelope, msg.SkeenPropose):
        return {"type": "skeen-propose", "message": _message_to_dict(envelope.message)}
    if isinstance(envelope, msg.TreeForward):
        return {
            "type": "tree-forward",
            "message": _message_to_dict(envelope.message),
            "sequence": envelope.sequence,
        }
    if isinstance(envelope, msg.NodeHello):
        return {
            "type": "node-hello",
            "node_id": envelope.node_id,
            "host": envelope.host,
            "port": envelope.port,
        }
    # SMR / Paxos frames: the process-cluster runtime replicates each group
    # over real TCP, so the intra-group consensus traffic must survive the
    # wire too.  Ballots travel as [round, proposer] pairs; log values go
    # through the OrderedEnvelope wire form (repro.smr.replica).
    if isinstance(envelope, ClientCommand):
        return {"type": "smr-command", "payload": _smr_value_to_wire(envelope.payload)}
    if isinstance(envelope, Commit):
        return {
            "type": "smr-commit",
            "instance": envelope.instance,
            "value": _smr_value_to_wire(envelope.value),
        }
    if isinstance(envelope, Heartbeat):
        return {"type": "smr-heartbeat", "leader": envelope.leader}
    if isinstance(envelope, CatchupRequest):
        return {
            "type": "smr-catchup",
            "from_instance": envelope.from_instance,
            "from_replica": envelope.from_replica,
        }
    if isinstance(envelope, CatchupReply):
        return {
            "type": "smr-catchup-reply",
            "entries": [
                [instance, _smr_value_to_wire(value)]
                for instance, value in envelope.entries
            ],
        }
    if isinstance(envelope, Prepare):
        return {
            "type": "paxos-prepare",
            "instance": envelope.instance,
            "ballot": _ballot_to_list(envelope.ballot),
        }
    if isinstance(envelope, Promise):
        return {
            "type": "paxos-promise",
            "instance": envelope.instance,
            "ballot": _ballot_to_list(envelope.ballot),
            "accepted_ballot": (
                _ballot_to_list(envelope.accepted_ballot)
                if envelope.accepted_ballot is not None
                else None
            ),
            "accepted_value": (
                _smr_value_to_wire(envelope.accepted_value)
                if envelope.accepted_value is not None
                else None
            ),
            "from_replica": envelope.from_replica,
        }
    if isinstance(envelope, Accept):
        return {
            "type": "paxos-accept",
            "instance": envelope.instance,
            "ballot": _ballot_to_list(envelope.ballot),
            "value": _smr_value_to_wire(envelope.value),
        }
    if isinstance(envelope, Accepted):
        return {
            "type": "paxos-accepted",
            "instance": envelope.instance,
            "ballot": _ballot_to_list(envelope.ballot),
            "value": _smr_value_to_wire(envelope.value),
            "from_replica": envelope.from_replica,
        }
    if isinstance(envelope, Nack):
        return {
            "type": "paxos-nack",
            "instance": envelope.instance,
            "ballot": _ballot_to_list(envelope.ballot),
            "promised": _ballot_to_list(envelope.promised),
            "from_replica": envelope.from_replica,
        }
    raise CodecError(f"cannot encode envelope of type {type(envelope).__name__}")


def _decode_envelope(data: Dict[str, Any]) -> Any:
    env_type = data.get("type")
    if env_type == "request":
        return msg.ClientRequest(message=_message_from_dict(data["message"]))
    if env_type == "flexcast-batch":
        return msg.FlexCastBatch(message=_message_from_dict(data["message"]))
    if env_type == "response":
        return msg.ClientResponse(msg_id=data["msg_id"], group=data["group"])
    if env_type == "flexcast-msg":
        return msg.FlexCastMsg(
            message=_message_from_dict(data["message"]),
            history=_delta_from_dict(data["history"]),
            notified=frozenset(data.get("notified", [])),
            epoch=data.get("epoch", 0),
            ts_proposals=tuple(
                (group, ts) for group, ts in data.get("ts_proposals", [])
            ),
        )
    if env_type == "flexcast-ack":
        return msg.FlexCastAck(
            message=_message_from_dict(data["message"]),
            history=_delta_from_dict(data["history"]),
            from_group=data["from_group"],
            notified=frozenset(data.get("notified", [])),
            epoch=data.get("epoch", 0),
            ts_proposals=tuple(
                (group, ts) for group, ts in data.get("ts_proposals", [])
            ),
        )
    if env_type == "history-snapshot":
        return msg.HistorySnapshotFrame(
            group=data["group"],
            delta=_delta_from_dict(data["history"]),
            epoch=data.get("epoch", 0),
        )
    if env_type == "flexcast-ts-propose":
        return msg.FlexCastTsPropose(
            message=_message_from_dict(data["message"]),
            timestamp=data["timestamp"],
            from_group=data["from_group"],
            epoch=data.get("epoch", 0),
        )
    if env_type == "flexcast-notif":
        return msg.FlexCastNotif(
            message=_message_from_dict(data["message"]),
            history=_delta_from_dict(data["history"]),
            from_group=data["from_group"],
            epoch=data.get("epoch", 0),
        )
    if env_type == "epoch-prepare":
        return msg.EpochPrepare(
            new_epoch=data["new_epoch"],
            reply_to=data["reply_to"],
            barrier_id=data.get("barrier_id", ""),
        )
    if env_type == "epoch-prepare-ack":
        return msg.EpochPrepareAck(new_epoch=data["new_epoch"], group=data["group"])
    if env_type == "quiesce-query":
        return msg.QuiesceQuery(
            new_epoch=data["new_epoch"],
            round_id=data["round_id"],
            barrier_id=data["barrier_id"],
            reply_to=data["reply_to"],
        )
    if env_type == "quiesce-reply":
        return msg.QuiesceReply(
            new_epoch=data["new_epoch"],
            round_id=data["round_id"],
            group=data["group"],
            quiescent=data["quiescent"],
            barrier_delivered=data["barrier_delivered"],
            envelopes_sent=data["envelopes_sent"],
            envelopes_received=data["envelopes_received"],
        )
    if env_type == "epoch-switch":
        return msg.EpochSwitch(
            new_epoch=data["new_epoch"],
            order=tuple(data["order"]),
            reply_to=data["reply_to"],
        )
    if env_type == "epoch-switch-ack":
        return msg.EpochSwitchAck(epoch=data["epoch"], group=data["group"])
    if env_type == "epoch-bounce":
        return msg.EpochBounce(
            message=_message_from_dict(data["message"]),
            epoch=data["epoch"],
            from_group=data["from_group"],
        )
    if env_type == "skeen-timestamp":
        return msg.SkeenTimestamp(
            msg_id=data["msg_id"],
            timestamp=data["timestamp"],
            from_group=data["from_group"],
        )
    if env_type == "skeen-propose":
        return msg.SkeenPropose(message=_message_from_dict(data["message"]))
    if env_type == "tree-forward":
        return msg.TreeForward(
            message=_message_from_dict(data["message"]), sequence=data["sequence"]
        )
    if env_type == "node-hello":
        return msg.NodeHello(
            node_id=data["node_id"], host=data["host"], port=data["port"]
        )
    if env_type == "smr-command":
        return ClientCommand(payload=_smr_value_from_wire(data["payload"]))
    if env_type == "smr-commit":
        return Commit(
            instance=data["instance"], value=_smr_value_from_wire(data["value"])
        )
    if env_type == "smr-heartbeat":
        return Heartbeat(leader=data["leader"])
    if env_type == "smr-catchup":
        return CatchupRequest(
            from_instance=data["from_instance"], from_replica=data["from_replica"]
        )
    if env_type == "smr-catchup-reply":
        return CatchupReply(
            entries=tuple(
                (instance, _smr_value_from_wire(value))
                for instance, value in data.get("entries", [])
            )
        )
    if env_type == "paxos-prepare":
        return Prepare(instance=data["instance"], ballot=Ballot(*data["ballot"]))
    if env_type == "paxos-promise":
        accepted_ballot = data.get("accepted_ballot")
        accepted_value = data.get("accepted_value")
        return Promise(
            instance=data["instance"],
            ballot=Ballot(*data["ballot"]),
            accepted_ballot=(
                Ballot(*accepted_ballot) if accepted_ballot is not None else None
            ),
            accepted_value=(
                _smr_value_from_wire(accepted_value)
                if accepted_value is not None
                else None
            ),
            from_replica=data["from_replica"],
        )
    if env_type == "paxos-accept":
        return Accept(
            instance=data["instance"],
            ballot=Ballot(*data["ballot"]),
            value=_smr_value_from_wire(data["value"]),
        )
    if env_type == "paxos-accepted":
        return Accepted(
            instance=data["instance"],
            ballot=Ballot(*data["ballot"]),
            value=_smr_value_from_wire(data["value"]),
            from_replica=data["from_replica"],
        )
    if env_type == "paxos-nack":
        return Nack(
            instance=data["instance"],
            ballot=Ballot(*data["ballot"]),
            promised=Ballot(*data["promised"]),
            from_replica=data["from_replica"],
        )
    raise CodecError(f"cannot decode envelope type {env_type!r}")


# The WAL layer (repro.storage users) persists envelopes in the same JSON
# shape the wire uses; these public aliases are the supported entry points.
def envelope_to_dict(envelope: Any) -> Dict[str, Any]:
    """Encode any protocol envelope to its JSON-able wire dictionary."""
    return _encode_envelope(envelope)


def envelope_from_dict(data: Dict[str, Any]) -> Any:
    """Decode an envelope from its JSON wire dictionary (inverse of above)."""
    return _decode_envelope(data)


# --------------------------------------------------------------------- framing
def encode_frame(sender: Any, envelope: Any) -> bytes:
    """Encode one (sender, envelope) frame with its length prefix."""
    body = json.dumps(
        {"sender": sender, "envelope": _encode_envelope(envelope)},
        separators=(",", ":"),
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} limit")
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> Tuple[Any, Any]:
    """Decode a frame body (without its length prefix) into (sender, envelope)."""
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed frame: {exc}") from exc
    return data.get("sender"), _decode_envelope(data.get("envelope", {}))


async def read_frame(reader, preread: bytes = b"") -> Tuple[Any, Any]:
    """Read one length-prefixed frame from an ``asyncio.StreamReader``.

    ``preread`` holds up to 4 bytes already consumed from the stream (the
    server peeks at the first bytes of a connection to tell HTTP scrapes
    from frame traffic); they are treated as the start of the length prefix.
    """
    need = _LENGTH.size - len(preread)
    header = preread + (await reader.readexactly(need) if need > 0 else b"")
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {length} exceeds the {MAX_FRAME_BYTES} limit")
    body = await reader.readexactly(length)
    return decode_frame(body)
