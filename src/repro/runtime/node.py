"""Runtime node: runs one protocol group as an asyncio TCP server."""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from ..core.message import ClientResponse, Message
from ..overlay.base import GroupId
from ..protocols.base import AtomicMulticastProtocol
from .codec import CodecError, read_frame
from .transport import AddressBook, AsyncioTransport


class GroupServer:
    """One group of any atomic multicast protocol, served over TCP.

    The server accepts frames from clients and from other groups, feeds them
    to the group's protocol logic, and sends a :class:`ClientResponse` back to
    the message's sender whenever the group delivers a message.  An optional
    ``on_deliver`` callback lets applications consume deliveries directly
    (that is the integration point for building replicated services on top).

    With a ``storage`` backend (:mod:`repro.storage`) the group's history —
    DAG, delivered set, ``lastDlvd`` — becomes durable: the server restores
    it at construction (snapshot + WAL-suffix replay) and journals every
    mutation from then on, so a restarted server node resumes from its
    pre-crash delivery state instead of a blank group.
    ``recovered_deliveries`` reports how many local deliveries were restored
    (0 on a cold start).
    """

    def __init__(
        self,
        group_id: GroupId,
        protocol: AtomicMulticastProtocol,
        addresses: AddressBook,
        host: str = "127.0.0.1",
        port: int = 0,
        on_deliver: Optional[Callable[[GroupId, Message], None]] = None,
        latencies=None,
        sites: Optional[Dict[Hashable, int]] = None,
        storage: Optional[Any] = None,
    ) -> None:
        self.group_id = group_id
        self.host = host
        self.port = port
        self._on_deliver = on_deliver
        self.transport = AsyncioTransport(
            node_id=group_id, addresses=addresses, latencies=latencies, sites=sites
        )
        self.group = protocol.create_group(group_id, self.transport, self._sink)
        self.recovered_deliveries = 0
        if storage is not None:
            from ..storage.recovery import attach_group_storage

            self.recovered_deliveries = attach_group_storage(
                self.group, storage, name=f"group-{group_id}"
            )
        self._server: Optional[asyncio.AbstractServer] = None
        self.delivered: list = []
        self.frames_received = 0

    # ----------------------------------------------------------------- server
    async def start(self) -> Tuple[str, int]:
        """Start listening; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self.transport.register_address(self.group_id, self.host, self.port)
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    sender, envelope = await read_frame(reader)
                except (asyncio.IncompleteReadError, CodecError):
                    break
                self.frames_received += 1
                self.group.on_envelope(sender, envelope)
        finally:
            writer.close()

    # --------------------------------------------------------------- delivery
    def _sink(self, group_id: GroupId, message: Message) -> None:
        self.delivered.append(message)
        if self._on_deliver is not None:
            self._on_deliver(group_id, message)
        sender = message.sender
        # Respond to the client if we know how to reach it.
        try:
            self.transport.send(
                sender, ClientResponse(msg_id=message.msg_id, group=group_id)
            )
        except KeyError:
            pass
