"""Runtime node: runs one protocol group as an asyncio TCP server."""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from ..core.message import ClientResponse, Message, NodeHello
from ..obs import Observability
from ..overlay.base import GroupId
from ..protocols.base import AtomicMulticastProtocol
from .codec import CodecError, read_frame
from .transport import AddressBook, AsyncioTransport

#: First bytes of an HTTP GET.  As a frame length prefix this would claim a
#: ~1.2 GB frame — far above ``MAX_FRAME_BYTES`` — so no legitimate frame
#: traffic can collide with the scrape detection.
_HTTP_GET = b"GET "

#: An HTTP response triple: (status line, body, content type).
HttpResponse = Tuple[bytes, bytes, bytes]


class FrameServer:
    """Shared TCP front end: length-prefixed frames + HTTP on one port.

    Both runtime server flavours — :class:`GroupServer` (one process per
    *group*) and :class:`~repro.runtime.proc.ReplicaServer` (one process per
    *replica*) — accept the same two kinds of traffic on a single port:

    * wire frames (:mod:`repro.runtime.codec`), fed to :meth:`handle_frame`
      one by one for as long as the peer keeps the connection open (so both
      ephemeral and pooled transports work against it); and
    * plain HTTP ``GET`` requests, answered by :meth:`handle_http` —
      ``/metrics`` scrapes, readiness probes, and (for the process runtime)
      the supervisor's admin plane.

    The first four bytes of every connection decide which it is.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self.frames_received = 0
        self._server: Optional[asyncio.AbstractServer] = None
        # Established connections (pooled transports hold theirs open for the
        # server's whole life); stop() must close them or handlers linger.
        self._conn_writers: set = set()

    # --------------------------------------------------------------- lifecycle
    async def start(self) -> Tuple[str, int]:
        """Start listening; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._conn_writers):
            writer.close()
        self._conn_writers.clear()

    # ------------------------------------------------------------------ hooks
    def handle_frame(self, sender: Hashable, envelope: Any) -> None:
        """Process one decoded wire frame (override)."""
        raise NotImplementedError

    def handle_http(self, path: str) -> HttpResponse:
        """Answer one HTTP GET for ``path`` (override for extra endpoints).

        ``path`` includes any query string; the base class serves ``/ready``
        (200 once the server listens — by construction, if this runs the
        socket is accepting).
        """
        if path.split("?", 1)[0] == "/ready":
            return b"200 OK", b"ready\n", b"text/plain; charset=utf-8"
        return (
            b"404 Not Found",
            b"not found\n",
            b"text/plain; charset=utf-8",
        )

    # ------------------------------------------------------------ connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_writers.add(writer)
        try:
            # Peek at the first 4 bytes: an HTTP GET (scrape/probe/admin) or
            # the length prefix of the first frame.
            try:
                probe = await reader.readexactly(len(_HTTP_GET))
            except asyncio.IncompleteReadError:
                return
            if probe == _HTTP_GET:
                await self._serve_http(reader, writer)
                return
            preread = probe
            while True:
                try:
                    sender, envelope = await read_frame(reader, preread=preread)
                except (asyncio.IncompleteReadError, CodecError):
                    break
                preread = b""
                self.frames_received += 1
                self.handle_frame(sender, envelope)
        finally:
            self._conn_writers.discard(writer)
            writer.close()

    async def _serve_http(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        """Answer one HTTP request and close.

        Minimal by design: HTTP/1.0 semantics, no keep-alive — enough for
        ``curl``, a Prometheus scraper, and the process supervisor.
        """
        request = _HTTP_GET  # the probe already consumed these bytes
        try:
            while b"\r\n\r\n" not in request and len(request) < 65536:
                chunk = await asyncio.wait_for(reader.read(1024), timeout=5.0)
                if not chunk:
                    break
                request += chunk
        except asyncio.TimeoutError:
            pass
        parts = request.split(b"\r\n", 1)[0].split(b" ")
        path = parts[1].decode("latin-1", "replace") if len(parts) >= 2 else "/"
        status, body, ctype = self.handle_http(path)
        writer.write(
            b"HTTP/1.0 " + status + b"\r\nContent-Type: " + ctype
            + b"\r\nContent-Length: " + str(len(body)).encode("ascii")
            + b"\r\nConnection: close\r\n\r\n" + body
        )
        await writer.drain()


class GroupServer(FrameServer):
    """One group of any atomic multicast protocol, served over TCP.

    The server accepts frames from clients and from other groups, feeds them
    to the group's protocol logic, and sends a :class:`ClientResponse` back to
    the message's sender whenever the group delivers a message.  An optional
    ``on_deliver`` callback lets applications consume deliveries directly
    (that is the integration point for building replicated services on top).

    With a ``storage`` backend (:mod:`repro.storage`) the group's history —
    DAG, delivered set, ``lastDlvd`` — becomes durable: the server restores
    it at construction (snapshot + WAL-suffix replay) and journals every
    mutation from then on, so a restarted server node resumes from its
    pre-crash delivery state instead of a blank group.
    ``recovered_deliveries`` reports how many local deliveries were restored
    (0 on a cold start).
    """

    def __init__(
        self,
        group_id: GroupId,
        protocol: AtomicMulticastProtocol,
        addresses: AddressBook,
        host: str = "127.0.0.1",
        port: int = 0,
        on_deliver: Optional[Callable[[GroupId, Message], None]] = None,
        latencies=None,
        sites: Optional[Dict[Hashable, int]] = None,
        storage: Optional[Any] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(host=host, port=port)
        self.group_id = group_id
        self._on_deliver = on_deliver
        self.transport = AsyncioTransport(
            node_id=group_id, addresses=addresses, latencies=latencies, sites=sites
        )
        self.group = protocol.create_group(group_id, self.transport, self._sink)
        self.recovered_deliveries = 0
        if storage is not None:
            from ..storage.recovery import attach_group_storage

            self.recovered_deliveries = attach_group_storage(
                self.group, storage, name=f"group-{group_id}"
            )
        self.delivered: list = []
        self.obs: Optional[Observability] = None
        if obs is not None:
            self.attach_obs(obs)

    def attach_obs(self, obs: Observability) -> None:
        """Attach an observability hub: group instrumentation + ``/metrics``.

        Once attached, an HTTP ``GET /metrics`` on the server's port answers
        with the registry in Prometheus text exposition format (regular frame
        traffic on the same port is unaffected — see ``_HTTP_GET``).
        """
        self.obs = obs
        self.group.attach_obs(obs)
        labels = {"group": str(self.group_id)}
        obs.registry.counter(
            "server_frames_received_total",
            "Wire frames accepted by this group server.",
            labels,
            fn=lambda: self.frames_received,
        )
        obs.registry.gauge(
            "server_delivered",
            "Messages delivered by this group server since start.",
            labels,
            fn=lambda: len(self.delivered),
        )

    # ----------------------------------------------------------------- server
    async def start(self) -> Tuple[str, int]:
        """Start listening; returns the bound (host, port)."""
        host, port = await super().start()
        self.transport.register_address(self.group_id, host, port)
        return host, port

    async def stop(self) -> None:
        await super().stop()
        await self.transport.aclose()

    # ------------------------------------------------------------------ hooks
    def handle_frame(self, sender: Hashable, envelope: Any) -> None:
        if isinstance(envelope, NodeHello):
            # Transport-level address announcement (late-joining clients):
            # register and drop — it must never reach the protocol.
            self.transport.register_address(
                envelope.node_id, envelope.host, envelope.port
            )
            return
        self.group.on_envelope(sender, envelope)

    def handle_http(self, path: str) -> HttpResponse:
        if path.split("?", 1)[0] == "/metrics":
            if self.obs is None:
                return (
                    b"404 Not Found",
                    b"not found (is observability attached?)\n",
                    b"text/plain; charset=utf-8",
                )
            return (
                b"200 OK",
                self.obs.registry.render_prometheus().encode("utf-8"),
                b"text/plain; version=0.0.4; charset=utf-8",
            )
        return super().handle_http(path)

    # --------------------------------------------------------------- delivery
    def _sink(self, group_id: GroupId, message: Message) -> None:
        self.delivered.append(message)
        if self._on_deliver is not None:
            self._on_deliver(group_id, message)
        sender = message.sender
        # Respond to the client if we know how to reach it.
        try:
            self.transport.send(
                sender, ClientResponse(msg_id=message.msg_id, group=group_id)
            )
        except KeyError:
            pass
