"""Asyncio TCP transport.

The paper's prototype runs over TCP between machines; this transport runs the
same protocol code over real sockets (typically on localhost for examples and
integration tests).  It implements the :class:`~repro.sim.transport.Transport`
interface, so :class:`~repro.core.flexcast.FlexCastGroup` and the baselines
are byte-for-byte the same classes used in the simulator.

Optionally, an artificial one-way delay can be injected per (source site,
destination site) pair using the same latency matrix as the simulator, turning
a localhost cluster into an emulated WAN — the same technique the paper uses
on CloudLab.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from ..sim.latencies import LatencyMatrix
from ..sim.transport import Transport
from .codec import encode_frame

#: Address book: node id -> (host, port).
AddressBook = Dict[Hashable, Tuple[str, int]]


class AsyncioTransport(Transport):
    """Outbound half of a runtime node.

    By default each ``send`` opens a short-lived TCP connection to the
    destination node, writes one frame, and closes.  This trades throughput
    for simplicity and robustness (no connection state machine), which is the
    right trade-off for examples and integration tests.

    With ``pool=True`` the transport keeps one persistent connection per
    destination and writes frames down it under a per-destination lock (the
    receiving frame server already loops over frames on one connection).  A
    stale pooled connection — the peer restarted, or an idle socket was
    reset — is dropped and the send retried once on a fresh connection before
    it counts as failed.  The process-cluster soak harness needs this: at
    ~5 frames per message, 1M messages through ephemeral connections would
    spend most of their time in TCP handshakes and TIME_WAIT exhaustion.
    """

    def __init__(
        self,
        node_id: Hashable,
        addresses: AddressBook,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        latencies: Optional[LatencyMatrix] = None,
        sites: Optional[Dict[Hashable, int]] = None,
        pool: bool = False,
    ) -> None:
        self._node_id = node_id
        # Kept by reference on purpose: the cluster's address book is shared so
        # nodes learn about peers/clients that join after this transport is built.
        self._addresses = addresses
        self._loop = loop
        self._latencies = latencies
        self._sites = sites or {}
        self._pool_enabled = pool
        # Keyed by (host, port), not by destination id: many logical node
        # ids can share one physical endpoint (e.g. thousands of simulated
        # soak clients answering on one driver port), and they must share
        # one connection, not exhaust file descriptors.
        self._pool: Dict[Tuple[str, int], asyncio.StreamWriter] = {}
        self._pool_locks: Dict[Tuple[str, int], asyncio.Lock] = {}
        self._pool_watchers: Dict[Tuple[str, int], asyncio.Task] = {}
        self.sent_frames = 0
        self.failed_sends = 0

    # ------------------------------------------------------------- utilities
    def _event_loop(self) -> asyncio.AbstractEventLoop:
        return self._loop or asyncio.get_event_loop()

    def register_address(self, node_id: Hashable, host: str, port: int) -> None:
        self._addresses[node_id] = (host, port)

    def _delay_to(self, dst: Hashable) -> float:
        """Injected one-way delay in seconds (0 when no latency matrix is set)."""
        if self._latencies is None:
            return 0.0
        src_site = self._sites.get(self._node_id)
        dst_site = self._sites.get(dst)
        if src_site is None or dst_site is None:
            return 0.0
        return self._latencies.latency(src_site, dst_site) / 1000.0

    # -------------------------------------------------------------- interface
    def send(self, dst: Hashable, payload: Any) -> None:
        """Fire-and-forget delivery of ``payload`` to ``dst``.

        Scheduling is done on the running asyncio loop; failures (destination
        down) are counted but not raised, mirroring the asynchronous-system
        model in which message loss before GST is possible.
        """
        if dst not in self._addresses:
            raise KeyError(f"unknown destination node {dst!r}")
        frame = encode_frame(self._node_id, payload)
        delay = self._delay_to(dst)
        loop = self._event_loop()
        loop.call_soon_threadsafe(
            lambda: loop.create_task(self._deliver(dst, frame, delay))
        )

    async def _deliver(self, dst: Hashable, frame: bytes, delay: float) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        if self._pool_enabled:
            await self._deliver_pooled(dst, frame)
            return
        host, port = self._addresses[dst]
        try:
            _, writer = await asyncio.open_connection(host, port)
        except OSError:
            self.failed_sends += 1
            return
        try:
            writer.write(frame)
            await writer.drain()
            self.sent_frames += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - platform dependent
                pass

    async def _deliver_pooled(self, dst: Hashable, frame: bytes) -> None:
        # One frame in flight per endpoint: the lock keeps interleaved
        # sends from corrupting the stream, and serialises the open/retry
        # dance so two racing sends cannot both open a connection.
        addr = self._addresses[dst]
        lock = self._pool_locks.setdefault(addr, asyncio.Lock())
        async with lock:
            for attempt in (0, 1):
                writer = self._pool.get(addr)
                if writer is None:
                    try:
                        reader, writer = await asyncio.open_connection(*addr)
                    except OSError:
                        self.failed_sends += 1
                        return
                    self._pool[addr] = writer
                    # The peer never writes back on this pipe, so any read
                    # completing means EOF/reset: evict the stale socket now
                    # rather than on the next send's write failure (which TCP
                    # often surfaces one write too late, losing a frame).
                    self._pool_watchers[addr] = asyncio.get_running_loop().create_task(
                        self._watch_eof(addr, reader, writer)
                    )
                try:
                    writer.write(frame)
                    await writer.drain()
                    self.sent_frames += 1
                    return
                except (OSError, ConnectionError):
                    # Stale connection (peer restarted / idle reset): drop it
                    # and retry once on a fresh one.
                    self._evict(addr, writer)
                    await self._close_writer(writer)
                    if attempt == 1:
                        self.failed_sends += 1

    def _evict(self, addr: Tuple[str, int], writer: asyncio.StreamWriter) -> None:
        if self._pool.get(addr) is writer:
            del self._pool[addr]
        watcher = self._pool_watchers.pop(addr, None)
        if watcher is not None and watcher is not asyncio.current_task():
            watcher.cancel()

    async def _watch_eof(
        self,
        addr: Tuple[str, int],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while await reader.read(65536):
                pass  # inbound bytes on an outbound pipe are ignored
        except OSError:
            pass
        except asyncio.CancelledError:
            return
        self._evict(addr, writer)
        await self._close_writer(writer)

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:  # pragma: no cover - platform dependent
            pass

    async def aclose(self) -> None:
        """Close every pooled connection (no-op for the ephemeral mode)."""
        watchers, self._pool_watchers = list(self._pool_watchers.values()), {}
        for watcher in watchers:
            watcher.cancel()
        writers, self._pool = list(self._pool.values()), {}
        for writer in writers:
            await self._close_writer(writer)

    def now(self) -> float:
        """Wall-clock milliseconds (monotonic), matching the simulator's unit."""
        return self._event_loop().time() * 1000.0

    def schedule(self, delay_ms: float, callback: Callable[[], None]):
        handle = self._event_loop().call_later(delay_ms / 1000.0, callback)

        class _Handle:
            def cancel(self_inner) -> None:
                handle.cancel()

        return _Handle()
