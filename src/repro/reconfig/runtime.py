"""Asyncio hosting for the epoch coordinator.

The coordinator logic itself (:class:`~repro.reconfig.coordinator.EpochCoordinator`)
is transport-agnostic; this module gives it a network identity in the asyncio
runtime: a TCP server (like :class:`~repro.runtime.node.GroupServer`) that
feeds incoming frames to ``coordinator.on_message`` and an
:class:`~repro.runtime.transport.AsyncioTransport` for its outbound control
envelopes and timers.  Together with the codec entries for the epoch control
envelopes, this makes a live overlay switch work over real sockets exactly as
it does in the simulator.
"""

from __future__ import annotations

import asyncio
from typing import Hashable, Optional, Tuple

from ..runtime.codec import CodecError, read_frame
from ..runtime.transport import AddressBook, AsyncioTransport
from .coordinator import EpochCoordinator, SwitchRecord
from .group import ReconfigurableFlexCastProtocol
from .monitor import WorkloadMonitor
from .planner import Planner


class ReconfigCoordinatorServer:
    """An :class:`EpochCoordinator` listening on a localhost TCP port."""

    def __init__(
        self,
        protocol: ReconfigurableFlexCastProtocol,
        addresses: AddressBook,
        node_id: Hashable = "reconfig-coordinator",
        host: str = "127.0.0.1",
        port: int = 0,
        monitor: Optional[WorkloadMonitor] = None,
        planner: Optional[Planner] = None,
        check_interval_ms: float = 500.0,
        quiesce_interval_ms: float = 50.0,
    ) -> None:
        self.node_id = node_id
        self.host = host
        self.port = port
        self.transport = AsyncioTransport(node_id=node_id, addresses=addresses)
        self.coordinator = EpochCoordinator(
            node_id=node_id,
            transport=self.transport,
            protocol=protocol,
            monitor=monitor,
            planner=planner,
            check_interval_ms=check_interval_ms,
            quiesce_interval_ms=quiesce_interval_ms,
        )
        self._server: Optional[asyncio.AbstractServer] = None

    # ----------------------------------------------------------------- server
    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self.transport.register_address(self.node_id, self.host, self.port)
        return self.host, self.port

    async def stop(self) -> None:
        self.coordinator.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    sender, envelope = await read_frame(reader)
                except (asyncio.IncompleteReadError, CodecError):
                    break
                self.coordinator.on_message(sender, envelope)
        finally:
            writer.close()

    # ------------------------------------------------------------ convenience
    async def switch_and_wait(
        self, new_order, timeout_s: float = 10.0, poll_s: float = 0.01
    ) -> SwitchRecord:
        """Trigger a manual switch and wait until every group resumed."""
        record = self.coordinator.trigger_switch(new_order)
        deadline = asyncio.get_event_loop().time() + timeout_s
        while record.completed_ms is None:
            if asyncio.get_event_loop().time() > deadline:
                raise TimeoutError(
                    f"epoch switch did not complete (state={self.coordinator.state})"
                )
            await asyncio.sleep(poll_s)
        return record
