"""Workload-shift experiment: the reconfiguration subsystem end to end.

Deploys reconfigurable FlexCast on a synthetic clustered WAN, runs a two-phase
workload whose client population moves mid-run
(:class:`repro.experiments.scenarios.WorkloadShiftScenario`), and — when
reconfiguration is enabled — lets the monitor → planner → epoch-coordinator
loop detect the shift and live-switch the overlay.  Running the same scenario
with ``with_reconfig=False`` gives the "stay on the stale overlay" baseline
the acceptance criterion compares against.

Everything is deterministic for a given scenario (zero network jitter; all
randomness is seeded), so the runs are directly comparable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..checker.properties import CheckReport, check_epochs, check_trace
from ..core.garbage import FlushCoordinator
from ..core.message import ClientRequest, ClientResponse, Message
from ..experiments.scenarios import TrafficPattern, WorkloadShiftScenario
from ..metrics import LatencyCollector
from ..obs import Observability
from ..overlay.base import GroupId
from ..overlay.cdag import CDagOverlay
from ..protocols.base import RecordingSink
from ..sim.events import EventLoop
from ..sim.latencies import clustered_latency_matrix
from ..sim.network import Network
from ..sim.transport import SimTransport
from ..workload.clients import ClosedLoopClient, CompletedTransaction
from ..workload.gtpcc import Transaction
from ..workload.tpcc import TransactionType
from .coordinator import EpochCoordinator, SwitchRecord
from .group import ReconfigurableFlexCastProtocol
from .monitor import WorkloadMonitor
from .planner import Planner

COORDINATOR_NODE = "reconfig-coordinator"


class PatternWorkload:
    """Duck-typed workload (same interface as ``GTPCCWorkload``) generating
    multicasts from a fixed :class:`TrafficPattern` per home."""

    def __init__(self, patterns: Dict[GroupId, TrafficPattern]) -> None:
        self._patterns = patterns

    def next_transaction(self, home: GroupId, rng: random.Random) -> Transaction:
        pattern = self._patterns[home]
        partners = list(pattern.partners)
        count = min(pattern.num_partners, len(partners))
        chosen = rng.sample(partners, count) if count else []
        return Transaction(
            txn_type=TransactionType.NEW_ORDER,
            home=home,
            destinations=frozenset({home, *chosen}),
            payload_bytes=pattern.payload_bytes,
        )


@dataclass
class WorkloadShiftResult:
    """Everything measured during one workload-shift run."""

    scenario: WorkloadShiftScenario
    with_reconfig: bool
    transactions: List[CompletedTransaction]
    deliveries: RecordingSink
    #: Per-group delivery sequence annotated with the delivering epoch.
    delivery_epochs: Dict[GroupId, List[Tuple[str, int]]]
    #: All messages multicast during the run (clients + epoch barriers).
    messages: List[Message]
    switches: List[SwitchRecord]
    barriers: Dict[str, int]
    final_order: Tuple[GroupId, ...]
    group_stats: Dict[GroupId, Dict[str, int]]
    trace_report: CheckReport = field(default_factory=CheckReport)
    epoch_report: CheckReport = field(default_factory=CheckReport)

    # ------------------------------------------------------------------ windows
    def transactions_between(
        self, start_ms: float, end_ms: Optional[float] = None
    ) -> List[CompletedTransaction]:
        return [
            t
            for t in self.transactions
            if t.completed_at >= start_ms
            and (end_ms is None or t.completed_at < end_ms)
        ]

    def mean_delivery_latency(
        self, start_ms: float = 0.0, end_ms: Optional[float] = None
    ) -> float:
        """Mean per-destination response latency over a completion window.

        This is the paper's latency metric (the 1st/2nd/... response each
        client records), averaged over every (transaction, destination) pair.
        """
        samples = [
            latency
            for t in self.transactions_between(start_ms, end_ms)
            for latency in t.latencies_by_arrival
        ]
        return sum(samples) / len(samples) if samples else float("nan")

    def mean_completion_latency(
        self, start_ms: float = 0.0, end_ms: Optional[float] = None
    ) -> float:
        samples = [
            t.completed_at - t.submitted_at
            for t in self.transactions_between(start_ms, end_ms)
        ]
        return sum(samples) / len(samples) if samples else float("nan")

    @property
    def switched(self) -> bool:
        return any(s.completed_ms is not None for s in self.switches)

    @property
    def switch_duration_ms(self) -> Optional[float]:
        """Cost of the first completed switch (prepare -> all groups resumed)."""
        for record in self.switches:
            if record.completed_ms is not None:
                return record.duration_ms
        return None

    def raise_if_unsafe(self) -> None:
        self.trace_report.raise_if_failed()
        self.epoch_report.raise_if_failed()


def run_workload_shift(
    scenario: WorkloadShiftScenario, with_reconfig: bool = True
) -> WorkloadShiftResult:
    """Run one workload-shift experiment (deterministic per scenario)."""
    latencies = clustered_latency_matrix(
        scenario.cluster_sizes,
        intra_ms=scenario.intra_ms,
        inter_ms=scenario.inter_ms,
    )
    protocol = ReconfigurableFlexCastProtocol(CDagOverlay(list(scenario.initial_order)))
    loop = EventLoop()
    network = Network(loop, latencies, jitter_ms=0.0, seed=scenario.seed)

    recording = RecordingSink(clock=lambda: loop.now)
    delivery_epochs: Dict[GroupId, List[Tuple[str, int]]] = {
        gid: [] for gid in protocol.groups
    }
    groups: Dict[GroupId, object] = {}

    def sink(group_id: GroupId, message: Message) -> None:
        recording(group_id, message)
        delivery_epochs[group_id].append((message.msg_id, groups[group_id].epoch))
        sender = message.sender
        if network.is_registered(sender):
            network.send(
                group_id, sender, ClientResponse(msg_id=message.msg_id, group=group_id)
            )

    for gid in protocol.groups:
        group = protocol.create_group(gid, SimTransport(network, gid), sink)
        groups[gid] = group

        def handler(sender, envelope, group=group):
            group.on_envelope(sender, envelope)

        network.register(gid, site=gid, handler=handler)

    # ------------------------------------------------------------ observation
    obs = Observability()
    collector = LatencyCollector()
    collector.attach_obs(obs)
    monitor = WorkloadMonitor(window_ms=scenario.monitor_window_ms)
    monitor.attach(obs)

    # ---------------------------------------------------------------- clients
    clients: List[ClosedLoopClient] = []

    def build_cohort(
        patterns: Tuple[TrafficPattern, ...],
        label: str,
        seed_offset: int,
        start_ms: float,
        stop_ms: float,
    ) -> None:
        workload = PatternWorkload({p.home: p for p in patterns})
        index = 0
        for pattern in patterns:
            for _ in range(pattern.clients):
                client = ClosedLoopClient(
                    client_id=f"client-{label}-{index}",
                    home=pattern.home,
                    protocol=protocol,
                    workload=workload,
                    network=network,
                    rng=random.Random(scenario.seed * 100_003 + seed_offset + index),
                    group_node=lambda g: g,
                    on_complete=collector.record,
                    stop_after_ms=stop_ms,
                    think_time_ms=scenario.think_time_ms,
                )
                clients.append(client)
                if start_ms <= 0:
                    client.start()
                else:
                    loop.schedule(start_ms, client.start)
                index += 1

    build_cohort(
        scenario.phase1, "p1", seed_offset=0, start_ms=0.0, stop_ms=scenario.shift_ms
    )
    build_cohort(
        scenario.phase2,
        "p2",
        seed_offset=10_000,
        start_ms=scenario.shift_ms,
        stop_ms=scenario.duration_ms,
    )

    # --------------------------------------------------- garbage collection
    flush_coordinator: Optional[FlushCoordinator] = None
    flush_messages: List[Message] = []
    if scenario.gc_interval_ms:
        flush_node = "flush-coordinator"
        network.register(
            flush_node, site=latencies.centroid_site(), handler=lambda s, p: None
        )

        def submit_flush(message: Message) -> None:
            flush_messages.append(message)
            entry = protocol.entry_groups(message)[0]
            network.send(flush_node, entry, ClientRequest(message=message))

        flush_coordinator = FlushCoordinator(
            loop,
            groups=list(protocol.groups),
            submit=submit_flush,
            interval_ms=scenario.gc_interval_ms,
            sender_id=flush_node,
        )
        flush_coordinator.start()

    # ------------------------------------------------------------- coordinator
    coordinator: Optional[EpochCoordinator] = None
    if with_reconfig:
        coordinator = EpochCoordinator(
            node_id=COORDINATOR_NODE,
            transport=SimTransport(network, COORDINATOR_NODE),
            protocol=protocol,
            monitor=monitor,
            planner=Planner(
                latencies,
                min_samples=scenario.min_samples,
                improvement_threshold=scenario.improvement_threshold,
            ),
            check_interval_ms=scenario.check_interval_ms,
        )
        network.register(
            COORDINATOR_NODE,
            site=latencies.centroid_site(),
            handler=coordinator.on_message,
        )
        coordinator.start()

    # --------------------------------------------------------------------- run
    loop.run(until=scenario.duration_ms)
    for client in clients:
        client.stop()
    if flush_coordinator is not None:
        flush_coordinator.stop()
    if coordinator is not None:
        coordinator.stop()
    loop.run_until_idle()

    # ----------------------------------------------------------------- results
    messages: List[Message] = list(flush_messages)
    for client in clients:
        assert not client._mc.inflight, "closed-loop client did not drain"
        messages.extend(call.message for call in client._mc.completed)
    barriers: Dict[str, int] = {}
    switches: List[SwitchRecord] = []
    if coordinator is not None:
        messages.extend(coordinator.barrier_messages)
        barriers = dict(coordinator.barriers)
        switches = list(coordinator.switches)

    result = WorkloadShiftResult(
        scenario=scenario,
        with_reconfig=with_reconfig,
        transactions=list(collector.transactions),
        deliveries=recording,
        delivery_epochs=delivery_epochs,
        messages=messages,
        switches=switches,
        barriers=barriers,
        final_order=tuple(protocol.overlay.order),
        group_stats={gid: dict(groups[gid].stats) for gid in protocol.groups},
        trace_report=check_trace(recording, messages, expect_all_delivered=True),
        epoch_report=check_epochs(delivery_epochs, barriers),
    )
    return result
