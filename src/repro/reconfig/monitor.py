"""Sliding-window workload observation for overlay re-planning.

The monitor ingests completed transactions from the metrics pipeline
(:meth:`repro.metrics.collector.LatencyCollector.add_observer`) and maintains,
over a sliding window of virtual time:

* ``(home, destination-set)`` multiplicities — the quantity the planner's
  cost model is evaluated against;
* pairwise traffic weights — which group pairs actually communicate (drives
  the traffic-weighted nearest-neighbour candidate order);
* per-home weights — which groups the clients issuing traffic live at
  (drives the home-ranked candidate order).

All counters are maintained incrementally on observe/evict, so a snapshot is
O(distinct keys), not O(window length).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import combinations
from typing import Deque, Dict, FrozenSet, Iterable, Optional, Tuple

from ..overlay.base import GroupId


@dataclass(frozen=True)
class WorkloadSnapshot:
    """Immutable view of the window the planner evaluates candidates against."""

    #: (home, destination set) -> number of observations in the window.
    traffic: Tuple[Tuple[Tuple[GroupId, FrozenSet[GroupId]], int], ...]
    #: Unordered group pair -> number of messages addressed to both.
    pair_weights: Tuple[Tuple[FrozenSet[GroupId], int], ...]
    #: Home group -> number of transactions issued from it.
    home_weights: Tuple[Tuple[GroupId, int], ...]
    window_ms: float
    sample_count: int

    def traffic_dict(self) -> Dict[Tuple[GroupId, FrozenSet[GroupId]], int]:
        return dict(self.traffic)

    def pair_weight_dict(self) -> Dict[FrozenSet[GroupId], float]:
        return {pair: float(count) for pair, count in self.pair_weights}

    def home_weight_dict(self) -> Dict[GroupId, float]:
        return {home: float(count) for home, count in self.home_weights}


class WorkloadMonitor:
    """Sliding-window destination-set and pairwise-traffic statistics."""

    def __init__(self, window_ms: float = 5_000.0) -> None:
        if window_ms <= 0:
            raise ValueError("window must be positive")
        self.window_ms = float(window_ms)
        #: (observed_at, home, dst) in observation order.
        self._entries: Deque[Tuple[float, GroupId, FrozenSet[GroupId]]] = deque()
        self._traffic: Dict[Tuple[GroupId, FrozenSet[GroupId]], int] = {}
        self._pairs: Dict[FrozenSet[GroupId], int] = {}
        self._homes: Dict[GroupId, int] = {}
        self.total_observed = 0

    # -------------------------------------------------------------- ingestion
    def observe(self, home: GroupId, destinations: Iterable[GroupId], at: float) -> None:
        """Record one multicast: issued from ``home`` to ``destinations`` at
        virtual time ``at`` (monotonically non-decreasing across calls)."""
        dst = frozenset(destinations)
        if not dst:
            return
        self.total_observed += 1
        self._entries.append((at, home, dst))
        key = (home, dst)
        self._traffic[key] = self._traffic.get(key, 0) + 1
        self._homes[home] = self._homes.get(home, 0) + 1
        for a, b in combinations(sorted(dst), 2):
            pair = frozenset((a, b))
            self._pairs[pair] = self._pairs.get(pair, 0) + 1
        self._evict(at)

    def observe_transaction(self, txn) -> None:
        """Observer hook for :class:`~repro.metrics.collector.LatencyCollector`.

        Transactions that predate the ``destination_set`` field (or carry an
        empty one) are skipped rather than guessed at.
        """
        dst = getattr(txn, "destination_set", frozenset())
        if dst:
            self.observe(txn.home, dst, txn.completed_at)

    def _evict(self, now: float) -> None:
        horizon = now - self.window_ms
        entries = self._entries
        while entries and entries[0][0] < horizon:
            _, home, dst = entries.popleft()
            key = (home, dst)
            remaining = self._traffic[key] - 1
            if remaining:
                self._traffic[key] = remaining
            else:
                del self._traffic[key]
            remaining_home = self._homes[home] - 1
            if remaining_home:
                self._homes[home] = remaining_home
            else:
                del self._homes[home]
            for a, b in combinations(sorted(dst), 2):
                pair = frozenset((a, b))
                remaining_pair = self._pairs[pair] - 1
                if remaining_pair:
                    self._pairs[pair] = remaining_pair
                else:
                    del self._pairs[pair]

    # --------------------------------------------------------------- querying
    @property
    def sample_count(self) -> int:
        """Observations currently inside the window."""
        return len(self._entries)

    def snapshot(self, now: Optional[float] = None) -> WorkloadSnapshot:
        """Freeze the current window (evicting up to ``now`` first)."""
        if now is not None:
            self._evict(now)
        return WorkloadSnapshot(
            traffic=tuple(self._traffic.items()),
            pair_weights=tuple(self._pairs.items()),
            home_weights=tuple(self._homes.items()),
            window_ms=self.window_ms,
            sample_count=len(self._entries),
        )

    def clear(self) -> None:
        self._entries.clear()
        self._traffic.clear()
        self._pairs.clear()
        self._homes.clear()
