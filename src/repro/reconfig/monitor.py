"""Sliding-window workload observation for overlay re-planning.

The monitor consumes the observability hub's delivery feed
(:meth:`repro.obs.Observability.emit_delivery`, emitted by
:class:`~repro.metrics.LatencyCollector` for every completed
transaction) and maintains, over a sliding window of virtual time:

* ``(home, destination-set)`` multiplicities — the quantity the planner's
  cost model is evaluated against;
* pairwise traffic weights — which group pairs actually communicate (drives
  the traffic-weighted nearest-neighbour candidate order);
* per-home weights — which groups the clients issuing traffic live at
  (drives the home-ranked candidate order).

The window mechanics live in :class:`repro.obs.window.SlidingWindow`: one
observation increments its traffic cell, its home cell and every pair cell
at once, counts are maintained incrementally, and eviction is O(expired) —
so a snapshot stays O(distinct keys), not O(window length).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..obs import Observability
from ..obs.window import SlidingWindow
from ..overlay.base import GroupId


@dataclass(frozen=True)
class WorkloadSnapshot:
    """Immutable view of the window the planner evaluates candidates against."""

    #: (home, destination set) -> number of observations in the window.
    traffic: Tuple[Tuple[Tuple[GroupId, FrozenSet[GroupId]], int], ...]
    #: Unordered group pair -> number of messages addressed to both.
    pair_weights: Tuple[Tuple[FrozenSet[GroupId], int], ...]
    #: Home group -> number of transactions issued from it.
    home_weights: Tuple[Tuple[GroupId, int], ...]
    window_ms: float
    sample_count: int

    def traffic_dict(self) -> Dict[Tuple[GroupId, FrozenSet[GroupId]], int]:
        return dict(self.traffic)

    def pair_weight_dict(self) -> Dict[FrozenSet[GroupId], float]:
        return {pair: float(count) for pair, count in self.pair_weights}

    def home_weight_dict(self) -> Dict[GroupId, float]:
        return {home: float(count) for home, count in self.home_weights}


class WorkloadMonitor:
    """Sliding-window destination-set and pairwise-traffic statistics."""

    def __init__(self, window_ms: float = 5_000.0) -> None:
        self.window_ms = float(window_ms)
        self._window = SlidingWindow(window_ms)

    # -------------------------------------------------------------- ingestion
    def attach(self, obs: Observability) -> None:
        """Subscribe to ``obs``'s delivery feed.

        Every :meth:`~repro.obs.Observability.emit_delivery` (one completed
        multicast) becomes one :meth:`observe` call.
        """
        obs.add_delivery_listener(self._on_delivery)

    def _on_delivery(
        self, home: GroupId, destinations: FrozenSet[GroupId], at_ms: float
    ) -> None:
        self.observe(home, destinations, at_ms)

    def observe(self, home: GroupId, destinations: Iterable[GroupId], at: float) -> None:
        """Record one multicast: issued from ``home`` to ``destinations`` at
        virtual time ``at`` (monotonically non-decreasing across calls)."""
        dst = frozenset(destinations)
        if not dst:
            return
        keys: List[object] = [("traffic", home, dst), ("home", home)]
        keys.extend(
            ("pair", frozenset((a, b))) for a, b in combinations(sorted(dst), 2)
        )
        self._window.observe(at, keys)
        self._window.evict(at)

    # --------------------------------------------------------------- querying
    @property
    def sample_count(self) -> int:
        """Observations currently inside the window."""
        return self._window.sample_count

    @property
    def total_observed(self) -> int:
        """Observations ever recorded (monotonic, never evicted)."""
        return self._window.total_observed

    def snapshot(self, now: Optional[float] = None) -> WorkloadSnapshot:
        """Freeze the current window (evicting up to ``now`` first)."""
        if now is not None:
            self._window.evict(now)
        traffic: List[Tuple[Tuple[GroupId, FrozenSet[GroupId]], int]] = []
        pairs: List[Tuple[FrozenSet[GroupId], int]] = []
        homes: List[Tuple[GroupId, int]] = []
        for key, count in self._window.items().items():
            tag = key[0]
            if tag == "traffic":
                traffic.append(((key[1], key[2]), count))
            elif tag == "pair":
                pairs.append((key[1], count))
            else:
                homes.append((key[1], count))
        return WorkloadSnapshot(
            traffic=tuple(traffic),
            pair_weights=tuple(pairs),
            home_weights=tuple(homes),
            window_ms=self.window_ms,
            sample_count=self._window.sample_count,
        )

    def clear(self) -> None:
        self._window.clear()
