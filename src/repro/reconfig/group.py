"""Epoch-aware FlexCast group and protocol.

:class:`ReconfigurableFlexCastGroup` extends the base FlexCast logic with the
group-side half of the epoch state machine (the coordinator side lives in
:mod:`repro.reconfig.coordinator`):

``NORMAL`` --EpochPrepare--> ``QUIESCING`` --EpochSwitch--> ``NORMAL``

* **QUIESCING** — new (non-flush) client requests are parked; in-flight
  protocol envelopes of the current epoch keep being processed so open
  dependencies drain.  The group answers :class:`QuiesceQuery` probes with its
  local drain state plus cumulative sent/received envelope counters.
* **Switch** — :meth:`FlexCastGroup.install_overlay` swaps the overlay under
  the new epoch; parked client requests are re-routed to their (possibly
  different) lca under the new rank order, and envelopes that arrived early
  from already-switched peers are replayed.
* **Stale-epoch bounce** — an envelope stamped with an older epoch than the
  receiver's is never processed (its rank assumptions are void); the receiver
  bounces the application message back so the sender re-submits it through
  the current overlay.  Re-submission is idempotent: requests for messages a
  group already delivered are dropped.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Set, Tuple

from ..core.flexcast import FlexCastGroup, FlexCastProtocol
from ..core.message import (
    ClientRequest,
    Envelope,
    EpochBounce,
    EpochPrepare,
    EpochPrepareAck,
    EpochSwitch,
    EpochSwitchAck,
    FlexCastAck,
    FlexCastMsg,
    FlexCastNotif,
    FlexCastTsPropose,
    QuiesceQuery,
    QuiesceReply,
)
from ..overlay.base import GroupId
from ..overlay.cdag import CDagOverlay
from ..protocols.base import DeliverySink
from ..sim.transport import Transport

#: Envelope kinds whose epoch stamp gates processing (rank-order dependent).
#: :class:`FlexCastTsPropose` is deliberately absent: timestamp proposals
#: depend only on a message's destination set, never on the overlay's rank
#: order, so they are processed in every epoch state — while quiescing, from
#: peers that already switched, and from stragglers that have not.  Bouncing
#: or parking them would only delay the convoy drain the switch waits for.
_EPOCH_STAMPED = (FlexCastMsg, FlexCastAck, FlexCastNotif)


class ReconfigurableFlexCastGroup(FlexCastGroup):
    """FlexCast group that can live-switch overlays under an epoch protocol."""

    def __init__(
        self,
        group_id: GroupId,
        overlay: CDagOverlay,
        transport: Transport,
        sink: DeliverySink,
        pivot_guard: bool = True,
        hybrid: bool = False,
        conflict_shapes: Optional[Sequence[Set[GroupId]]] = None,
    ) -> None:
        super().__init__(
            group_id,
            overlay,
            transport,
            sink,
            pivot_guard=pivot_guard,
            hybrid=hybrid,
            conflict_shapes=conflict_shapes,
        )
        #: True between EpochPrepare and EpochSwitch (client intake parked).
        self.quiescing = False
        #: The announced epoch barrier — the only flush intake stays open for.
        self._pending_barrier_id: str = ""
        #: Client requests received while quiescing, replayed after the switch.
        self._parked_requests: List[Tuple[Hashable, ClientRequest]] = []
        #: Envelopes from peers that already switched to a later epoch.
        self._future_envelopes: List[Tuple[Hashable, Envelope]] = []
        self.stats.update(
            {
                "requests_parked": 0,
                "requests_rerouted": 0,
                "stale_bounced": 0,
                "future_parked": 0,
                "epoch_switches": 0,
            }
        )

    # ------------------------------------------------------------ dispatching
    def on_envelope(self, sender: Hashable, envelope: Envelope) -> None:
        if isinstance(envelope, EpochPrepare):
            self._on_epoch_prepare(envelope)
            return
        if isinstance(envelope, QuiesceQuery):
            self._on_quiesce_query(envelope)
            return
        if isinstance(envelope, EpochSwitch):
            self._on_epoch_switch(envelope)
            return
        if isinstance(envelope, EpochBounce):
            self._on_epoch_bounce(sender, envelope)
            return
        if isinstance(envelope, ClientRequest):
            self._on_request(sender, envelope)
            return
        if isinstance(envelope, FlexCastTsPropose):
            # Rank-independent (see _EPOCH_STAMPED): processed unconditionally
            # so convoy-blocked messages keep deciding while the drain runs.
            super().on_envelope(sender, envelope)
            return
        if isinstance(envelope, _EPOCH_STAMPED):
            if envelope.epoch > self.epoch:
                # A peer already switched; we have not seen our EpochSwitch
                # yet.  Processing under the old rank order would be wrong, so
                # hold the envelope until the switch arrives.
                self.stats["future_parked"] += 1
                self._future_envelopes.append((sender, envelope))
                return
            if envelope.epoch < self.epoch:
                # Stale traffic from before the switch (only reachable when a
                # sender raced the drain): its rank assumptions are void.
                # Bounce the application message back for re-routing.  The
                # envelope still left the wire here, so it must count as
                # received — otherwise the global sent/received totals the
                # next drain compares would stay unequal forever.
                self.stats["stale_bounced"] += 1
                if isinstance(envelope, FlexCastMsg):
                    self.stats["msgs_received"] += 1
                elif isinstance(envelope, FlexCastAck):
                    self.stats["acks_received"] += 1
                else:
                    self.stats["notifs_received"] += 1
                self.send(
                    sender,
                    EpochBounce(
                        message=envelope.message,
                        epoch=self.epoch,
                        from_group=self.group_id,
                    ),
                )
                return
        super().on_envelope(sender, envelope)

    # --------------------------------------------------------- client requests
    def _on_request(self, sender: Hashable, envelope: ClientRequest) -> None:
        message = envelope.message
        if self.has_delivered(message.msg_id) or self.history.is_forgotten(
            message.msg_id
        ):
            # Idempotent re-route / re-submission of a resolved message.
            # ``delivered_in_g`` is not enough here: the epoch barrier's GC
            # prunes it, while the base class's delivery record and the
            # history's forgotten set are permanent.
            return
        if self.quiescing and message.msg_id != self._pending_barrier_id:
            # Intake is closed while the old epoch drains; only the announced
            # epoch barrier may pass (it must, or the drain would deadlock).
            # Any other message — including ordinary GC flushes — parks, else
            # it could slip in after the drain completed and end up delivered
            # under two different epochs.
            self.stats["requests_parked"] += 1
            self._parked_requests.append((sender, envelope))
            return
        lca = self.overlay.lca(message.dst)
        if lca != self.group_id:
            # The client routed with a stale overlay view; forward to the lca
            # of the current epoch instead of rejecting.
            self.stats["requests_rerouted"] += 1
            self.send(lca, envelope)
            return
        super().on_envelope(sender, envelope)

    # ------------------------------------------------------------- epoch hooks
    def _on_epoch_prepare(self, envelope: EpochPrepare) -> None:
        if envelope.new_epoch == self.epoch + 1:
            self.quiescing = True
            self._pending_barrier_id = envelope.barrier_id
        # Ack unconditionally (idempotent; a duplicate prepare re-acks).
        self.send(
            envelope.reply_to,
            EpochPrepareAck(new_epoch=envelope.new_epoch, group=self.group_id),
        )

    def _on_quiesce_query(self, envelope: QuiesceQuery) -> None:
        stats = self.stats
        self.send(
            envelope.reply_to,
            QuiesceReply(
                new_epoch=envelope.new_epoch,
                round_id=envelope.round_id,
                group=self.group_id,
                quiescent=self.is_quiescent(),
                # has_delivered, not delivered_in_g: a later periodic GC
                # flush prunes the latter, and the barrier must stay
                # observably delivered for the whole drain.
                barrier_delivered=self.has_delivered(envelope.barrier_id),
                envelopes_sent=stats["msgs_sent"]
                + stats["acks_sent"]
                + stats["notifs_sent"],
                envelopes_received=stats["msgs_received"]
                + stats["acks_received"]
                + stats["notifs_received"],
            ),
        )

    def _on_epoch_switch(self, envelope: EpochSwitch) -> None:
        # Only the immediately next epoch is installable: a jump would mean
        # a drain this group never participated in (single-coordinator
        # deployments cannot produce one; refuse rather than guess).
        if envelope.new_epoch == self.epoch + 1:
            self.install_overlay(CDagOverlay(list(envelope.order)), envelope.new_epoch)
            self.quiescing = False
            self._pending_barrier_id = ""
            self.stats["epoch_switches"] += 1
        self.send(
            envelope.reply_to,
            EpochSwitchAck(epoch=self.epoch, group=self.group_id),
        )
        if envelope.new_epoch == self.epoch:
            # Envelopes from peers that switched before us, in arrival order.
            future, self._future_envelopes = self._future_envelopes, []
            for sender, early in future:
                self.on_envelope(sender, early)
            # Parked client intake, re-routed under the new rank order.
            parked, self._parked_requests = self._parked_requests, []
            for sender, request in parked:
                self._on_request(sender, request)

    def _on_epoch_bounce(self, sender: Hashable, envelope: EpochBounce) -> None:
        request = ClientRequest(message=envelope.message)
        if envelope.epoch > self.epoch:
            # We are the stale side; park until our own switch, then re-route.
            self.stats["requests_parked"] += 1
            self._parked_requests.append((sender, request))
            return
        self._on_request(sender, request)


class ReconfigurableFlexCastProtocol(FlexCastProtocol):
    """FlexCast deployment whose overlay can be swapped at runtime.

    ``overlay`` always reflects the *committed* epoch: the coordinator only
    swaps it after every group acknowledged the switch, so clients that route
    through :meth:`entry_groups` are at most one epoch behind — and groups
    re-route such stragglers to the correct lca.
    """

    name = "FlexCast (reconfigurable)"

    def create_group(
        self, group_id: GroupId, transport: Transport, sink: DeliverySink
    ) -> ReconfigurableFlexCastGroup:
        return ReconfigurableFlexCastGroup(
            group_id,
            self.overlay,
            transport,
            sink,
            pivot_guard=self.pivot_guard,
            hybrid=self.hybrid,
            conflict_shapes=self.conflict_shapes,
        )

    def install_overlay(self, overlay: CDagOverlay) -> None:
        """Commit a new overlay for client routing (coordinator use only)."""
        if not isinstance(overlay, CDagOverlay):
            raise TypeError("FlexCast requires a complete-DAG overlay")
        if set(overlay.groups) != set(self.overlay.groups):
            raise ValueError("reconfiguration must preserve the group set")
        self.overlay = overlay
