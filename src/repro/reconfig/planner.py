"""Workload-aware C-DAG re-planning.

The planner re-runs the overlay construction of :mod:`repro.overlay.builders`
— the paper's pure-latency nearest-neighbour chains plus two workload-aware
variants — against the *observed* workload and keeps the rank order with the
lowest predicted per-destination delivery latency.

The cost model mirrors how FlexCast actually delivers a multicast on a C-DAG
(paper §4.1/§4.2): the client submits to the lca (the lowest-ranked
destination), the lca delivers immediately and forwards to the remaining
destinations, and a non-lca destination additionally waits for the ack of
every lower-ranked destination before delivering.  The predicted cost of one
``(home, dst)`` observation is the mean, over destinations, of
``delivery_time(g) + latency(g, home)`` — i.e. the per-destination response
latencies the paper plots in Figures 5/7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..overlay.base import GroupId
from ..overlay.builders import (
    home_ranked_order,
    nearest_neighbour_order,
    traffic_weighted_order,
)
from ..sim.latencies import LatencyMatrix
from .monitor import WorkloadSnapshot


@dataclass(frozen=True)
class ReconfigurationPlan:
    """A proposed overlay switch, with its predicted payoff."""

    order: Tuple[GroupId, ...]
    predicted_cost_ms: float
    current_cost_ms: float
    samples: int

    @property
    def improvement(self) -> float:
        """Fractional predicted latency reduction (0.25 == 25% faster)."""
        if self.current_cost_ms <= 0:
            return 0.0
        return (self.current_cost_ms - self.predicted_cost_ms) / self.current_cost_ms


class Planner:
    """Evaluates candidate rank orders against the observed workload.

    Parameters
    ----------
    latencies:
        One-way latency matrix the deployment runs on.
    min_samples:
        Do not propose anything until the window holds at least this many
        observations (prevents re-planning on noise).
    improvement_threshold:
        Minimum fractional predicted improvement required to propose a switch
        (a switch has a real cost: the drain stalls clients for roughly one
        WAN round trip plus the barrier delivery).
    """

    def __init__(
        self,
        latencies: LatencyMatrix,
        min_samples: int = 20,
        improvement_threshold: float = 0.10,
        traffic_alpha: float = 4.0,
    ) -> None:
        self.latencies = latencies
        self.min_samples = int(min_samples)
        self.improvement_threshold = float(improvement_threshold)
        self.traffic_alpha = float(traffic_alpha)

    # -------------------------------------------------------------- cost model
    def predicted_cost(
        self,
        order: Sequence[GroupId],
        workload: Dict[Tuple[GroupId, FrozenSet[GroupId]], int],
    ) -> float:
        """Weighted mean predicted per-destination response latency (ms)."""
        rank = {g: r for r, g in enumerate(order)}
        lat = self.latencies.latency
        total = 0.0
        weight_sum = 0
        for (home, dst), weight in workload.items():
            if not all(g in rank for g in dst):
                continue
            ranked = sorted(dst, key=rank.__getitem__)
            lca = ranked[0]
            submit = lat(home, lca)
            cost = submit + lat(lca, home)  # the lca delivers on arrival
            arrivals: List[Tuple[GroupId, float]] = []
            for g in ranked[1:]:
                deliver = submit + lat(lca, g)
                for h, h_deliver in arrivals:
                    # Strategy (b): g waits for the ack of every lower-ranked
                    # destination h, which h sends when it delivers.
                    deliver = max(deliver, h_deliver + lat(h, g))
                arrivals.append((g, deliver))
                cost += deliver + lat(g, home)
            total += weight * (cost / len(dst))
            weight_sum += weight
        if weight_sum == 0:
            return 0.0
        return total / weight_sum

    # -------------------------------------------------------------- candidates
    def candidate_orders(self, snapshot: WorkloadSnapshot) -> List[List[GroupId]]:
        """Workload-aware and pure-latency candidate rank orders."""
        pair_weights = snapshot.pair_weight_dict()
        home_weights = snapshot.home_weight_dict()
        candidates: List[List[GroupId]] = []
        seen = set()

        def add(order: List[GroupId]) -> None:
            key = tuple(order)
            if key not in seen:
                seen.add(key)
                candidates.append(order)

        add(home_ranked_order(self.latencies, home_weights))
        # Traffic-weighted chains seeded at the busiest homes.
        busiest = sorted(home_weights, key=lambda g: (-home_weights[g], g))[:4]
        for seed in busiest:
            add(
                traffic_weighted_order(
                    self.latencies, pair_weights, seed, alpha=self.traffic_alpha
                )
            )
        # The paper's pure-latency construction from every seed keeps the
        # planner honest when the workload carries no locality signal.
        for seed in range(self.latencies.num_sites):
            add(nearest_neighbour_order(self.latencies, seed))
        return candidates

    # ------------------------------------------------------------------- plan
    def plan(
        self,
        current_order: Sequence[GroupId],
        snapshot: WorkloadSnapshot,
    ) -> Optional[ReconfigurationPlan]:
        """Propose a better overlay, or ``None`` if staying put is right.

        A proposal is returned only when the window has enough samples and the
        best candidate's predicted improvement over the *current* order clears
        the threshold.
        """
        if snapshot.sample_count < self.min_samples:
            return None
        workload = snapshot.traffic_dict()
        if not workload:
            return None
        current_cost = self.predicted_cost(current_order, workload)
        if current_cost <= 0:
            return None
        # The deployment may cover only a subset of the matrix's sites; the
        # candidate builders produce full-site orders, so project each onto
        # the deployed group set (relative ranks are preserved) and discard
        # anything that still is not a permutation of it — a plan must never
        # hand trigger_switch an invalid order.
        group_set = set(current_order)
        best_order: Optional[List[GroupId]] = None
        best_cost = current_cost
        for candidate in self.candidate_orders(snapshot):
            order = [g for g in candidate if g in group_set]
            if set(order) != group_set or order == list(current_order):
                continue
            cost = self.predicted_cost(order, workload)
            if cost < best_cost:
                best_cost = cost
                best_order = order
        if best_order is None:
            return None
        plan = ReconfigurationPlan(
            order=tuple(best_order),
            predicted_cost_ms=best_cost,
            current_cost_ms=current_cost,
            samples=snapshot.sample_count,
        )
        if plan.improvement < self.improvement_threshold:
            return None
        return plan
