"""Epoch-based dynamic overlay reconfiguration.

FlexCast's central claim is that a C-DAG tuned to the workload beats generic
trees — but the paper (and the rest of this repo) builds overlays *offline*
from a latency matrix and never changes them.  This subsystem closes the loop
from observation to overlay:

* :class:`~repro.reconfig.monitor.WorkloadMonitor` — sliding-window
  destination-set and pairwise-traffic statistics, fed from the metrics
  collector's delivery-path hooks;
* :class:`~repro.reconfig.planner.Planner` — re-runs the C-DAG construction
  against the *observed* workload plus latencies and proposes a new overlay
  when the predicted improvement crosses a threshold;
* :class:`~repro.reconfig.coordinator.EpochCoordinator` — executes the safe
  live switch-over: barrier multicast on the old overlay, per-group quiesce,
  history/journal handoff, resume on the new C-DAG under an incremented epoch
  (see DESIGN.md, "Epoch-based overlay reconfiguration");
* :class:`~repro.reconfig.group.ReconfigurableFlexCastGroup` — a FlexCast
  group that understands the epoch protocol (parking, bouncing, switching).

The subsystem is transport-agnostic: the same coordinator and group logic run
inside the discrete-event simulator and the asyncio TCP runtime.
"""

from .coordinator import EpochCoordinator, SwitchRecord
from .group import ReconfigurableFlexCastGroup, ReconfigurableFlexCastProtocol
from .monitor import WorkloadMonitor, WorkloadSnapshot
from .planner import Planner, ReconfigurationPlan

__all__ = [
    "EpochCoordinator",
    "SwitchRecord",
    "ReconfigurableFlexCastGroup",
    "ReconfigurableFlexCastProtocol",
    "WorkloadMonitor",
    "WorkloadSnapshot",
    "Planner",
    "ReconfigurationPlan",
]
