"""Coordinator side of the epoch-based overlay switch.

The coordinator is a distinguished process (like the flush coordinator of
§4.3) driving the epoch state machine:

``IDLE`` → ``PREPARING`` → ``DRAINING`` → ``SWITCHING`` → ``IDLE``

* **PREPARING** — send :class:`EpochPrepare` to every group; each group closes
  client intake for the old epoch and acks.
* **DRAINING** — multicast an **epoch barrier** (a flush message addressed to
  every group) through the old overlay, then probe groups with
  :class:`QuiesceQuery` rounds.  The old epoch is *drained* when, in two
  consecutive rounds, every group (i) reports itself locally quiescent,
  (ii) has delivered the barrier, and (iii) the global sent/received protocol
  envelope totals are equal and unchanged — with reliable channels this means
  no envelope is left on the wire, so no group can receive old-epoch work
  again.  The barrier doubles as a garbage collection flush, so the history
  handed over to the new epoch is already compacted.
* **SWITCHING** — send :class:`EpochSwitch` with the new rank order; groups
  install it (reusing the journal/watermark machinery for the history
  handoff), resume intake, and ack.  Once every group acked, the protocol
  object's overlay is swapped so clients route new messages to the new lca.

The class is transport-agnostic: it only needs a :class:`Transport` (send /
now / schedule) and works unchanged on the discrete-event simulator and the
asyncio TCP runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..core.message import (
    ClientRequest,
    EpochPrepare,
    EpochPrepareAck,
    EpochSwitch,
    EpochSwitchAck,
    Message,
    QuiesceQuery,
    QuiesceReply,
    fresh_message_id,
)
from ..overlay.base import GroupId
from ..overlay.cdag import CDagOverlay
from ..sim.transport import Transport
from .group import ReconfigurableFlexCastProtocol
from .monitor import WorkloadMonitor
from .planner import Planner, ReconfigurationPlan

IDLE = "idle"
PREPARING = "preparing"
DRAINING = "draining"
SWITCHING = "switching"


@dataclass
class SwitchRecord:
    """Timeline and outcome of one completed (or in-flight) epoch switch."""

    epoch: int
    old_order: Tuple[GroupId, ...]
    new_order: Tuple[GroupId, ...]
    started_ms: float
    barrier_id: str = ""
    prepared_ms: Optional[float] = None
    drained_ms: Optional[float] = None
    completed_ms: Optional[float] = None
    quiesce_rounds: int = 0
    plan: Optional[ReconfigurationPlan] = None

    @property
    def duration_ms(self) -> Optional[float]:
        """Total switch-over cost in virtual/wall ms (None while in flight)."""
        if self.completed_ms is None:
            return None
        return self.completed_ms - self.started_ms


class EpochCoordinator:
    """Drives workload-aware overlay reconfiguration for one deployment.

    Parameters
    ----------
    node_id:
        This coordinator's network identity (groups reply to it).
    transport:
        Outbound channel + clock + timers (sim or asyncio).
    protocol:
        The deployment's protocol object; its overlay is swapped on commit.
    monitor / planner:
        Workload observation and re-planning.  Optional: a coordinator without
        them only supports manually triggered switches
        (:meth:`trigger_switch`).
    group_node:
        Maps a group id to its network node id (identity by default).
    """

    def __init__(
        self,
        node_id: Hashable,
        transport: Transport,
        protocol: ReconfigurableFlexCastProtocol,
        monitor: Optional[WorkloadMonitor] = None,
        planner: Optional[Planner] = None,
        group_node: Callable[[GroupId], Hashable] = lambda g: g,
        check_interval_ms: float = 500.0,
        quiesce_interval_ms: float = 50.0,
        max_quiesce_rounds: int = 10_000,
    ) -> None:
        self.node_id = node_id
        self.transport = transport
        self.protocol = protocol
        self.monitor = monitor
        self.planner = planner
        self._group_node = group_node
        self.check_interval_ms = float(check_interval_ms)
        self.quiesce_interval_ms = float(quiesce_interval_ms)
        self.max_quiesce_rounds = int(max_quiesce_rounds)

        self.state = IDLE
        self.epoch = 0
        self.groups: List[GroupId] = list(protocol.groups)
        self.switches: List[SwitchRecord] = []
        #: Barrier messages multicast so far: msg_id -> epoch they closed.
        self.barriers: Dict[str, int] = {}
        #: The barrier Message objects themselves (trace checking needs them).
        self.barrier_messages: List[Message] = []

        self._active = False
        self._timer = None
        self._current: Optional[SwitchRecord] = None
        self._pending_barrier: Optional[Message] = None
        self._pending_acks: Set[GroupId] = set()
        self._round_id = 0
        self._round_replies: Dict[GroupId, QuiesceReply] = {}
        self._previous_round_totals: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------- life cycle
    def start(self) -> None:
        """Begin periodic workload checks (requires monitor and planner)."""
        if self.monitor is None or self.planner is None:
            raise ValueError("auto mode needs a monitor and a planner")
        if self._active:
            return
        self._active = True
        self._timer = self.transport.schedule(self.check_interval_ms, self._tick)

    def stop(self) -> None:
        """Stop periodic checks.  An in-flight switch still runs to completion
        (leaving groups mid-quiesce would wedge the deployment)."""
        self._active = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._active:
            return
        self.maybe_reconfigure()
        self._timer = self.transport.schedule(self.check_interval_ms, self._tick)

    # ------------------------------------------------------------- planning
    def maybe_reconfigure(self) -> Optional[ReconfigurationPlan]:
        """Evaluate the observed workload; kick off a switch if it pays."""
        if self.state != IDLE or self.monitor is None or self.planner is None:
            return None
        snapshot = self.monitor.snapshot(now=self.transport.now())
        plan = self.planner.plan(self.protocol.overlay.order, snapshot)
        if plan is not None:
            self.trigger_switch(plan.order, plan=plan)
        return plan

    def trigger_switch(
        self, new_order: Sequence[GroupId], plan: Optional[ReconfigurationPlan] = None
    ) -> SwitchRecord:
        """Start switching to ``new_order`` (must be a permutation of groups)."""
        if self.state != IDLE:
            raise RuntimeError(f"cannot start a switch while {self.state}")
        if set(new_order) != set(self.groups):
            raise ValueError("new order must be a permutation of the group set")
        new_epoch = self.epoch + 1
        # The barrier is minted now so the prepare can announce its id: while
        # quiescing, groups keep intake open for exactly this one flush.
        barrier = Message.create(
            destinations=self.groups,
            sender=self.node_id,
            payload="epoch-barrier",
            payload_bytes=8,
            # A namespaced id: barrier ids must never collide with
            # application message ids (which may be caller-chosen).
            msg_id=fresh_message_id(f"epoch{new_epoch}-barrier-"),
            is_flush=True,
        )
        record = SwitchRecord(
            epoch=new_epoch,
            old_order=tuple(self.protocol.overlay.order),
            new_order=tuple(new_order),
            started_ms=self.transport.now(),
            barrier_id=barrier.msg_id,
            plan=plan,
        )
        self._pending_barrier = barrier
        self._current = record
        self.switches.append(record)
        self.state = PREPARING
        self._pending_acks = set(self.groups)
        for gid in self.groups:
            self.transport.send(
                self._group_node(gid),
                EpochPrepare(
                    new_epoch=new_epoch,
                    reply_to=self.node_id,
                    barrier_id=barrier.msg_id,
                ),
            )
        return record

    # --------------------------------------------------------------- messages
    def on_message(self, sender: Hashable, payload: object) -> None:
        """Network handler: prepare/quiesce/switch replies from groups."""
        if isinstance(payload, EpochPrepareAck):
            self._on_prepare_ack(payload)
        elif isinstance(payload, QuiesceReply):
            self._on_quiesce_reply(payload)
        elif isinstance(payload, EpochSwitchAck):
            self._on_switch_ack(payload)
        # ClientResponses for the barrier (and anything else) are ignored.

    def _on_prepare_ack(self, ack: EpochPrepareAck) -> None:
        record = self._current
        if self.state != PREPARING or record is None or ack.new_epoch != record.epoch:
            return
        self._pending_acks.discard(ack.group)
        if self._pending_acks:
            return
        # Every group closed intake: multicast the barrier on the old overlay.
        record.prepared_ms = self.transport.now()
        barrier = self._pending_barrier
        assert barrier is not None and barrier.msg_id == record.barrier_id
        self._pending_barrier = None
        self.barriers[barrier.msg_id] = self.epoch
        self.barrier_messages.append(barrier)
        self.state = DRAINING
        self._previous_round_totals = None
        entry = self.protocol.entry_groups(barrier)[0]
        self.transport.send(self._group_node(entry), ClientRequest(message=barrier))
        self._poll_quiesce()

    def _poll_quiesce(self) -> None:
        record = self._current
        if self.state != DRAINING or record is None:
            return
        if record.quiesce_rounds >= self.max_quiesce_rounds:
            raise RuntimeError(
                f"epoch {record.epoch} drain did not converge after "
                f"{record.quiesce_rounds} quiesce rounds"
            )
        self._round_id += 1
        record.quiesce_rounds += 1
        self._round_replies = {}
        for gid in self.groups:
            self.transport.send(
                self._group_node(gid),
                QuiesceQuery(
                    new_epoch=record.epoch,
                    round_id=self._round_id,
                    barrier_id=record.barrier_id,
                    reply_to=self.node_id,
                ),
            )

    def _on_quiesce_reply(self, reply: QuiesceReply) -> None:
        record = self._current
        if (
            self.state != DRAINING
            or record is None
            or reply.new_epoch != record.epoch
            or reply.round_id != self._round_id
        ):
            return
        self._round_replies[reply.group] = reply
        if len(self._round_replies) < len(self.groups):
            return
        replies = self._round_replies.values()
        all_quiet = all(r.quiescent and r.barrier_delivered for r in replies)
        totals = (
            sum(r.envelopes_sent for r in replies),
            sum(r.envelopes_received for r in replies),
        )
        drained = (
            all_quiet
            and totals[0] == totals[1]
            and self._previous_round_totals == totals
        )
        self._previous_round_totals = totals if all_quiet else None
        if drained:
            self._begin_switch()
        else:
            self.transport.schedule(self.quiesce_interval_ms, self._poll_quiesce)

    def _begin_switch(self) -> None:
        record = self._current
        assert record is not None
        record.drained_ms = self.transport.now()
        self.state = SWITCHING
        self._pending_acks = set(self.groups)
        for gid in self.groups:
            self.transport.send(
                self._group_node(gid),
                EpochSwitch(
                    new_epoch=record.epoch,
                    order=record.new_order,
                    reply_to=self.node_id,
                ),
            )

    def _on_switch_ack(self, ack: EpochSwitchAck) -> None:
        record = self._current
        if self.state != SWITCHING or record is None or ack.epoch != record.epoch:
            return
        self._pending_acks.discard(ack.group)
        if self._pending_acks:
            return
        # Commit: clients now route through the new overlay.
        self.protocol.install_overlay(CDagOverlay(list(record.new_order)))
        self.epoch = record.epoch
        record.completed_ms = self.transport.now()
        self._current = None
        self.state = IDLE
