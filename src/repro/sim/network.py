"""Simulated wide-area network with FIFO reliable channels.

The paper's deployment connects groups (one per AWS region) and clients over
TCP with emulated inter-region latencies.  This module reproduces that
substrate inside the discrete-event simulator:

* every *node* (a protocol group or a client) is registered at a *site*
  (region index into the :class:`~repro.sim.latencies.LatencyMatrix`);
* :meth:`Network.send` delivers a payload to the destination node after the
  one-way latency between the two sites (plus optional jitter);
* channels are FIFO and reliable, exactly as the paper assumes (§4.2 requires
  FIFO reliable point-to-point links between groups);
* per-node traffic counters record the number of messages and bytes sent and
  received, which is the raw material for Figure 8 (traffic per node) and for
  the communication-overhead analysis (Figures 1 and 9).
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from .events import EventLoop
from .latencies import LatencyMatrix

NodeId = Hashable
MessageHandler = Callable[[NodeId, Any], None]


def payload_size(payload: Any) -> int:
    """Best-effort serialized size (bytes) of a payload.

    Protocol envelopes implement ``size_bytes()``; anything else falls back to
    the length of its ``repr``, which is adequate for tests and toy payloads.
    """
    size_fn = getattr(payload, "size_bytes", None)
    if callable(size_fn):
        return int(size_fn())
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    return len(repr(payload))


@dataclass
class NodeTraffic:
    """Cumulative traffic counters for one node."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    #: messages received broken down by payload kind (e.g. "msg", "ack").
    received_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_received_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def average_received_size(self) -> float:
        """Average size in bytes of received messages (0 if none)."""
        if self.messages_received == 0:
            return 0.0
        return self.bytes_received / self.messages_received


class _Node:
    __slots__ = ("node_id", "site", "handler")

    def __init__(self, node_id: NodeId, site: int, handler: MessageHandler) -> None:
        self.node_id = node_id
        self.site = site
        self.handler = handler


class Network:
    """Latency-matrix network over a discrete-event loop.

    Parameters
    ----------
    loop:
        The event loop driving the simulation.
    latencies:
        One-way latency matrix between sites.
    jitter_ms:
        Maximum uniform jitter added to each delivery (default 0 for fully
        deterministic latencies).  FIFO ordering per channel is preserved even
        with jitter: a message is never delivered before a message previously
        sent on the same (src, dst) channel.
    seed:
        Seed for the jitter RNG.
    """

    def __init__(
        self,
        loop: EventLoop,
        latencies: LatencyMatrix,
        jitter_ms: float = 0.0,
        seed: int = 0,
    ) -> None:
        self._loop = loop
        self._latencies = latencies
        self._jitter = float(jitter_ms)
        self._rng = random.Random(seed)
        self._nodes: Dict[NodeId, _Node] = {}
        self._crashed: set = set()
        self._traffic: Dict[NodeId, NodeTraffic] = defaultdict(NodeTraffic)
        # Last scheduled delivery time per channel, used to enforce FIFO when
        # jitter would otherwise reorder messages.
        self._channel_clock: Dict[Tuple[NodeId, NodeId], float] = {}
        self._messages_in_flight = 0
        self._total_messages = 0
        self._drop_filter: Optional[Callable[[NodeId, NodeId, Any], bool]] = None
        # Delivery observers: called as fn(time, src, dst, payload) after a
        # payload is handed to its destination.  Used for trace capture by the
        # fuzz harness and the latency collector; observers must not mutate
        # the payload.
        self._delivery_observers: list = []

    # ---------------------------------------------------------- registration
    @property
    def loop(self) -> EventLoop:
        return self._loop

    @property
    def latencies(self) -> LatencyMatrix:
        return self._latencies

    def register(self, node_id: NodeId, site: int, handler: MessageHandler) -> None:
        """Register a node at ``site`` with a message handler.

        The handler is called as ``handler(sender_id, payload)`` when a
        message is delivered.
        """
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already registered")
        if not 0 <= site < self._latencies.num_sites:
            raise ValueError(f"site {site} out of range")
        self._nodes[node_id] = _Node(node_id, site, handler)
        self._crashed.discard(node_id)

    def unregister(self, node_id: NodeId) -> None:
        """Crash a node: in-flight and future messages to it are silently lost."""
        if self._nodes.pop(node_id, None) is not None:
            self._crashed.add(node_id)

    def is_registered(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def site_of(self, node_id: NodeId) -> int:
        return self._nodes[node_id].site

    # ------------------------------------------------------------- messaging
    def set_drop_filter(
        self, drop: Optional[Callable[[NodeId, NodeId, Any], bool]]
    ) -> None:
        """Install a fault-injection hook.

        ``drop(src, dst, payload)`` returning True drops the message.  Used by
        tests that exercise the SMR substrate and the checker; the atomic
        multicast protocols themselves assume reliable channels.
        """
        self._drop_filter = drop

    def add_delivery_observer(
        self, observer: Callable[[float, NodeId, NodeId, Any], None]
    ) -> None:
        """Register a read-only observer of every delivered payload."""
        self._delivery_observers.append(observer)

    def send(self, src: NodeId, dst: NodeId, payload: Any) -> float:
        """Send ``payload`` from ``src`` to ``dst``.

        Returns the virtual time at which delivery is scheduled.  Raises
        ``KeyError`` if either endpoint is unknown.
        """
        src_node = self._nodes[src]
        size = payload_size(payload)
        src_stats = self._traffic[src]

        if dst not in self._nodes:
            if dst in self._crashed:
                # Sending to a crashed node is legal; the message is simply lost.
                src_stats.messages_sent += 1
                src_stats.bytes_sent += size
                return self._loop.now
            raise KeyError(f"unknown destination node {dst!r}")
        dst_node = self._nodes[dst]

        src_stats.messages_sent += 1
        src_stats.bytes_sent += size

        if self._drop_filter is not None and self._drop_filter(src, dst, payload):
            return self._loop.now

        delay = self._latencies.latency(src_node.site, dst_node.site)
        if self._jitter > 0.0:
            delay += self._rng.uniform(0.0, self._jitter)

        deliver_at = self._loop.now + delay
        channel = (src, dst)
        previous = self._channel_clock.get(channel, 0.0)
        if deliver_at < previous:
            deliver_at = previous  # preserve FIFO under jitter
        self._channel_clock[channel] = deliver_at

        self._messages_in_flight += 1
        self._total_messages += 1
        self._loop.schedule_at(
            deliver_at, lambda: self._deliver(src, dst, payload, size)
        )
        return deliver_at

    def _deliver(self, src: NodeId, dst: NodeId, payload: Any, size: int) -> None:
        self._messages_in_flight -= 1
        node = self._nodes.get(dst)
        if node is None:
            return  # destination departed (crash injection)
        stats = self._traffic[dst]
        stats.messages_received += 1
        stats.bytes_received += size
        kind = getattr(payload, "kind", None)
        if kind is not None:
            stats.received_by_kind[str(kind)] += 1
            stats.bytes_received_by_kind[str(kind)] += size
        node.handler(src, payload)
        for observer in self._delivery_observers:
            observer(self._loop.now, src, dst, payload)

    # -------------------------------------------------------------- statistics
    def traffic(self, node_id: NodeId) -> NodeTraffic:
        """Traffic counters for a node (zeros if it never communicated)."""
        return self._traffic[node_id]

    def all_traffic(self) -> Dict[NodeId, NodeTraffic]:
        return dict(self._traffic)

    @property
    def messages_in_flight(self) -> int:
        return self._messages_in_flight

    @property
    def total_messages(self) -> int:
        """Total messages ever sent through the network."""
        return self._total_messages

    def reset_traffic(self) -> None:
        """Zero all traffic counters (used to discard warm-up traffic)."""
        self._traffic = defaultdict(NodeTraffic)
