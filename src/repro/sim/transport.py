"""Transport abstraction shared by the simulator and the asyncio runtime.

Protocol code (FlexCast, Skeen, hierarchical) never talks to the network or
the event loop directly.  It is written against the tiny :class:`Transport`
interface below, so exactly the same protocol implementation runs:

* inside the discrete-event simulator (:class:`SimTransport`), which is what
  all benchmarks use, and
* over real TCP sockets in the asyncio runtime
  (:class:`repro.runtime.transport.AsyncioTransport`).
"""

from __future__ import annotations

from typing import Any, Callable

from .network import Network, NodeId


class Transport:
    """Minimal interface protocol groups use to talk to the world.

    Implementations must provide:

    ``send(dst, payload)``
        Asynchronously deliver ``payload`` to node ``dst``.
    ``now()``
        Current time in milliseconds (virtual or wall-clock).
    ``schedule(delay_ms, callback)``
        Run ``callback`` after ``delay_ms``; returns an object with a
        ``cancel()`` method.
    """

    def send(self, dst: NodeId, payload: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def schedule(self, delay_ms: float, callback: Callable[[], None]):  # pragma: no cover
        raise NotImplementedError


class SimTransport(Transport):
    """Transport bound to one node of the simulated network."""

    def __init__(self, network: Network, node_id: NodeId) -> None:
        self._network = network
        self._node_id = node_id

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    def send(self, dst: NodeId, payload: Any) -> None:
        self._network.send(self._node_id, dst, payload)

    def now(self) -> float:
        return self._network.loop.now

    def schedule(self, delay_ms: float, callback: Callable[[], None]):
        return self._network.loop.schedule(delay_ms, callback)


class RecordingTransport(Transport):
    """In-memory transport for unit tests.

    Captures every ``send`` in :attr:`sent` instead of delivering it, and lets
    the test advance a fake clock.  This keeps protocol unit tests independent
    from the network substrate.
    """

    def __init__(self, node_id: NodeId = "test-node") -> None:
        self.node_id = node_id
        self.sent = []  # list of (dst, payload)
        self._now = 0.0
        self._scheduled = []  # list of (time, callback)

    def send(self, dst: NodeId, payload: Any) -> None:
        self.sent.append((dst, payload))

    def now(self) -> float:
        return self._now

    def schedule(self, delay_ms: float, callback: Callable[[], None]):
        entry = [self._now + delay_ms, callback, False]
        self._scheduled.append(entry)

        class _Handle:
            def cancel(self_inner) -> None:
                entry[2] = True

        return _Handle()

    # Test helpers -----------------------------------------------------------
    def advance(self, delta_ms: float) -> None:
        """Advance the fake clock, firing due scheduled callbacks in order."""
        target = self._now + delta_ms
        due = sorted(
            (e for e in self._scheduled if e[0] <= target and not e[2]),
            key=lambda e: e[0],
        )
        for entry in due:
            self._now = entry[0]
            entry[2] = True
            entry[1]()
        self._now = target

    def sent_to(self, dst: NodeId):
        """All payloads sent to ``dst`` so far."""
        return [payload for d, payload in self.sent if d == dst]

    def clear(self) -> None:
        self.sent.clear()
