"""Discrete-event wide-area network substrate.

This subpackage replaces the paper's CloudLab/AWS testbed: a deterministic
event loop (:mod:`repro.sim.events`), a 12-region AWS-style latency matrix
(:mod:`repro.sim.latencies`), a FIFO reliable network with traffic accounting
(:mod:`repro.sim.network`) and the transport abstraction protocol code is
written against (:mod:`repro.sim.transport`).
"""

from .events import EventHandle, EventLoop, PeriodicTimer
from .latencies import AWS_REGIONS, NUM_REGIONS, LatencyMatrix, Region, aws_latency_matrix, default_regions
from .network import Network, NodeId, NodeTraffic, payload_size
from .transport import RecordingTransport, SimTransport, Transport

__all__ = [
    "EventHandle",
    "EventLoop",
    "PeriodicTimer",
    "AWS_REGIONS",
    "NUM_REGIONS",
    "LatencyMatrix",
    "Region",
    "aws_latency_matrix",
    "default_regions",
    "Network",
    "NodeId",
    "NodeTraffic",
    "payload_size",
    "RecordingTransport",
    "SimTransport",
    "Transport",
]
