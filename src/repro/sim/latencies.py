"""AWS-style wide-area latency model (12 regions).

The paper evaluates FlexCast on an emulated wide-area network that mimics 12
AWS regions; the emulated latencies are based on public cloudping
measurements.  The exact matrix is not published, so this module ships a
matrix of realistic public round-trip times between 12 AWS regions with the
same geographic structure the paper relies on: an America cluster, a Europe
cluster and an Asia-Pacific cluster.  Only the *relative* distances matter for
the overlays (O1/O2 nearest-neighbour construction, the regional trees
T1/T2/T3) and for the gTPC-C locality model.

All latencies are one-way milliseconds (half of the public RTT figures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Region index -> (region code, human name, geographic cluster).
#: Indices 0..11 correspond to the paper's groups 1..12.
AWS_REGIONS: List[Tuple[str, str, str]] = [
    ("us-east-1", "N. Virginia", "america"),       # 0  (paper group 1)
    ("us-east-2", "Ohio", "america"),              # 1  (paper group 2)
    ("us-west-1", "N. California", "america"),     # 2  (paper group 3)
    ("us-west-2", "Oregon", "america"),            # 3  (paper group 4)
    ("sa-east-1", "Sao Paulo", "america"),         # 4  (paper group 5)
    ("eu-west-1", "Ireland", "europe"),            # 5  (paper group 6)
    ("eu-west-2", "London", "europe"),             # 6  (paper group 7)
    ("eu-central-1", "Frankfurt", "europe"),       # 7  (paper group 8)
    ("ap-northeast-1", "Tokyo", "asia"),           # 8  (paper group 9)
    ("ap-southeast-1", "Singapore", "asia"),       # 9  (paper group 10)
    ("ap-southeast-2", "Sydney", "asia"),          # 10 (paper group 11)
    ("ap-south-1", "Mumbai", "asia"),              # 11 (paper group 12)
]

#: Number of regions in the default deployment (matches the paper).
NUM_REGIONS = len(AWS_REGIONS)

# Public round-trip times (milliseconds) between the 12 regions above,
# rounded from cloudping-style measurements.  Symmetric, zero diagonal.
_RTT_MS: List[List[float]] = [
    #  use1  use2  usw1  usw2   sa   euw1  euw2  euc1  apne  apse1 apse2  aps1
    [   0,   12,   62,   68,  115,   68,   76,   89,  145,  214,  198,  182],  # us-east-1
    [  12,    0,   50,   58,  125,   78,   85,   97,  135,  205,  190,  192],  # us-east-2
    [  62,   50,    0,   22,  172,  132,  138,  148,  107,  172,  158,  232],  # us-west-1
    [  68,   58,   22,    0,  178,  124,  132,  142,   97,  162,  140,  218],  # us-west-2
    [ 115,  125,  172,  178,    0,  178,  186,  198,  255,  318,  310,  298],  # sa-east-1
    [  68,   78,  132,  124,  178,    0,   12,   25,  200,  175,  260,  122],  # eu-west-1
    [  76,   85,  138,  132,  186,   12,    0,   15,  210,  168,  268,  112],  # eu-west-2
    [  89,   97,  148,  142,  198,   25,   15,    0,  222,  158,  278,  110],  # eu-central-1
    [ 145,  135,  107,   97,  255,  200,  210,  222,    0,   70,  105,  122],  # ap-northeast-1
    [ 214,  205,  172,  162,  318,  175,  168,  158,   70,    0,   92,   60],  # ap-southeast-1
    [ 198,  190,  158,  140,  310,  260,  268,  278,  105,   92,    0,  145],  # ap-southeast-2
    [ 182,  192,  232,  218,  298,  122,  112,  110,  122,   60,  145,    0],  # ap-south-1
]


class LatencyMatrix:
    """One-way latencies between sites, indexed by integer site id.

    The default instance models the 12-region AWS deployment from the paper.
    Custom matrices can be supplied to run the protocols on arbitrary
    geographies (see ``LatencyMatrix(matrix=...)``).
    """

    def __init__(
        self,
        matrix: Sequence[Sequence[float]] = None,
        names: Sequence[str] = None,
        local_latency: float = 0.3,
    ) -> None:
        if matrix is None:
            matrix = [[rtt / 2.0 for rtt in row] for row in _RTT_MS]
            if names is None:
                names = [code for code, _, _ in AWS_REGIONS]
        self._matrix = [list(map(float, row)) for row in matrix]
        n = len(self._matrix)
        for row in self._matrix:
            if len(row) != n:
                raise ValueError("latency matrix must be square")
        self._names = list(names) if names is not None else [f"site-{i}" for i in range(n)]
        if len(self._names) != n:
            raise ValueError("names must match matrix dimension")
        self._local = float(local_latency)

    # ------------------------------------------------------------ properties
    @property
    def num_sites(self) -> int:
        return len(self._matrix)

    @property
    def names(self) -> List[str]:
        return list(self._names)

    def name(self, site: int) -> str:
        return self._names[site]

    # --------------------------------------------------------------- queries
    def latency(self, src: int, dst: int) -> float:
        """One-way latency in milliseconds from ``src`` to ``dst``.

        Same-site communication uses ``local_latency`` (LAN/loopback cost)
        rather than zero so that ordering within a site still consumes time.
        """
        if src == dst:
            return self._local
        return self._matrix[src][dst]

    def rtt(self, src: int, dst: int) -> float:
        """Round-trip time between two sites."""
        return self.latency(src, dst) + self.latency(dst, src)

    def nearest_sites(self, site: int) -> List[int]:
        """All other sites ordered from nearest to farthest from ``site``.

        This ordering drives both the gTPC-C locality model (pick the nearest
        warehouse with probability equal to the locality rate, otherwise the
        next nearest, and so on) and the O1/O2 overlay constructions.
        """
        others = [s for s in range(self.num_sites) if s != site]
        return sorted(others, key=lambda s: (self.latency(site, s), s))

    def centroid_site(self) -> int:
        """Site minimising the sum of latencies to all other sites.

        The paper seeds overlay O1 at the "central node"; with the AWS matrix
        this is a European region.
        """
        best = min(
            range(self.num_sites),
            key=lambda s: (sum(self.latency(s, d) for d in range(self.num_sites)), s),
        )
        return best

    def cluster(self, site: int) -> str:
        """Geographic cluster name for the default AWS matrix."""
        if self.num_sites == NUM_REGIONS and self._names[site] == AWS_REGIONS[site][0]:
            return AWS_REGIONS[site][2]
        return "unknown"

    def as_dict(self) -> Dict[str, List[float]]:
        """Export the matrix keyed by site name (used by the asyncio runtime
        to inject the same delays over real sockets)."""
        return {self._names[i]: list(self._matrix[i]) for i in range(self.num_sites)}


@dataclass(frozen=True)
class Region:
    """Metadata describing one region/group in the default deployment."""

    index: int
    code: str
    name: str
    cluster: str


def default_regions() -> List[Region]:
    """The 12 default regions as :class:`Region` records."""
    return [
        Region(index=i, code=code, name=name, cluster=cluster)
        for i, (code, name, cluster) in enumerate(AWS_REGIONS)
    ]


def aws_latency_matrix(local_latency: float = 0.3) -> LatencyMatrix:
    """The default 12-region AWS-style latency matrix used across the repo."""
    return LatencyMatrix(local_latency=local_latency)


def clustered_latency_matrix(
    cluster_sizes: Sequence[int],
    intra_ms: float = 5.0,
    inter_ms: float = 100.0,
    local_latency: float = 0.1,
) -> LatencyMatrix:
    """Synthetic geography: tight clusters separated by a wide-area gap.

    Sites are numbered cluster by cluster (``cluster_sizes=(3, 3)`` puts sites
    0-2 in the first cluster and 3-5 in the second).  Used by reconfiguration
    scenarios and tests that need a controllable "workload moved to another
    continent" geometry without the full AWS matrix.
    """
    if not cluster_sizes or any(s < 1 for s in cluster_sizes):
        raise ValueError("cluster_sizes must be positive")
    membership: List[int] = []
    for cluster_idx, size in enumerate(cluster_sizes):
        membership.extend([cluster_idx] * size)
    n = len(membership)
    matrix = [
        [
            0.0 if a == b else (intra_ms if membership[a] == membership[b] else inter_ms)
            for b in range(n)
        ]
        for a in range(n)
    ]
    names = [f"c{membership[i]}-s{i}" for i in range(n)]
    return LatencyMatrix(matrix=matrix, names=names, local_latency=local_latency)
