"""Discrete-event simulation loop.

The simulator drives every experiment in this repository.  It replaces the
physical CloudLab/AWS deployment used by the paper: instead of real wall-clock
time elapsing on wide-area links, link latencies are added to a virtual clock
and events (message deliveries, timers) are executed in timestamp order.

The loop is deterministic: events scheduled at the same virtual time are
executed in scheduling order (FIFO tie-breaking through a monotonically
increasing sequence number).  Determinism makes every benchmark and test
reproducible from its random seed alone.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry.

    Ordering is (time, sequence); the callback itself never participates in
    comparisons.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventLoop.schedule`, used to cancel events."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Virtual time at which the event is (was) scheduled."""
        return self._event.time


class EventLoop:
    """A minimal, deterministic discrete-event scheduler.

    Typical usage::

        loop = EventLoop()
        loop.schedule(10.0, lambda: print("ten virtual ms later"))
        loop.run()
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._seq = 0
        self._heap: List[_ScheduledEvent] = []
        self._events_processed = 0
        self._stopped = False

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time (milliseconds by convention in this repo)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (useful for budget assertions)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` virtual time units from now.

        Negative delays are clamped to zero so that causality is never
        violated (an event cannot fire in the past).
        """
        return self.schedule_at(self._now + max(0.0, delay), callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            when = self._now
        event = _ScheduledEvent(time=when, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at the current virtual time."""
        return self.schedule(0.0, callback)

    # --------------------------------------------------------------- running
    def stop(self) -> None:
        """Request the loop to stop before processing the next event."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed.

        ``until`` is an absolute virtual time; events scheduled strictly after
        it stay in the queue and the clock is advanced to ``until``.
        """
        self._stopped = False
        processed = 0
        while not self._stopped:
            if max_events is not None and processed >= max_events:
                break
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                self._now = max(self._now, until)
                break
            if not self.step():
                break
            processed += 1
        if until is not None and self._now < until and not self._stopped:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain; returns the number of events processed.

        Raises ``RuntimeError`` if the budget is exceeded, which almost always
        indicates a livelock in protocol logic (e.g. two groups ping-ponging).
        """
        processed = 0
        while self.step():
            processed += 1
            if processed > max_events:
                raise RuntimeError(
                    f"event budget of {max_events} exceeded; possible livelock"
                )
        return processed

    # ------------------------------------------------------------- internals
    def _peek(self) -> Optional[_ScheduledEvent]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None


class PeriodicTimer:
    """Re-arms itself on the loop every ``interval`` until cancelled.

    Used by the flush-based garbage collector and by closed-loop client
    think-time models.
    """

    def __init__(
        self,
        loop: EventLoop,
        interval: float,
        callback: Callable[[], None],
        start_after: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._loop = loop
        self._interval = interval
        self._callback = callback
        self._active = True
        self._handle = loop.schedule(
            interval if start_after is None else start_after, self._fire
        )

    def _fire(self) -> None:
        if not self._active:
            return
        self._callback()
        if self._active:
            self._handle = self._loop.schedule(self._interval, self._fire)

    def cancel(self) -> None:
        self._active = False
        self._handle.cancel()

    @property
    def active(self) -> bool:
        return self._active
