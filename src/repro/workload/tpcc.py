"""TPC-C transaction profiles (the non-geographic half of gTPC-C).

The paper's gTPC-C benchmark (§5.3) keeps TPC-C's transaction mix and remote
access probabilities and adds geographic locality on top.  This module holds
the TPC-C side: the five transaction types, their standard mix, how many items
a new-order touches, and the per-item / per-payment probability of involving a
remote warehouse.  The geographic part (which remote warehouse, given a
locality rate) lives in :mod:`repro.workload.gtpcc`.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict


class TransactionType(enum.Enum):
    """The five TPC-C transaction types."""

    NEW_ORDER = "new_order"
    PAYMENT = "payment"
    ORDER_STATUS = "order_status"
    DELIVERY = "delivery"
    STOCK_LEVEL = "stock_level"


#: Standard TPC-C transaction mix (probability of each type), §5.3.
STANDARD_MIX: Dict[TransactionType, float] = {
    TransactionType.NEW_ORDER: 0.45,
    TransactionType.PAYMENT: 0.43,
    TransactionType.ORDER_STATUS: 0.04,
    TransactionType.DELIVERY: 0.04,
    TransactionType.STOCK_LEVEL: 0.04,
}

#: Mix used for the latency experiments: only the transaction types that can be
#: global (multi-warehouse), renormalised — order status, delivery and stock
#: level are always single-warehouse and "all multicast protocols perform the
#: same when ordering a message multicast to a single group".
GLOBAL_ONLY_MIX: Dict[TransactionType, float] = {
    TransactionType.NEW_ORDER: 0.45 / 0.88,
    TransactionType.PAYMENT: 0.43 / 0.88,
}

#: New-order transactions touch between 5 and 15 items (TPC-C spec).
NEW_ORDER_MIN_ITEMS = 5
NEW_ORDER_MAX_ITEMS = 15

#: Probability that a new-order item is supplied by a remote warehouse (TPC-C).
NEW_ORDER_REMOTE_ITEM_PROB = 0.02

#: Probability that a payment is made by a customer of a remote warehouse (TPC-C).
PAYMENT_REMOTE_PROB = 0.15

#: Approximate serialized payload sizes in bytes per transaction type, used for
#: the traffic accounting in Figure 8.  (Order of magnitude of the request
#: parameters TPC-C defines; only relative consistency matters.)
PAYLOAD_BYTES: Dict[TransactionType, int] = {
    TransactionType.NEW_ORDER: 320,
    TransactionType.PAYMENT: 96,
    TransactionType.ORDER_STATUS: 48,
    TransactionType.DELIVERY: 48,
    TransactionType.STOCK_LEVEL: 48,
}

#: Transaction types that only ever touch the client's home warehouse.
SINGLE_WAREHOUSE_TYPES = frozenset(
    {
        TransactionType.ORDER_STATUS,
        TransactionType.DELIVERY,
        TransactionType.STOCK_LEVEL,
    }
)


@dataclass(frozen=True)
class TransactionProfile:
    """The warehouse-access shape of one generated transaction.

    ``remote_accesses`` is the number of accesses that hit a warehouse other
    than the home warehouse (for a new-order, the number of remote items; for
    a payment, 0 or 1).  The geographic layer turns each remote access into a
    concrete warehouse using the locality rule.
    """

    txn_type: TransactionType
    items: int
    remote_accesses: int

    @property
    def payload_bytes(self) -> int:
        return PAYLOAD_BYTES[self.txn_type]

    @property
    def is_single_warehouse(self) -> bool:
        return self.remote_accesses == 0


def choose_transaction_type(
    rng: random.Random, mix: Dict[TransactionType, float] = None
) -> TransactionType:
    """Sample a transaction type from ``mix`` (standard TPC-C mix by default)."""
    mix = mix or STANDARD_MIX
    roll = rng.random() * sum(mix.values())
    acc = 0.0
    for txn_type, weight in mix.items():
        acc += weight
        if roll <= acc:
            return txn_type
    return next(reversed(list(mix)))  # floating point edge; return last type


def sample_profile(
    rng: random.Random, mix: Dict[TransactionType, float] = None
) -> TransactionProfile:
    """Sample one transaction's type and warehouse-access shape."""
    txn_type = choose_transaction_type(rng, mix)
    if txn_type in SINGLE_WAREHOUSE_TYPES:
        return TransactionProfile(txn_type=txn_type, items=1, remote_accesses=0)
    if txn_type is TransactionType.PAYMENT:
        remote = 1 if rng.random() < PAYMENT_REMOTE_PROB else 0
        return TransactionProfile(txn_type=txn_type, items=1, remote_accesses=remote)
    # New order.
    items = rng.randint(NEW_ORDER_MIN_ITEMS, NEW_ORDER_MAX_ITEMS)
    remote = sum(
        1 for _ in range(items) if rng.random() < NEW_ORDER_REMOTE_ITEM_PROB
    )
    return TransactionProfile(txn_type=txn_type, items=items, remote_accesses=remote)
