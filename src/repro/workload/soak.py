"""Soak harness: thousands of clients, millions of messages, one verdict.

The micro benchmarks (``benchmarks/run_bench.py``) measure single operations
in isolation; the fuzz harness explores schedules under fault injection.
What neither can see is *sustained* behaviour — backpressure, convoy effects,
GC keeping up with ingest, WAL growth, queue-depth watermarks — which only
emerges when a real deployment runs at volume for minutes.  This module
drives exactly that against the process-level cluster runtime
(:mod:`repro.runtime.proc`): real OS processes, real TCP, per-replica WALs.

Shape of the drive:

* Thousands of *logical clients* issue messages in a closed loop with a
  small per-client credit, so offered load adapts to the cluster instead of
  overrunning it (the paper's closed-loop client model, §5.3).
* Dispatch funnels through one shared :class:`~repro.core.batching.BatchingClient`
  — windows are keyed by destination set, so the batcher acts as the ingress
  proxy coalescing same-destination traffic across clients (the PR-5
  batching layer doing the job it was built for).
* Every message is watched by a :class:`~repro.workload.clients.BoundedResubmitter`;
  re-submissions ride the idempotent path, so loss around a fail-over is
  healed, bounded, and *counted*.
* A periodic flush multicast (the PR-4 GC coordinator pattern) keeps every
  group's history bounded for the whole run.
* Optionally, one replica is SIGKILL'd mid-run and later restarted through
  the rejoin + snapshot path, so the soak also exercises recovery under
  load.

The verdict is the **oracle**: every issued message completed (a response
from every destination), no resubmitter gave up, and every group's replicas
agree byte-for-byte on their delivery sequence.  ``run_soak`` returns a
JSON-able report (the ``BENCH_soak.json`` schema documented in DESIGN.md).
"""

from __future__ import annotations

import asyncio
import os
import platform
import random
import subprocess
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.batching import BatchingClient
from ..core.message import ClientRequest, ClientResponse, Message, NodeHello
from ..obs import Histogram
from ..runtime.codec import CodecError, read_frame
from ..runtime.proc import ProcessCluster
from ..runtime.transport import AsyncioTransport
from ..smr.replica import replica_node
from .clients import BoundedResubmitter


@dataclass
class SoakConfig:
    """Knobs for one soak run (all deterministic given ``seed``)."""

    #: Cluster topology.
    groups: int = 2
    replication: int = 3
    hybrid: bool = False
    storage_root: Optional[str] = None

    #: Total messages to push through the cluster.
    messages: int = 1_000_000
    #: Logical clients issuing in a closed loop ...
    clients: int = 2000
    #: ... each keeping this many messages outstanding.
    inflight_per_client: int = 4
    #: Fraction of messages addressed to more than one group.
    global_fraction: float = 0.2
    payload_bytes: int = 64

    #: Ingress batching window (shared across clients, keyed by dst set).
    max_batch: int = 128
    max_delay_ms: float = 10.0

    #: Bounded resubmission per message.  The timeout must sit well above
    #: worst-case *queueing* latency, not just network latency: a closed
    #: loop keeps ``clients * inflight_per_client`` messages outstanding,
    #: so on a machine sustaining T msg/s the median wait is already
    #: ``outstanding / T`` seconds — a tight timeout turns a merely loaded
    #: run into a resubmission storm that loads it further.
    timeout_ms: float = 30_000.0
    max_retries: int = 6

    #: GC flush multicast cadence (0 disables; history then grows O(run)).
    flush_every_ms: float = 500.0

    #: Watermark sampling cadence for the ``/metrics`` scrapes.
    sample_every_s: float = 2.0

    #: Optional mid-run SIGKILL of one replica (fraction of completed
    #: messages at which to inject / recover; ``None`` disables).
    kill_at: Optional[float] = None
    restart_at: Optional[float] = None
    kill_target: Tuple[int, int] = (0, 2)

    #: Full-sequence oracle (fetch + cross-check every delivery id).  Costly
    #: at millions of messages; ``None`` auto-enables for runs <= 100k.
    deep_check: Optional[bool] = None

    seed: int = 42
    ready_timeout: float = 60.0
    drain_timeout: float = 300.0
    #: Ready timeout for the *restarted* victim specifically: unlike a cold
    #: start it must replay its whole commit log first (O(messages delivered
    #: before the kill)), while competing with the live soak for CPU — at 1M
    #: messages with the default kill point that is ~200k entries.
    restart_ready_timeout: float = 600.0
    #: How long the post-drain verification waits for every live replica of
    #: a group to agree — the rejoined victim re-applies the whole decided
    #: suffix it missed (O(messages between kill and drain)).
    convergence_timeout: float = 360.0

    def resolved_deep_check(self) -> bool:
        if self.deep_check is not None:
            return self.deep_check
        return self.messages <= 100_000


#: Gauges whose running maximum the monitor records as watermarks.
_WATERMARK_GAUGES = (
    "flexcast_queue_depth",
    "flexcast_leaked_pending_entries",
    "history_vertices",
    "smr_pending_commands",
    "server_delivered",
)


def _metric_values(text: str, name: str) -> List[float]:
    """All sample values of ``name`` in a Prometheus text exposition."""
    values: List[float] = []
    for line in text.splitlines():
        if not line.startswith(name):
            continue
        rest = line[len(name):]
        if rest[:1] not in ("{", " "):
            continue  # a longer metric name sharing the prefix
        values.append(float(line.rsplit(" ", 1)[1]))
    return values


def provenance() -> Dict[str, Any]:
    """Environment metadata (same shape as BENCH_micro.json provenance)."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))))),
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_sha": sha,
        "timestamp_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


class SoakHarness:
    """One soak run against a freshly started :class:`ProcessCluster`."""

    def __init__(self, config: SoakConfig) -> None:
        self.config = config
        self.cluster = ProcessCluster(
            groups=config.groups,
            replication=config.replication,
            storage_root=config.storage_root,
            hybrid=config.hybrid,
        )
        self._rng = random.Random(config.seed)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._transport: Optional[AsyncioTransport] = None
        self._batcher: Optional[BatchingClient] = None
        self._resubmitter: Optional[BoundedResubmitter] = None

        #: msg_id -> logical client index (doubles as the settled check).
        self._owners: Dict[str, int] = {}
        self._issued = 0
        self._completed = 0
        self._per_group_sent: Dict[int, int] = {g: 0 for g in range(config.groups)}
        self._flush_ids: List[str] = []
        self._stopping = False

        #: Client-perceived latency (ms): last destination's response.
        self.delivery_hist = Histogram(
            "soak_delivery_latency_ms", "End-to-end delivery latency."
        )
        #: ... and the first destination's response (the paper's 1st-response).
        self.first_hist = Histogram(
            "soak_first_response_latency_ms", "First-destination latency."
        )
        self._watermarks: Dict[str, float] = {g: 0.0 for g in _WATERMARK_GAUGES}
        self._events: List[Dict[str, Any]] = []
        self.violations: List[str] = []

    # ------------------------------------------------------------------ wiring
    def _now_ms(self) -> float:
        assert self._loop is not None
        return self._loop.time() * 1000.0

    def _schedule(self, delay_ms: float, callback) -> Any:
        assert self._loop is not None
        return self._loop.call_later(delay_ms / 1000.0, callback)

    async def _start_response_plane(self) -> Tuple[str, int]:
        """One listening port receives every logical client's responses."""

        async def handle(reader, writer):
            try:
                while True:
                    try:
                        _, envelope = await read_frame(reader)
                    except (asyncio.IncompleteReadError, CodecError):
                        break
                    if isinstance(envelope, ClientResponse):
                        self._on_response(envelope)
            finally:
                writer.close()

        self._server = await asyncio.start_server(handle, "127.0.0.1", 0)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def _announce_clients(self, host: str, port: int) -> None:
        """NodeHello every logical client id (and the flusher) to every
        replica — they all answer on the one response-plane port."""
        assert self._transport is not None
        cfg = self.config
        node_ids = [f"soak-client-{i}" for i in range(cfg.clients)]
        node_ids.append("soak-flush")
        for gid in range(cfg.groups):
            for index in range(cfg.replication):
                rid = replica_node(gid, index)
                for node_id in node_ids:
                    self._transport.send(
                        rid, NodeHello(node_id=node_id, host=host, port=port)
                    )

    # ----------------------------------------------------------------- issuing
    def _pick_destinations(self) -> Sequence[int]:
        cfg = self.config
        if cfg.groups > 1 and self._rng.random() < cfg.global_fraction:
            count = self._rng.randint(2, cfg.groups)
            return self._rng.sample(range(cfg.groups), count)
        return [self._rng.randrange(cfg.groups)]

    def _issue_for(self, client_index: int) -> None:
        cfg = self.config
        if self._stopping or self._issued >= cfg.messages:
            return
        assert self._batcher is not None and self._resubmitter is not None
        self._issued += 1
        message = Message.create(
            destinations=self._pick_destinations(),
            sender=f"soak-client-{client_index}",
            payload_bytes=cfg.payload_bytes,
        )
        for gid in message.dst:
            self._per_group_sent[gid] += 1
        self._owners[message.msg_id] = client_index
        self._batcher.submit(message)
        self._resubmitter.track(message.msg_id)

    def _on_response(self, response: ClientResponse) -> None:
        assert self._batcher is not None
        call = self._batcher.on_response(response.group, response.msg_id)
        if call is None:
            return
        owner = self._owners.pop(call.message.msg_id, None)
        self._completed += 1
        latencies = call.latencies_by_arrival()
        if latencies:
            self.first_hist.observe(latencies[0])
            self.delivery_hist.observe(latencies[-1])
        # Bound driver memory: the batcher's completed list and batch log
        # grow per call/batch and are not needed for the oracle.
        if len(self._batcher.completed) > 10_000:
            self._batcher.completed.clear()
        if len(self._batcher.batch_log) > 10_000:
            self._batcher.batch_log.clear()
        if owner is not None:
            self._issue_for(owner)

    def _resend(self, msg_id: str) -> None:
        assert self._batcher is not None
        call = self._batcher.inflight.get(msg_id)
        if call is not None:
            # Re-dispatch through the batching window; the submission path
            # is idempotent end to end, so over-delivery is absorbed.
            self._batcher._dispatch(call.message)

    # -------------------------------------------------------------- background
    async def _flush_loop(self) -> None:
        """Periodic GC flush: an ``is_flush`` multicast to all groups."""
        cfg = self.config
        assert self._transport is not None
        all_groups = list(range(cfg.groups))
        while not self._stopping:
            await asyncio.sleep(cfg.flush_every_ms / 1000.0)
            message = Message.create(
                destinations=all_groups, sender="soak-flush", is_flush=True
            )
            self._flush_ids.append(message.msg_id)
            request = ClientRequest(message=message)
            for entry in self.cluster.protocol.entry_groups(message):
                try:
                    self._transport.send(entry, request)
                except KeyError:  # pragma: no cover - book is pre-populated
                    pass

    async def _sample_watermarks(self) -> None:
        """Scrape every live replica once; keep the running gauge maxima."""
        for gid in range(self.config.groups):
            for index in self.cluster.live_replicas(gid):
                try:
                    text = await self.cluster.scrape(gid, index)
                except (OSError, RuntimeError):
                    continue
                for name in _WATERMARK_GAUGES:
                    values = _metric_values(text, name)
                    if values:
                        self._watermarks[name] = max(
                            self._watermarks[name], max(values)
                        )

    async def _monitor_loop(self) -> None:
        """Periodic watermark sampling for the duration of the run."""
        while not self._stopping:
            await asyncio.sleep(self.config.sample_every_s)
            await self._sample_watermarks()

    async def _failure_injector(self) -> None:
        """SIGKILL one replica at ``kill_at`` and restart it at ``restart_at``."""
        cfg = self.config
        if cfg.kill_at is None:
            return
        gid, index = cfg.kill_target
        kill_threshold = int(cfg.kill_at * cfg.messages)
        while not self._stopping and self._completed < kill_threshold:
            await asyncio.sleep(0.05)
        if self._stopping:
            return
        await self.cluster.kill_replica(gid, index)
        self._events.append(
            {"event": "kill", "replica": [gid, index], "at_completed": self._completed}
        )
        if cfg.restart_at is None:
            return
        restart_threshold = int(cfg.restart_at * cfg.messages)
        while not self._stopping and self._completed < restart_threshold:
            await asyncio.sleep(0.05)
        await self.cluster.restart_replica(
            gid, index, ready_timeout=cfg.restart_ready_timeout
        )
        self._events.append(
            {
                "event": "restart",
                "replica": [gid, index],
                "at_completed": self._completed,
            }
        )

    # --------------------------------------------------------------------- run
    async def run(self) -> Dict[str, Any]:
        """Start the cluster, push the configured load, verify, report."""
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        started_wall = time.time()
        await self.cluster.start(ready_timeout=cfg.ready_timeout)
        try:
            return await self._drive(started_wall)
        finally:
            self._stopping = True
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            if self._transport is not None:
                await self._transport.aclose()
            await self.cluster.stop()

    async def _drive(self, started_wall: float) -> Dict[str, Any]:
        cfg = self.config
        host, port = await self._start_response_plane()
        self._transport = AsyncioTransport(
            node_id="soak-driver",
            addresses=self.cluster.spec.address_book(),
            pool=True,
        )
        self._announce_clients(host, port)
        await asyncio.sleep(0.1)

        self._batcher = BatchingClient(
            client_id="soak-ingress",
            protocol=self.cluster.protocol,
            send_request=lambda group, request: self._transport.send(group, request),
            clock=self._now_ms,
            max_batch=cfg.max_batch,
            max_delay_ms=cfg.max_delay_ms,
            schedule=self._schedule,
        )
        self._resubmitter = BoundedResubmitter(
            resend=self._resend,
            is_settled=lambda msg_id: msg_id not in self._owners,
            schedule=self._schedule,
            timeout_ms=cfg.timeout_ms,
            max_retries=cfg.max_retries,
        )

        background = [asyncio.create_task(self._monitor_loop())]
        injector = asyncio.create_task(self._failure_injector())
        if cfg.flush_every_ms > 0:
            background.append(asyncio.create_task(self._flush_loop()))

        bench_started = time.perf_counter()
        # Prime the closed loop: every logical client gets its credit.
        for client_index in range(cfg.clients):
            for _ in range(cfg.inflight_per_client):
                self._issue_for(client_index)

        # Completions re-issue until the budget is spent, then the remaining
        # in-flight calls drain.  The timeout bounds *stall* time (no
        # completion progress), not total wall clock — a long healthy run
        # must not be cut short, a wedged one must not hang CI.
        last_progress = (self._completed, self._loop.time())
        while self._owners:
            if self._issued >= cfg.messages:
                self._batcher.flush()
            await asyncio.sleep(0.1)
            if self._completed > last_progress[0]:
                last_progress = (self._completed, self._loop.time())
            elif self._loop.time() - last_progress[1] > cfg.drain_timeout:
                break
        wall_s = time.perf_counter() - bench_started

        self._stopping = True
        for task in background:
            task.cancel()
        await asyncio.gather(*background, return_exceptions=True)
        # The injector must not be cancelled mid-restart (it would leave a
        # half-started replica behind for verification); _stopping makes it
        # exit at its next threshold check, and a pending restart completes.
        try:
            await asyncio.wait_for(
                injector, timeout=self.config.restart_ready_timeout + 60.0
            )
        except Exception as exc:  # noqa: BLE001 - any injector failure is a finding
            self.violations.append(f"injector: did not finish cleanly: {exc!r}")

        # One final sample so even runs shorter than the sampling period
        # report real watermarks.
        await self._sample_watermarks()

        if self._owners:
            self.violations.append(
                f"loss: {len(self._owners)} messages never completed "
                f"within the drain window"
            )
        if self._resubmitter.exhausted:
            self.violations.append(
                f"resubmit-exhausted: {len(self._resubmitter.exhausted)} messages"
            )
        per_group = await self._verify_groups()
        return self._report(started_wall, wall_s, per_group)

    async def _verify_groups(self) -> Dict[int, Dict[str, Any]]:
        """Cross-replica agreement per group (+ optional deep id check)."""
        cfg = self.config
        per_group: Dict[int, Dict[str, Any]] = {}
        deep = cfg.resolved_deep_check()
        flush_ids = set(self._flush_ids)
        for gid in range(cfg.groups):
            try:
                agreed = await self.cluster.await_group_convergence(
                    gid, timeout=cfg.convergence_timeout, min_count=0
                )
            except TimeoutError as exc:
                self.violations.append(f"divergence: group {gid}: {exc}")
                per_group[gid] = {"delivered": None, "converged": False}
                continue
            per_group[gid] = {
                "delivered": agreed["count"],
                "digest": agreed["digest"],
                "converged": True,
            }
            if not deep:
                continue
            live = self.cluster.live_replicas(gid)
            sequence = await self.cluster.delivered_sequence(gid, live[0])
            ids = [mid for mid in sequence if mid not in flush_ids]
            if len(set(ids)) != len(ids):
                self.violations.append(f"duplication: group {gid} delivered dups")
            expected = self._per_group_sent[gid]
            if len(set(ids)) < expected - len(self._owners):
                self.violations.append(
                    f"loss: group {gid} delivered {len(set(ids))} unique ids, "
                    f"expected {expected}"
                )
        return per_group

    def _report(
        self,
        started_wall: float,
        wall_s: float,
        per_group: Dict[int, Dict[str, Any]],
    ) -> Dict[str, Any]:
        cfg = self.config
        assert self._batcher is not None and self._resubmitter is not None
        counts = [
            info["delivered"]
            for info in per_group.values()
            if info.get("delivered") is not None
        ]
        mean = sum(counts) / len(counts) if counts else 0.0
        skew = (max(counts) / mean) if counts and mean > 0 else None
        throughput = self._completed / wall_s if wall_s > 0 else 0.0
        return {
            "schema": "BENCH_soak/v1",
            "provenance": provenance(),
            "config": asdict(cfg),
            "totals": {
                "issued": self._issued,
                "completed": self._completed,
                "wall_s": wall_s,
                "throughput_msg_per_s": throughput,
                "retries": self._resubmitter.retries,
                "exhausted": len(self._resubmitter.exhausted),
                "batches_sent": self._batcher.stats["batches_sent"],
                "singles_sent": self._batcher.stats["singles_sent"],
                "flushes_sent": len(self._flush_ids),
                "driver_failed_sends": (
                    self._transport.failed_sends if self._transport else 0
                ),
            },
            "latency_ms": {
                "delivery": self.delivery_hist.summary(),
                "first_response": self.first_hist.summary(),
            },
            "per_group": {str(gid): info for gid, info in per_group.items()},
            "skew_max_over_mean": skew,
            "watermarks": dict(self._watermarks),
            "events": self._events,
            "oracle": {
                "violations": list(self.violations),
                "deep_check": cfg.resolved_deep_check(),
            },
        }


async def run_soak(config: SoakConfig) -> Dict[str, Any]:
    """Run one soak to completion and return the BENCH_soak report."""
    return await SoakHarness(config).run()
