"""gTPC-C: the geographically distributed TPC-C variant proposed by the paper.

§5.3: warehouses become groups, each deployed in one AWS region; transactions
become multicast messages addressed to the involved warehouses.  The
geographic twist is *locality*: a client's home warehouse is the region it
lives in, and when a transaction needs an additional warehouse the client
picks the warehouse **nearest to its home warehouse** with probability equal
to the *locality rate*; failing that the next nearest, and so on, up to the
farthest warehouse (modelling the wholesale-supplier policy of shipping an
item from the closest warehouse that stocks it).

Properties inherited from the paper:

* most global messages are addressed to exactly two warehouses, a few to
  three, and messages to more than three groups are so rare that they are
  dropped from the experiments (``max_destinations``);
* the latency experiments use only global (multi-warehouse) new-order and
  payment transactions; the throughput experiment uses the full mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence

from ..overlay.base import GroupId
from ..sim.latencies import LatencyMatrix
from .tpcc import (
    GLOBAL_ONLY_MIX,
    STANDARD_MIX,
    TransactionProfile,
    TransactionType,
    sample_profile,
)


@dataclass(frozen=True)
class Transaction:
    """One generated gTPC-C transaction, ready to become a multicast message."""

    txn_type: TransactionType
    home: GroupId
    destinations: FrozenSet[GroupId]
    payload_bytes: int

    @property
    def is_global(self) -> bool:
        return len(self.destinations) > 1


@dataclass
class GTPCCConfig:
    """Tunable knobs of the gTPC-C generator.

    ``locality`` is the paper's locality rate (0.90 / 0.95 / 0.99 in the
    evaluation); ``global_only`` restricts generation to multi-warehouse
    new-order/payment transactions (latency experiments); ``max_destinations``
    drops the very rare wide transactions exactly as the paper does.
    """

    locality: float = 0.90
    global_only: bool = False
    max_destinations: int = 3
    #: Safety valve for rejection sampling of global transactions.
    max_attempts: int = 1000

    def __post_init__(self) -> None:
        if not 0.0 < self.locality <= 1.0:
            raise ValueError("locality must be in (0, 1]")
        if self.max_destinations < 2:
            raise ValueError("max_destinations must allow at least 2 groups")


class GTPCCWorkload:
    """Generates gTPC-C transactions for clients homed at specific warehouses."""

    def __init__(
        self,
        latencies: LatencyMatrix,
        config: Optional[GTPCCConfig] = None,
        warehouses: Optional[Sequence[GroupId]] = None,
    ) -> None:
        self._latencies = latencies
        self.config = config or GTPCCConfig()
        self._warehouses: List[GroupId] = (
            list(warehouses) if warehouses is not None else list(range(latencies.num_sites))
        )
        if len(self._warehouses) < 2:
            raise ValueError("gTPC-C needs at least two warehouses")
        # Precompute, for every home warehouse, the other warehouses ordered
        # from nearest to farthest — the backbone of the locality rule.
        self._nearness: Dict[GroupId, List[GroupId]] = {
            w: [
                s
                for s in latencies.nearest_sites(w)
                if s in set(self._warehouses)
            ]
            for w in self._warehouses
        }
        self.generated = 0
        self.generated_global = 0
        self.dropped_wide = 0

    # --------------------------------------------------------------- locality
    @property
    def warehouses(self) -> List[GroupId]:
        return list(self._warehouses)

    def pick_remote_warehouse(
        self, home: GroupId, rng: random.Random, exclude: FrozenSet[GroupId] = frozenset()
    ) -> GroupId:
        """Pick an additional warehouse for a client homed at ``home``.

        Walk the warehouses from nearest to farthest; at each step pick the
        current candidate with probability ``locality``, otherwise move on.
        The farthest candidate absorbs the residual probability, exactly as
        described in §5.3.
        """
        candidates = [w for w in self._nearness[home] if w not in exclude]
        if not candidates:
            raise ValueError(f"no remote warehouse available for home {home}")
        for candidate in candidates[:-1]:
            if rng.random() < self.config.locality:
                return candidate
        return candidates[-1]

    # ------------------------------------------------------------- generation
    def next_transaction(self, home: GroupId, rng: random.Random) -> Transaction:
        """Generate the next transaction for a client homed at ``home``."""
        if home not in self._nearness:
            raise ValueError(f"unknown home warehouse {home}")
        mix = GLOBAL_ONLY_MIX if self.config.global_only else STANDARD_MIX
        for _ in range(self.config.max_attempts):
            profile = sample_profile(rng, mix)
            destinations = self._destinations_for(home, profile, rng)
            if len(destinations) > self.config.max_destinations:
                # The paper drops the very rare >3-group messages.
                self.dropped_wide += 1
                continue
            if self.config.global_only and len(destinations) < 2:
                # Latency experiments only use global messages; resample.
                continue
            self.generated += 1
            if len(destinations) > 1:
                self.generated_global += 1
            return Transaction(
                txn_type=profile.txn_type,
                home=home,
                destinations=frozenset(destinations),
                payload_bytes=profile.payload_bytes,
            )
        raise RuntimeError(
            "could not generate a transaction within max_attempts; "
            "check locality / max_destinations configuration"
        )

    def _destinations_for(
        self, home: GroupId, profile: TransactionProfile, rng: random.Random
    ) -> FrozenSet[GroupId]:
        destinations = {home}
        for _ in range(profile.remote_accesses):
            if len(destinations) >= self.config.max_destinations:
                # Additional remote accesses fold into already chosen
                # warehouses (an item shipped from a warehouse already used).
                break
            remote = self.pick_remote_warehouse(
                home, rng, exclude=frozenset(destinations)
            )
            destinations.add(remote)
        return frozenset(destinations)

    # -------------------------------------------------------------- statistics
    def destination_size_distribution(
        self, home: GroupId, rng: random.Random, samples: int = 10_000
    ) -> Dict[int, float]:
        """Empirical distribution of |m.dst| (used by tests and docs)."""
        counts: Dict[int, int] = {}
        for _ in range(samples):
            txn = self.next_transaction(home, rng)
            counts[len(txn.destinations)] = counts.get(len(txn.destinations), 0) + 1
        return {size: count / samples for size, count in sorted(counts.items())}
