"""Closed-loop gTPC-C clients for the discrete-event simulator.

§5.3: "Clients operate in a closed loop issuing one transaction at a time and
are deployed in the same region as their home warehouse."  Each simulated
client therefore:

1. asks the gTPC-C generator for a transaction homed at its region,
2. multicasts it through whatever protocol is under test (the protocol decides
   whether that means one entry group or all destinations),
3. waits until **every** destination has responded, recording the latency of
   the 1st/2nd/3rd response (the paper's per-destination latency metric),
4. optionally waits a think time, then goes back to 1.

Clients stop issuing new transactions when the configured experiment duration
has elapsed; in-flight transactions are allowed to finish so the simulation
drains cleanly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.client import MulticastCall, MulticastClient
from ..core.message import ClientRequest, ClientResponse
from ..overlay.base import GroupId
from ..protocols.base import AtomicMulticastProtocol
from ..sim.network import Network, NodeId
from .gtpcc import GTPCCWorkload, Transaction


@dataclass
class CompletedTransaction:
    """One finished transaction, as recorded for the metrics pipeline."""

    client_id: str
    home: GroupId
    destinations: int
    submitted_at: float
    completed_at: float
    #: Latency of the 1st, 2nd, ... response (ms), sorted by arrival.
    latencies_by_arrival: List[float] = field(default_factory=list)
    is_global: bool = True
    #: The actual destination groups (feeds the reconfig workload monitor).
    destination_set: frozenset = frozenset()


class BoundedResubmitter:
    """Bounded resubmit-on-timeout for fire-and-forget submissions.

    The fuzz harness's crash profiles submit requests without waiting for
    responses; a request addressed to a replica that crashes before ordering
    it would simply vanish.  This helper re-arms a timer per tracked key and
    re-sends while the key is unsettled, up to ``max_retries`` attempts —
    bounded, so a genuinely undeliverable request cannot spin forever.
    Safe against over-delivery because the whole submission path is
    idempotent: the SMR layer's shared reported-set and the protocol's
    duplicate absorption turn a re-submission of an already-delivered
    request into a no-op.

    Decoupled from transport and clock: ``resend(key)`` performs the
    re-submission, ``is_settled(key)`` checks delivery, and
    ``schedule(delay_ms, callback)`` arms timers (the simulator's event loop
    in fuzzing; anything with the same shape elsewhere).
    """

    def __init__(
        self,
        resend: Callable[[str], None],
        is_settled: Callable[[str], bool],
        schedule: Callable[[float, Callable[[], None]], object],
        timeout_ms: float,
        max_retries: int = 4,
    ) -> None:
        if timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self._resend = resend
        self._is_settled = is_settled
        self._schedule = schedule
        self._timeout_ms = timeout_ms
        self._max_retries = max_retries
        #: Total re-submissions performed (stats/tests).
        self.retries = 0
        #: Keys still unsettled after the retry budget ran out.
        self.exhausted: List[str] = []

    def track(self, key: str) -> None:
        """Start watching ``key``; first timeout check fires in one period."""
        self._arm(key, attempt=0)

    def _arm(self, key: str, attempt: int) -> None:
        self._schedule(self._timeout_ms, lambda: self._check(key, attempt))

    def _check(self, key: str, attempt: int) -> None:
        if self._is_settled(key):
            return
        if attempt >= self._max_retries:
            self.exhausted.append(key)
            return
        self.retries += 1
        self._resend(key)
        self._arm(key, attempt + 1)


class ClosedLoopClient:
    """A closed-loop gTPC-C client living at one region of the simulated WAN."""

    def __init__(
        self,
        client_id: str,
        home: GroupId,
        protocol: AtomicMulticastProtocol,
        workload: GTPCCWorkload,
        network: Network,
        rng: random.Random,
        group_node: Callable[[GroupId], NodeId],
        on_complete: Callable[[CompletedTransaction], None],
        stop_after_ms: float,
        think_time_ms: float = 0.0,
        start_jitter_ms: float = 5.0,
    ) -> None:
        self.client_id = client_id
        self.home = home
        self._protocol = protocol
        self._workload = workload
        self._network = network
        self._rng = rng
        self._group_node = group_node
        self._on_complete = on_complete
        self._stop_after_ms = stop_after_ms
        self._think_time_ms = think_time_ms
        self._start_jitter_ms = start_jitter_ms
        self.issued = 0
        self.completed = 0
        self._active = False
        self._current: Optional[Transaction] = None

        self._mc = MulticastClient(
            client_id=client_id,
            protocol=protocol,
            send_request=self._send_request,
            clock=lambda: network.loop.now,
        )
        network.register(client_id, site=home, handler=self._on_network_message)

    # ------------------------------------------------------------------ wiring
    def _send_request(self, group: GroupId, request: ClientRequest) -> None:
        self._network.send(self.client_id, self._group_node(group), request)

    def _on_network_message(self, sender: NodeId, payload: object) -> None:
        if not isinstance(payload, ClientResponse):
            return
        call = self._mc.on_response(payload.group, payload.msg_id)
        if call is not None:
            self._finish(call)

    # ------------------------------------------------------------------ running
    def start(self) -> None:
        """Schedule the first transaction (with a small per-client jitter so
        that all clients do not fire at exactly the same virtual instant)."""
        self._active = True
        jitter = self._rng.uniform(0.0, self._start_jitter_ms)
        self._network.loop.schedule(jitter, self._issue_next)

    def stop(self) -> None:
        """Stop issuing new transactions (in-flight ones still complete)."""
        self._active = False

    def _issue_next(self) -> None:
        if not self._active or self._network.loop.now >= self._stop_after_ms:
            return
        txn = self._workload.next_transaction(self.home, self._rng)
        self._current = txn
        self.issued += 1
        self._mc.multicast(
            destinations=txn.destinations, payload_bytes=txn.payload_bytes
        )

    def _finish(self, call: MulticastCall) -> None:
        self.completed += 1
        txn = self._current
        record = CompletedTransaction(
            client_id=self.client_id,
            home=self.home,
            destinations=len(call.message.dst),
            submitted_at=call.submitted_at,
            completed_at=self._network.loop.now,
            latencies_by_arrival=call.latencies_by_arrival(),
            is_global=len(call.message.dst) > 1,
            destination_set=frozenset(call.message.dst),
        )
        self._on_complete(record)
        if txn is not None and self._think_time_ms > 0:
            self._network.loop.schedule(self._think_time_ms, self._issue_next)
        else:
            self._issue_next()

    # --------------------------------------------------------------- inspection
    @property
    def outstanding(self) -> int:
        return self._mc.outstanding
