"""gTPC-C workload: TPC-C transaction profiles plus geographic locality."""

from .clients import ClosedLoopClient, CompletedTransaction
from .gtpcc import GTPCCConfig, GTPCCWorkload, Transaction
from .tpcc import (
    GLOBAL_ONLY_MIX,
    NEW_ORDER_MAX_ITEMS,
    NEW_ORDER_MIN_ITEMS,
    NEW_ORDER_REMOTE_ITEM_PROB,
    PAYMENT_REMOTE_PROB,
    PAYLOAD_BYTES,
    SINGLE_WAREHOUSE_TYPES,
    STANDARD_MIX,
    TransactionProfile,
    TransactionType,
    choose_transaction_type,
    sample_profile,
)

__all__ = [
    "ClosedLoopClient",
    "CompletedTransaction",
    "GTPCCConfig",
    "GTPCCWorkload",
    "Transaction",
    "GLOBAL_ONLY_MIX",
    "NEW_ORDER_MAX_ITEMS",
    "NEW_ORDER_MIN_ITEMS",
    "NEW_ORDER_REMOTE_ITEM_PROB",
    "PAYMENT_REMOTE_PROB",
    "PAYLOAD_BYTES",
    "SINGLE_WAREHOUSE_TYPES",
    "STANDARD_MIX",
    "TransactionProfile",
    "TransactionType",
    "choose_transaction_type",
    "sample_profile",
]
