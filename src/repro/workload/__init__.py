"""gTPC-C workload: TPC-C transaction profiles plus geographic locality.

What lives here: the paper's geo-distributed TPC-C variant.  The main entry
point is :class:`GTPCCWorkload` (configured by :class:`GTPCCConfig`:
warehouses per region, locality rate, transaction mix), which samples
:class:`Transaction`\\ s whose destination sets and payload sizes follow the
profiles in :mod:`~repro.workload.tpcc`; :class:`ClosedLoopClient` drives
them against a deployed protocol with a bounded number of outstanding
multicasts.

:mod:`~repro.workload.soak` drives the multi-process runtime at scale:
thousands of logical closed-loop clients through one batching ingress
against a real :class:`~repro.runtime.proc.ProcessCluster`, with a full
end-to-end oracle (``benchmarks/run_soak.py`` is the CLI).
"""

from .clients import BoundedResubmitter, ClosedLoopClient, CompletedTransaction
from .soak import SoakConfig, SoakHarness, run_soak
from .gtpcc import GTPCCConfig, GTPCCWorkload, Transaction
from .tpcc import (
    GLOBAL_ONLY_MIX,
    NEW_ORDER_MAX_ITEMS,
    NEW_ORDER_MIN_ITEMS,
    NEW_ORDER_REMOTE_ITEM_PROB,
    PAYMENT_REMOTE_PROB,
    PAYLOAD_BYTES,
    SINGLE_WAREHOUSE_TYPES,
    STANDARD_MIX,
    TransactionProfile,
    TransactionType,
    choose_transaction_type,
    sample_profile,
)

__all__ = [
    "BoundedResubmitter",
    "ClosedLoopClient",
    "CompletedTransaction",
    "SoakConfig",
    "SoakHarness",
    "run_soak",
    "GTPCCConfig",
    "GTPCCWorkload",
    "Transaction",
    "GLOBAL_ONLY_MIX",
    "NEW_ORDER_MAX_ITEMS",
    "NEW_ORDER_MIN_ITEMS",
    "NEW_ORDER_REMOTE_ITEM_PROB",
    "PAYMENT_REMOTE_PROB",
    "PAYLOAD_BYTES",
    "SINGLE_WAREHOUSE_TYPES",
    "STANDARD_MIX",
    "TransactionProfile",
    "TransactionType",
    "choose_transaction_type",
    "sample_profile",
]
