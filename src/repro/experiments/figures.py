"""Regeneration of every table and figure in the paper's evaluation (§5).

Each ``figureN`` / ``tableN`` function runs the corresponding scenario(s) and
returns a structured result object that carries both machine-readable series
(for assertions in benchmarks/tests) and a ``text`` rendering in the layout of
the paper (for EXPERIMENTS.md and the console).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from ..metrics import NodeTrafficReport, traffic_report
from ..metrics.overhead import OverheadReport
from ..metrics.report import (
    format_latency_comparison,
    format_overhead_report,
    format_throughput_series,
    format_traffic_report,
)
from ..overlay.builders import build_o1
from ..sim.latencies import aws_latency_matrix
from .runner import ExperimentResult, run_experiment
from .scenarios import (
    DEFAULT_SCALE,
    LOCALITY_RATES,
    Scale,
    THROUGHPUT_CLIENT_COUNTS,
    figure1_scenario,
    figure5_table2_scenarios,
    figure6_scenarios,
    figure7_table3_scenarios,
    figure8_scenarios,
    figure9_table4_scenarios,
)


@dataclass
class FigureResult:
    """Generic container for a regenerated figure or table."""

    name: str
    text: str
    #: Raw experiment results keyed by configuration label.
    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    #: Figure-specific structured data (series, tables, ...).
    data: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.name} ==\n{self.text}"


# --------------------------------------------------------------------- Figure 1
def figure1(scale: Scale = DEFAULT_SCALE) -> FigureResult:
    """Figure 1: communication overhead per group (hierarchical T1, 90% locality)."""
    config = figure1_scenario(scale)
    result = run_experiment(config)
    report = result.overhead
    text = format_overhead_report("Hierarchical T1, 90% locality", report)
    return FigureResult(
        name="Figure 1 — hierarchical communication overhead (T1, 90% locality)",
        text=text,
        results={result.label: result},
        data={
            "overhead_percent_by_group": {
                g: report.overhead_percent(g) for g in report.groups_sorted()
            },
            "mean_percent": report.mean_percent,
            "max_percent": report.max_percent,
        },
    )


# ------------------------------------------------------------ Figure 5 / Table 2
def figure5_table2(scale: Scale = DEFAULT_SCALE) -> FigureResult:
    """Figure 5 + Table 2: per-destination latency when varying the overlay."""
    results: Dict[str, ExperimentResult] = {}
    tables: Dict[str, Mapping[int, Mapping[float, float]]] = {}
    cdfs: Dict[str, Dict[int, List[Tuple[float, float]]]] = {}
    for config in figure5_table2_scenarios(scale):
        result = run_experiment(config)
        results[result.label] = result
        tables[result.label] = result.latency_table()
        cdfs[result.label] = {
            rank: result.latency.cdf_for_destination(rank) for rank in (1, 2, 3)
        }
    text = format_latency_comparison(tables)
    return FigureResult(
        name="Figure 5 / Table 2 — latency per destination, varying overlays (90% locality)",
        text=text,
        results=results,
        data={"percentiles": tables, "cdfs": cdfs},
    )


# --------------------------------------------------------------------- Figure 6
def figure6(
    scale: Scale = DEFAULT_SCALE,
    client_counts: Sequence[int] = THROUGHPUT_CLIENT_COUNTS,
) -> FigureResult:
    """Figure 6: throughput vs number of clients (99% locality, full mix)."""
    series: Dict[str, Dict[int, float]] = {}
    results: Dict[str, ExperimentResult] = {}
    for config in figure6_scenarios(scale, client_counts):
        result = run_experiment(config)
        label = result.label
        series.setdefault(label, {})[config.num_clients] = result.throughput_ops_per_sec
        results[f"{label}@{config.num_clients}"] = result
    text = format_throughput_series(series)
    return FigureResult(
        name="Figure 6 — throughput vs number of clients (99% locality)",
        text=text,
        results=results,
        data={"throughput_ops_per_sec": series},
    )


# ------------------------------------------------------------ Figure 7 / Table 3
def figure7_table3(scale: Scale = DEFAULT_SCALE) -> FigureResult:
    """Figure 7 + Table 3: per-destination latency when varying the locality rate."""
    results: Dict[str, ExperimentResult] = {}
    tables: Dict[str, Mapping[int, Mapping[float, float]]] = {}
    cdfs: Dict[str, Dict[int, List[Tuple[float, float]]]] = {}
    for config in figure7_table3_scenarios(scale):
        result = run_experiment(config)
        label = f"{result.label} @{int(config.locality * 100)}%"
        results[label] = result
        tables[label] = result.latency_table()
        cdfs[label] = {
            rank: result.latency.cdf_for_destination(rank) for rank in (1, 2, 3)
        }
    text = format_latency_comparison(tables)
    return FigureResult(
        name="Figure 7 / Table 3 — latency per destination, varying locality",
        text=text,
        results=results,
        data={"percentiles": tables, "cdfs": cdfs},
    )


# --------------------------------------------------------------------- Figure 8
def figure8(scale: Scale = DEFAULT_SCALE) -> FigureResult:
    """Figure 8: messages/s, average message size and KB/s per node."""
    latencies = aws_latency_matrix()
    o1_order = build_o1(latencies).order  # the paper orders FlexCast nodes by C-DAG rank
    results: Dict[str, ExperimentResult] = {}
    reports: Dict[str, List[NodeTrafficReport]] = {}
    texts: List[str] = []
    for config in figure8_scenarios(scale):
        result = run_experiment(config)
        results[result.label] = result
        order = o1_order if config.protocol == "flexcast" else sorted(result.traffic)
        rows = traffic_report(result.traffic, result.duration_ms, order)
        reports[result.label] = rows
        texts.append(format_traffic_report(result.label, rows))
    return FigureResult(
        name="Figure 8 — information exchanged per node (99% locality)",
        text="\n\n".join(texts),
        results=results,
        data={
            "per_node": {
                label: [
                    {
                        "node": r.node,
                        "messages_per_second": r.messages_per_second,
                        "average_message_bytes": r.average_message_bytes,
                        "kbytes_per_second": r.kbytes_per_second,
                    }
                    for r in rows
                ]
                for label, rows in reports.items()
            },
            "average_kbytes_per_second": {
                label: (
                    sum(r.kbytes_per_second for r in rows) / len(rows) if rows else 0.0
                )
                for label, rows in reports.items()
            },
        },
    )


# ------------------------------------------------------------ Figure 9 / Table 4
def figure9_table4(scale: Scale = DEFAULT_SCALE) -> FigureResult:
    """Figure 9 + Table 4: hierarchical overhead per group and per tree/locality."""
    results: Dict[str, ExperimentResult] = {}
    per_group: Dict[str, Dict[int, float]] = {}
    table4_rows: List[Dict[str, object]] = []
    texts: List[str] = []
    for config in figure9_table4_scenarios(scale):
        result = run_experiment(config)
        label = f"{config.overlay} @{int(config.locality * 100)}%"
        results[label] = result
        report: OverheadReport = result.overhead
        per_group[label] = {
            g: report.overhead_percent(g) for g in report.groups_sorted()
        }
        table4_rows.append(
            {
                "overlay": config.overlay,
                "locality": config.locality,
                "mean_percent": report.mean_percent,
                "stdev_percent": report.stdev_percent,
                "max_percent": report.max_percent,
            }
        )
        texts.append(format_overhead_report(label, report))
    return FigureResult(
        name="Figure 9 / Table 4 — hierarchical overhead across trees and localities",
        text="\n\n".join(texts),
        results=results,
        data={"per_group_percent": per_group, "table4": table4_rows},
    )


ALL_FIGURES = {
    "1": figure1,
    "5": figure5_table2,
    "6": figure6,
    "7": figure7_table3,
    "8": figure8,
    "9": figure9_table4,
}


def run_all(scale: Scale = DEFAULT_SCALE) -> Dict[str, FigureResult]:
    """Regenerate every figure/table (used by examples/paper_figures.py)."""
    return {name: fn(scale) for name, fn in ALL_FIGURES.items()}
