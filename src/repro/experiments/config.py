"""Experiment configuration.

One :class:`ExperimentConfig` fully describes a run: which protocol, on which
overlay, with which gTPC-C locality, how many closed-loop clients, for how
long, and with which random seed.  Every benchmark builds its configurations
through :mod:`repro.experiments.scenarios`, so the mapping from the paper's
experiments to code is explicit and auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

#: Protocol identifiers accepted by the runner.
PROTOCOL_FLEXCAST = "flexcast"
PROTOCOL_HIERARCHICAL = "hierarchical"
PROTOCOL_DISTRIBUTED = "distributed"

VALID_PROTOCOLS = (PROTOCOL_FLEXCAST, PROTOCOL_HIERARCHICAL, PROTOCOL_DISTRIBUTED)

#: Overlay names accepted by the runner (paper Figure 4).
VALID_OVERLAYS = ("O1", "O2", "T1", "T2", "T3", "complete")

#: Default overlay per protocol when the caller does not care.
DEFAULT_OVERLAY = {
    PROTOCOL_FLEXCAST: "O1",
    PROTOCOL_HIERARCHICAL: "T1",
    PROTOCOL_DISTRIBUTED: "complete",
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one experiment run."""

    protocol: str = PROTOCOL_FLEXCAST
    overlay: str = "O1"
    #: gTPC-C locality rate (the paper uses 0.90, 0.95 and 0.99).
    locality: float = 0.90
    #: Total number of closed-loop clients, spread evenly over the regions.
    num_clients: int = 48
    #: Virtual time during which clients issue transactions (milliseconds).
    duration_ms: float = 8_000.0
    #: Seed for all randomness (workload, jitter, client staggering).
    seed: int = 1
    #: Latency experiments use only global (multi-warehouse) transactions.
    global_only: bool = True
    #: Uniform jitter added to each link delay (0 keeps runs fully deterministic).
    jitter_ms: float = 2.0
    #: FlexCast flush/garbage-collection period (None disables GC).
    gc_interval_ms: Optional[float] = 2_000.0
    #: Per-client think time between transactions.
    think_time_ms: float = 0.0
    #: Fraction of the run trimmed at each end before computing statistics.
    warmup_fraction: float = 0.10
    #: Record every delivery for the correctness checker (costs memory).
    record_deliveries: bool = False
    #: Friendly label used in reports; defaults to "<protocol> <overlay>".
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.protocol not in VALID_PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; expected one of {VALID_PROTOCOLS}"
            )
        if self.overlay not in VALID_OVERLAYS:
            raise ValueError(
                f"unknown overlay {self.overlay!r}; expected one of {VALID_OVERLAYS}"
            )
        if self.protocol == PROTOCOL_FLEXCAST and self.overlay not in ("O1", "O2"):
            raise ValueError("FlexCast runs on C-DAG overlays O1 or O2")
        if self.protocol == PROTOCOL_HIERARCHICAL and self.overlay not in ("T1", "T2", "T3"):
            raise ValueError("the hierarchical protocol runs on trees T1, T2 or T3")
        if self.protocol == PROTOCOL_DISTRIBUTED and self.overlay != "complete":
            raise ValueError("the distributed protocol runs on the complete overlay")
        if not 0.0 < self.locality <= 1.0:
            raise ValueError("locality must be in (0, 1]")
        if self.num_clients < 1:
            raise ValueError("need at least one client")
        if self.duration_ms <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 <= self.warmup_fraction < 0.5:
            raise ValueError("warmup fraction must be in [0, 0.5)")

    @property
    def display_label(self) -> str:
        if self.label:
            return self.label
        if self.protocol == PROTOCOL_DISTRIBUTED:
            return "Distributed"
        pretty = {"flexcast": "FlexCast", "hierarchical": "Hierarchical"}[self.protocol]
        return f"{pretty} {self.overlay}"

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy with some fields replaced (used by scenario scaling)."""
        return replace(self, **kwargs)


def flexcast_config(**kwargs) -> ExperimentConfig:
    """Convenience constructor for FlexCast configs."""
    kwargs.setdefault("overlay", DEFAULT_OVERLAY[PROTOCOL_FLEXCAST])
    return ExperimentConfig(protocol=PROTOCOL_FLEXCAST, **kwargs)


def hierarchical_config(**kwargs) -> ExperimentConfig:
    """Convenience constructor for hierarchical configs."""
    kwargs.setdefault("overlay", DEFAULT_OVERLAY[PROTOCOL_HIERARCHICAL])
    return ExperimentConfig(protocol=PROTOCOL_HIERARCHICAL, **kwargs)


def distributed_config(**kwargs) -> ExperimentConfig:
    """Convenience constructor for distributed (Skeen) configs."""
    kwargs.setdefault("overlay", DEFAULT_OVERLAY[PROTOCOL_DISTRIBUTED])
    return ExperimentConfig(protocol=PROTOCOL_DISTRIBUTED, **kwargs)
