"""Experiment-suite entry point for the fuzz sweep.

Thin re-export so the scenario-sweep harness sits next to the other
experiment runners (``python -m repro.experiments.fuzz_sweep`` behaves
exactly like ``python -m repro.fuzz.sweep``).
"""

from ..fuzz.sweep import SweepSummary, main, run_sweep

__all__ = ["SweepSummary", "main", "run_sweep"]

if __name__ == "__main__":
    import sys

    sys.exit(main())
