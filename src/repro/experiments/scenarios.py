"""The paper's experiment matrix, expressed as configuration builders.

Every figure/table of the evaluation section maps to one function here; the
benchmarks call these with scaled-down duration/client counts (documented in
EXPERIMENTS.md) so the whole suite runs in minutes, while
``examples/paper_figures.py`` can run them at larger scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .config import (
    ExperimentConfig,
    distributed_config,
    flexcast_config,
    hierarchical_config,
)


@dataclass(frozen=True)
class Scale:
    """Scaling knobs shared by all scenarios.

    The paper runs ~60 s with up to 1440 clients on a cluster; the default
    scale here keeps every experiment a few virtual seconds with tens of
    clients, which preserves the latency distributions (latency is dominated
    by WAN round trips, not by load, below saturation) while keeping the
    Python simulation fast.
    """

    duration_ms: float = 6_000.0
    num_clients: int = 48
    seed: int = 1

    def apply(self, config: ExperimentConfig) -> ExperimentConfig:
        return config.with_overrides(
            duration_ms=self.duration_ms,
            num_clients=self.num_clients,
            seed=self.seed,
        )


DEFAULT_SCALE = Scale()

#: Client counts for the throughput experiment (paper: 24..1440), scaled.
THROUGHPUT_CLIENT_COUNTS: Sequence[int] = (12, 24, 48, 96, 192, 288)

#: The paper's locality rates.
LOCALITY_RATES: Sequence[float] = (0.90, 0.95, 0.99)


def figure1_scenario(scale: Scale = DEFAULT_SCALE) -> ExperimentConfig:
    """Figure 1: overhead per group, hierarchical T1, 90% locality."""
    return scale.apply(
        hierarchical_config(overlay="T1", locality=0.90, global_only=True)
    )


def figure5_table2_scenarios(scale: Scale = DEFAULT_SCALE) -> List[ExperimentConfig]:
    """Figure 5 / Table 2: FlexCast O1 & O2 and Hierarchical T1/T2/T3 at 90%."""
    configs = [
        flexcast_config(overlay="O1", locality=0.90),
        flexcast_config(overlay="O2", locality=0.90),
        hierarchical_config(overlay="T1", locality=0.90),
        hierarchical_config(overlay="T2", locality=0.90),
        hierarchical_config(overlay="T3", locality=0.90),
    ]
    return [scale.apply(c) for c in configs]


def figure6_scenarios(
    scale: Scale = DEFAULT_SCALE,
    client_counts: Sequence[int] = THROUGHPUT_CLIENT_COUNTS,
) -> List[ExperimentConfig]:
    """Figure 6: throughput vs clients, full gTPC-C mix, 99% locality."""
    configs: List[ExperimentConfig] = []
    for protocol_builder in (flexcast_config, hierarchical_config, distributed_config):
        for clients in client_counts:
            config = protocol_builder(locality=0.99, global_only=False)
            configs.append(
                config.with_overrides(
                    duration_ms=scale.duration_ms,
                    num_clients=clients,
                    seed=scale.seed,
                )
            )
    return configs


def figure7_table3_scenarios(scale: Scale = DEFAULT_SCALE) -> List[ExperimentConfig]:
    """Figure 7 / Table 3: FlexCast O1, Hierarchical T1, Distributed at each locality."""
    configs: List[ExperimentConfig] = []
    for locality in LOCALITY_RATES:
        configs.append(flexcast_config(overlay="O1", locality=locality))
        configs.append(hierarchical_config(overlay="T1", locality=locality))
        configs.append(distributed_config(locality=locality))
    return [scale.apply(c) for c in configs]


def figure8_scenarios(scale: Scale = DEFAULT_SCALE) -> List[ExperimentConfig]:
    """Figure 8: per-node traffic, 99% locality, full mix (paper uses 720 clients)."""
    configs = [
        flexcast_config(overlay="O1", locality=0.99, global_only=False),
        hierarchical_config(overlay="T1", locality=0.99, global_only=False),
        distributed_config(locality=0.99, global_only=False),
    ]
    return [scale.apply(c) for c in configs]


def figure9_table4_scenarios(scale: Scale = DEFAULT_SCALE) -> List[ExperimentConfig]:
    """Figure 9 / Table 4: hierarchical overhead for T1/T2/T3 at each locality."""
    configs = []
    for overlay in ("T1", "T2", "T3"):
        for locality in LOCALITY_RATES:
            configs.append(
                hierarchical_config(overlay=overlay, locality=locality, global_only=True)
            )
    return [scale.apply(c) for c in configs]
