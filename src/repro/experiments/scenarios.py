"""The paper's experiment matrix, expressed as configuration builders.

Every figure/table of the evaluation section maps to one function here; the
benchmarks call these with scaled-down duration/client counts (documented in
EXPERIMENTS.md) so the whole suite runs in minutes, while
``examples/paper_figures.py`` can run them at larger scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..overlay.base import GroupId
from .config import (
    ExperimentConfig,
    distributed_config,
    flexcast_config,
    hierarchical_config,
)


@dataclass(frozen=True)
class Scale:
    """Scaling knobs shared by all scenarios.

    The paper runs ~60 s with up to 1440 clients on a cluster; the default
    scale here keeps every experiment a few virtual seconds with tens of
    clients, which preserves the latency distributions (latency is dominated
    by WAN round trips, not by load, below saturation) while keeping the
    Python simulation fast.
    """

    duration_ms: float = 6_000.0
    num_clients: int = 48
    seed: int = 1

    def apply(self, config: ExperimentConfig) -> ExperimentConfig:
        return config.with_overrides(
            duration_ms=self.duration_ms,
            num_clients=self.num_clients,
            seed=self.seed,
        )


DEFAULT_SCALE = Scale()

#: Client counts for the throughput experiment (paper: 24..1440), scaled.
THROUGHPUT_CLIENT_COUNTS: Sequence[int] = (12, 24, 48, 96, 192, 288)

#: The paper's locality rates.
LOCALITY_RATES: Sequence[float] = (0.90, 0.95, 0.99)


def figure1_scenario(scale: Scale = DEFAULT_SCALE) -> ExperimentConfig:
    """Figure 1: overhead per group, hierarchical T1, 90% locality."""
    return scale.apply(
        hierarchical_config(overlay="T1", locality=0.90, global_only=True)
    )


def figure5_table2_scenarios(scale: Scale = DEFAULT_SCALE) -> List[ExperimentConfig]:
    """Figure 5 / Table 2: FlexCast O1 & O2 and Hierarchical T1/T2/T3 at 90%."""
    configs = [
        flexcast_config(overlay="O1", locality=0.90),
        flexcast_config(overlay="O2", locality=0.90),
        hierarchical_config(overlay="T1", locality=0.90),
        hierarchical_config(overlay="T2", locality=0.90),
        hierarchical_config(overlay="T3", locality=0.90),
    ]
    return [scale.apply(c) for c in configs]


def figure6_scenarios(
    scale: Scale = DEFAULT_SCALE,
    client_counts: Sequence[int] = THROUGHPUT_CLIENT_COUNTS,
) -> List[ExperimentConfig]:
    """Figure 6: throughput vs clients, full gTPC-C mix, 99% locality."""
    configs: List[ExperimentConfig] = []
    for protocol_builder in (flexcast_config, hierarchical_config, distributed_config):
        for clients in client_counts:
            config = protocol_builder(locality=0.99, global_only=False)
            configs.append(
                config.with_overrides(
                    duration_ms=scale.duration_ms,
                    num_clients=clients,
                    seed=scale.seed,
                )
            )
    return configs


def figure7_table3_scenarios(scale: Scale = DEFAULT_SCALE) -> List[ExperimentConfig]:
    """Figure 7 / Table 3: FlexCast O1, Hierarchical T1, Distributed at each locality."""
    configs: List[ExperimentConfig] = []
    for locality in LOCALITY_RATES:
        configs.append(flexcast_config(overlay="O1", locality=locality))
        configs.append(hierarchical_config(overlay="T1", locality=locality))
        configs.append(distributed_config(locality=locality))
    return [scale.apply(c) for c in configs]


def figure8_scenarios(scale: Scale = DEFAULT_SCALE) -> List[ExperimentConfig]:
    """Figure 8: per-node traffic, 99% locality, full mix (paper uses 720 clients)."""
    configs = [
        flexcast_config(overlay="O1", locality=0.99, global_only=False),
        hierarchical_config(overlay="T1", locality=0.99, global_only=False),
        distributed_config(locality=0.99, global_only=False),
    ]
    return [scale.apply(c) for c in configs]


# -------------------------------------------------- workload-shift (reconfig)
@dataclass(frozen=True)
class TrafficPattern:
    """One client cohort: ``clients`` closed-loop clients homed at ``home``,
    each multicasting to ``{home} ∪ sample(partners, num_partners)``."""

    home: GroupId
    partners: Tuple[GroupId, ...]
    clients: int = 4
    num_partners: int = 1
    payload_bytes: int = 64


@dataclass(frozen=True)
class WorkloadShiftScenario:
    """A run whose traffic pattern shifts mid-way (exercises repro.reconfig).

    Phase 1 runs ``phase1`` cohorts on ``[0, shift_ms)``; at ``shift_ms`` they
    stop and the ``phase2`` cohorts take over until ``duration_ms``.  The
    geometry is a synthetic clustered WAN
    (:func:`repro.sim.latencies.clustered_latency_matrix`) so the effect of a
    stale overlay is unambiguous.  ``post_eval_ms`` marks the start of the
    evaluation window used to compare "reconfigured" vs "stale overlay" runs
    (chosen to sit safely after the switch completes).
    """

    name: str
    cluster_sizes: Tuple[int, ...]
    initial_order: Tuple[GroupId, ...]
    phase1: Tuple[TrafficPattern, ...]
    phase2: Tuple[TrafficPattern, ...]
    shift_ms: float
    duration_ms: float
    post_eval_ms: float
    intra_ms: float = 5.0
    inter_ms: float = 100.0
    seed: int = 1
    think_time_ms: float = 20.0
    monitor_window_ms: float = 1_500.0
    check_interval_ms: float = 500.0
    min_samples: int = 10
    improvement_threshold: float = 0.10
    gc_interval_ms: Optional[float] = None


def workload_shift_scenario(seed: int = 1) -> WorkloadShiftScenario:
    """The canonical workload-shift experiment.

    Two three-site clusters, 100 ms apart.  Phase 1 traffic is homed in
    cluster 0 (which the initial rank order favours: the home is the lca of
    every multicast).  Phase 2 moves the clients to cluster 1 and pairs them
    with cluster-0 groups — on the stale overlay every submission now pays a
    WAN hop to reach its lca, while a re-planned order that ranks the new
    homes first delivers at the home immediately.
    """
    return WorkloadShiftScenario(
        name="workload-shift",
        cluster_sizes=(3, 3),
        initial_order=(0, 1, 2, 3, 4, 5),
        phase1=(
            TrafficPattern(home=0, partners=(1, 2), clients=4),
            TrafficPattern(home=1, partners=(0, 2), clients=2),
        ),
        phase2=(
            TrafficPattern(home=4, partners=(0, 1), clients=4),
            TrafficPattern(home=5, partners=(0, 2), clients=2),
        ),
        shift_ms=4_000.0,
        duration_ms=12_000.0,
        post_eval_ms=8_000.0,
        seed=seed,
    )


def figure9_table4_scenarios(scale: Scale = DEFAULT_SCALE) -> List[ExperimentConfig]:
    """Figure 9 / Table 4: hierarchical overhead for T1/T2/T3 at each locality."""
    configs = []
    for overlay in ("T1", "T2", "T3"):
        for locality in LOCALITY_RATES:
            configs.append(
                hierarchical_config(overlay=overlay, locality=locality, global_only=True)
            )
    return [scale.apply(c) for c in configs]
