"""Experiment runner: wires protocol + overlay + workload + simulator together.

``run_experiment`` is the single entry point every benchmark and example goes
through.  It deploys one group per AWS region on the simulated WAN, spreads
closed-loop gTPC-C clients over the regions, runs for the configured virtual
duration, lets in-flight transactions drain, and returns an
:class:`ExperimentResult` carrying everything the paper's figures need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.flexcast import FlexCastProtocol
from ..core.garbage import FlushCoordinator
from ..core.message import ClientRequest, ClientResponse, Message, PAYLOAD_KINDS
from ..metrics import LatencyCollector
from ..metrics.overhead import OverheadReport, compute_overhead
from ..overlay.base import GroupId
from ..overlay.builders import standard_overlays
from ..protocols.base import AtomicMulticastProtocol, RecordingSink
from ..protocols.hierarchical import HierarchicalProtocol
from ..protocols.skeen import SkeenProtocol
from ..sim.events import EventLoop
from ..sim.latencies import LatencyMatrix, aws_latency_matrix
from ..sim.network import Network, NodeTraffic
from ..sim.transport import SimTransport
from ..workload.clients import ClosedLoopClient, CompletedTransaction
from ..workload.gtpcc import GTPCCConfig, GTPCCWorkload
from .config import (
    ExperimentConfig,
    PROTOCOL_DISTRIBUTED,
    PROTOCOL_FLEXCAST,
    PROTOCOL_HIERARCHICAL,
)


def group_node(group_id: GroupId) -> GroupId:
    """Network node id used for a protocol group.

    Groups are addressed by their group id directly, because protocol code
    (FlexCast, Skeen, the tree protocol) sends envelopes to *group ids*;
    clients use string node ids so the namespaces never collide.
    """
    return group_id


def client_node(index: int) -> str:
    """Network node id used for a closed-loop client."""
    return f"client-{index}"


def build_protocol(
    config: ExperimentConfig, latencies: LatencyMatrix
) -> AtomicMulticastProtocol:
    """Instantiate the protocol + overlay pair described by ``config``."""
    overlays = standard_overlays(latencies)
    overlay = overlays[config.overlay]
    if config.protocol == PROTOCOL_FLEXCAST:
        return FlexCastProtocol(overlay)
    if config.protocol == PROTOCOL_HIERARCHICAL:
        return HierarchicalProtocol(overlay)
    if config.protocol == PROTOCOL_DISTRIBUTED:
        return SkeenProtocol(overlay)
    raise ValueError(f"unknown protocol {config.protocol!r}")


@dataclass
class ExperimentResult:
    """Everything measured during one run."""

    config: ExperimentConfig
    #: Latencies after trimming the warm-up/cool-down windows.
    latency: LatencyCollector
    #: Untrimmed latencies (kept for throughput and debugging).
    raw_latency: LatencyCollector
    throughput_ops_per_sec: float
    delivered_by_group: Dict[GroupId, int]
    payload_received_by_group: Dict[GroupId, int]
    overhead: OverheadReport
    traffic: Dict[GroupId, NodeTraffic]
    duration_ms: float
    issued: int
    completed: int
    #: Per-group delivery sequences (only when config.record_deliveries).
    deliveries: Optional[RecordingSink] = None
    #: The protocol groups themselves (for white-box assertions in tests).
    groups: Dict[GroupId, object] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.config.display_label

    def latency_table(self, ranks=(1, 2, 3), ps=(90, 95, 99)):
        """The paper's per-destination latency percentiles for this run."""
        return self.latency.percentile_table(ranks=ranks, ps=ps)


def run_experiment(
    config: ExperimentConfig, latencies: Optional[LatencyMatrix] = None
) -> ExperimentResult:
    """Run one experiment and return its measurements.

    The run is deterministic for a given (config, latency matrix) pair.
    """
    latencies = latencies or aws_latency_matrix()
    protocol = build_protocol(config, latencies)
    loop = EventLoop()
    network = Network(
        loop, latencies, jitter_ms=config.jitter_ms, seed=config.seed
    )

    delivered_by_group: Dict[GroupId, int] = {g: 0 for g in protocol.groups}
    recording = RecordingSink(clock=lambda: loop.now) if config.record_deliveries else None

    def sink(group_id: GroupId, message: Message) -> None:
        delivered_by_group[group_id] = delivered_by_group.get(group_id, 0) + 1
        if recording is not None:
            recording(group_id, message)
        sender = message.sender
        if network.is_registered(sender):
            network.send(
                group_node(group_id), sender, ClientResponse(msg_id=message.msg_id, group=group_id)
            )

    # ------------------------------------------------------------- groups
    groups: Dict[GroupId, object] = {}
    for gid in protocol.groups:
        node_id = group_node(gid)
        transport = SimTransport(network, node_id)
        group = protocol.create_group(gid, transport, sink)
        groups[gid] = group

        def handler(sender, envelope, group=group):
            group.on_envelope(sender, envelope)

        # Group `gid` is deployed in region `gid` (one warehouse per region).
        network.register(node_id, site=gid, handler=handler)

    # ------------------------------------------------------------- workload
    workload = GTPCCWorkload(
        latencies,
        GTPCCConfig(locality=config.locality, global_only=config.global_only),
    )
    collector = LatencyCollector()

    def on_complete(txn: CompletedTransaction) -> None:
        collector.record(txn)

    clients: List[ClosedLoopClient] = []
    num_groups = len(protocol.groups)
    for i in range(config.num_clients):
        home = protocol.groups[i % num_groups]
        client = ClosedLoopClient(
            client_id=client_node(i),
            home=home,
            protocol=protocol,
            workload=workload,
            network=network,
            rng=random.Random(config.seed * 100_003 + i),
            group_node=group_node,
            on_complete=on_complete,
            stop_after_ms=config.duration_ms,
            think_time_ms=config.think_time_ms,
        )
        clients.append(client)

    # --------------------------------------------------- garbage collection
    flush_coordinator: Optional[FlushCoordinator] = None
    if config.protocol == PROTOCOL_FLEXCAST and config.gc_interval_ms:
        coordinator_node = "flush-coordinator"
        network.register(
            coordinator_node, site=latencies.centroid_site(), handler=lambda s, p: None
        )

        def submit_flush(message: Message) -> None:
            entry = protocol.entry_groups(message)[0]
            network.send(coordinator_node, group_node(entry), ClientRequest(message))

        flush_coordinator = FlushCoordinator(
            loop,
            groups=list(protocol.groups),
            submit=submit_flush,
            interval_ms=config.gc_interval_ms,
            sender_id=coordinator_node,
        )
        flush_coordinator.start()

    # ------------------------------------------------------------------ run
    for client in clients:
        client.start()
    loop.run(until=config.duration_ms)
    for client in clients:
        client.stop()
    if flush_coordinator is not None:
        flush_coordinator.stop()
    # Drain in-flight transactions so closed-loop calls complete.
    loop.run_until_idle()

    # -------------------------------------------------------------- metrics
    payload_received: Dict[GroupId, int] = {}
    traffic: Dict[GroupId, NodeTraffic] = {}
    for gid in protocol.groups:
        stats = network.traffic(group_node(gid))
        traffic[gid] = stats
        payload_received[gid] = sum(
            count for kind, count in stats.received_by_kind.items() if kind in PAYLOAD_KINDS
        )

    overhead = compute_overhead(delivered_by_group, payload_received, protocol.groups)
    trimmed = collector.trimmed(config.warmup_fraction)

    return ExperimentResult(
        config=config,
        latency=trimmed,
        raw_latency=collector,
        throughput_ops_per_sec=collector.throughput_ops_per_sec(),
        delivered_by_group=delivered_by_group,
        payload_received_by_group=payload_received,
        overhead=overhead,
        traffic=traffic,
        duration_ms=config.duration_ms,
        issued=sum(c.issued for c in clients),
        completed=sum(c.completed for c in clients),
        deliveries=recording,
        groups=groups,
    )
