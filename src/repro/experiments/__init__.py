"""Evaluation harness: configurations, runner and figure regeneration."""

from .config import (
    ExperimentConfig,
    PROTOCOL_DISTRIBUTED,
    PROTOCOL_FLEXCAST,
    PROTOCOL_HIERARCHICAL,
    distributed_config,
    flexcast_config,
    hierarchical_config,
)
from .figures import ALL_FIGURES, FigureResult, run_all
from .runner import ExperimentResult, build_protocol, run_experiment
from .scenarios import (
    DEFAULT_SCALE,
    LOCALITY_RATES,
    Scale,
    THROUGHPUT_CLIENT_COUNTS,
)

__all__ = [
    "ExperimentConfig",
    "PROTOCOL_DISTRIBUTED",
    "PROTOCOL_FLEXCAST",
    "PROTOCOL_HIERARCHICAL",
    "distributed_config",
    "flexcast_config",
    "hierarchical_config",
    "ALL_FIGURES",
    "FigureResult",
    "run_all",
    "ExperimentResult",
    "build_protocol",
    "run_experiment",
    "DEFAULT_SCALE",
    "LOCALITY_RATES",
    "Scale",
    "THROUGHPUT_CLIENT_COUNTS",
]
