"""Evaluation harness: configurations, runner and figure regeneration.

What lives here: the paper's experiment matrix as data.  The main entry
points are :class:`ExperimentConfig` (one fully specified run: protocol,
overlay, workload, scale) with the :func:`flexcast_config` /
:func:`distributed_config` / :func:`hierarchical_config` builders,
:func:`run_experiment` (deploy on the simulator, drive closed-loop
clients, return an :class:`ExperimentResult`), and :func:`run_all` /
``ALL_FIGURES`` in :mod:`~repro.experiments.figures` to regenerate every
figure/table at reduced scale.
"""

from .config import (
    ExperimentConfig,
    PROTOCOL_DISTRIBUTED,
    PROTOCOL_FLEXCAST,
    PROTOCOL_HIERARCHICAL,
    distributed_config,
    flexcast_config,
    hierarchical_config,
)
from .figures import ALL_FIGURES, FigureResult, run_all
from .runner import ExperimentResult, build_protocol, run_experiment
from .scenarios import (
    DEFAULT_SCALE,
    LOCALITY_RATES,
    Scale,
    THROUGHPUT_CLIENT_COUNTS,
)

__all__ = [
    "ExperimentConfig",
    "PROTOCOL_DISTRIBUTED",
    "PROTOCOL_FLEXCAST",
    "PROTOCOL_HIERARCHICAL",
    "distributed_config",
    "flexcast_config",
    "hierarchical_config",
    "ALL_FIGURES",
    "FigureResult",
    "run_all",
    "ExperimentResult",
    "build_protocol",
    "run_experiment",
    "DEFAULT_SCALE",
    "LOCALITY_RATES",
    "Scale",
    "THROUGHPUT_CLIENT_COUNTS",
]
