"""Replicated atomic multicast groups (paper §4.4).

The evaluation in the paper runs single-process groups to isolate protocol
costs, but the fault-tolerance story is state machine replication inside every
group: "processes within a group are kept consistent using state machine
replication ... groups do not fail as a whole".

:class:`ReplicatedGroup` provides exactly that wrapper on top of the
:class:`~repro.smr.multipaxos.MultiPaxosReplica` log:

* every envelope addressed to the logical group is first submitted to the
  group's replicated log (by whichever replica received it);
* once a log position commits, **every** replica applies the envelope to its
  own copy of the protocol state machine (FlexCast/Skeen/tree group logic), so
  all replicas stay in sync;
* only the current leader's copy actually emits outbound protocol messages and
  client responses — otherwise descendants/clients would receive duplicates;
  after a fail-over, the new leader's copy continues from the same applied
  state, because it applied the same log prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from ..core.message import ClientRequest, Envelope, Message
from ..obs import Observability
from ..overlay.base import GroupId
from ..protocols.base import AtomicMulticastGroup, AtomicMulticastProtocol, DeliverySink
from ..sim.transport import Transport
from .multipaxos import MultiPaxosReplica, ReplicaId


@dataclass(frozen=True)
class OrderedEnvelope:
    """Log entry: an envelope (plus its original sender) ordered by the group."""

    sender: Hashable
    envelope: Envelope

    def size_bytes(self) -> int:
        return 16 + self.envelope.size_bytes()


def _entry_to_wire(entry: Any) -> Any:
    """Encode a log entry for the WAL (JSON-able), via the runtime codec.

    Non-envelope values (tests submit plain strings) pass through untouched.
    """
    if not isinstance(entry, OrderedEnvelope):
        return entry
    from ..runtime.codec import envelope_to_dict

    return {"__oe__": 1, "sender": entry.sender, "envelope": envelope_to_dict(entry.envelope)}


def _entry_from_wire(wire: Any) -> Any:
    if not (isinstance(wire, dict) and wire.get("__oe__") == 1):
        return wire
    from ..runtime.codec import envelope_from_dict

    return OrderedEnvelope(
        sender=wire["sender"], envelope=envelope_from_dict(wire["envelope"])
    )


class _GatedTransport(Transport):
    """Transport wrapper that drops outbound traffic unless the gate is open.

    Replicas all apply every envelope to their protocol copy; only the leader
    may let the resulting outbound messages reach the network.
    """

    def __init__(self, inner: Transport) -> None:
        self._inner = inner
        self.open = False

    def send(self, dst, payload) -> None:
        if self.open:
            self._inner.send(dst, payload)

    def now(self) -> float:
        return self._inner.now()

    def schedule(self, delay_ms: float, callback: Callable[[], None]):
        return self._inner.schedule(delay_ms, callback)


class GroupReplica:
    """One physical replica of a logical group."""

    def __init__(
        self,
        group_id: GroupId,
        replica_id: ReplicaId,
        peer_replicas: Sequence[ReplicaId],
        protocol: AtomicMulticastProtocol,
        transport: Transport,
        sink: DeliverySink,
        reported: Optional[set] = None,
        storage: Optional[Any] = None,
    ) -> None:
        self.group_id = group_id
        self.replica_id = replica_id
        self._gated = _GatedTransport(transport)
        self._outer_transport = transport
        #: Message ids already reported to the application, shared across the
        #: logical group's replicas.  Around a fail-over, the old leader may
        #: apply a committed instance (and report it) while a follower that
        #: just took over applies the same instance later, when *it* is the
        #: leader — without the shared set the application would see the
        #: delivery twice.
        self._reported = reported if reported is not None else set()
        #: Set by :meth:`ReplicatedGroup.crash_replica`: a crashed incarnation
        #: must never report deliveries, even if a stale timer still fires.
        self.dead = False
        #: This replica's own delivery order, as produced by its protocol copy
        #: (leaders and followers alike, before the leader gate).  After a
        #: restart it is rebuilt by the WAL replay — deterministically, since
        #: it is a pure function of the replicated log — which is exactly what
        #: the recovery oracle checks across the restart boundary.
        self.local_deliveries: List[str] = []
        # Each replica holds its own copy of the protocol state machine.
        self.protocol_state: AtomicMulticastGroup = protocol.create_group(
            group_id, self._gated, self._make_sink(sink)
        )
        self.applied: List[OrderedEnvelope] = []
        acceptor_wal = log_wal = None
        if storage is not None:
            acceptor_wal = storage.wal(f"{replica_id}.acceptor")
            log_wal = storage.wal(f"{replica_id}.log")
        # While the commit WAL replays (inside the MultiPaxosReplica
        # constructor) the replica re-applies its pre-crash log prefix: the
        # outbound gate stays shut and nothing is reported — peers and
        # clients saw those effects before the crash.
        self._recovering = True
        self.smr = MultiPaxosReplica(
            replica_id=replica_id,
            peers=peer_replicas,
            transport=transport,
            apply=self._apply,
            acceptor_wal=acceptor_wal,
            log_wal=log_wal,
            encode_value=_entry_to_wire,
            decode_value=_entry_from_wire,
        )
        self._recovering = False

    def _make_sink(self, sink: DeliverySink) -> DeliverySink:
        def gated_sink(group_id: GroupId, message: Message) -> None:
            # Every replica records the delivery locally (state machine), but
            # only the leader reports it to the outside world — exactly once
            # per message, even when leadership changes mid-instance.
            self.local_deliveries.append(message.msg_id)
            if self.dead or self._recovering:
                return
            if self.smr.is_leader and message.msg_id not in self._reported:
                self._reported.add(message.msg_id)
                sink(group_id, message)

        return gated_sink

    # ------------------------------------------------------------- networking
    def on_message(self, sender: Hashable, payload: Any) -> None:
        """Entry point for everything arriving at this replica.

        Protocol envelopes (from clients or other groups) are ordered through
        the group's log; SMR-internal messages go straight to multi-Paxos.
        """
        if self.dead:
            return
        if isinstance(payload, Envelope):
            self.smr.submit(OrderedEnvelope(sender=sender, envelope=payload))
        else:
            self.smr.on_message(sender, payload)

    def _apply(self, instance: int, entry: OrderedEnvelope) -> None:
        self.applied.append(entry)
        # During WAL replay self.smr is still mid-construction; the recovery
        # check must short-circuit first (the gate stays shut regardless).
        self._gated.open = not self._recovering and self.smr.is_leader
        try:
            self.protocol_state.on_envelope(entry.sender, entry.envelope)
        finally:
            self._gated.open = False

    # ---------------------------------------------------------- observability
    def attach_obs(self, obs: Observability) -> None:
        """Attach an observability hub to this replica.

        Wires the protocol copy's group instrumentation and exposes the
        multi-Paxos counters (ballot churn, catch-up traffic) labelled by
        group and replica.
        """
        self.protocol_state.attach_obs(obs)
        self.smr.register_metrics(
            obs.registry,
            {"group": str(self.group_id), "replica": str(self.replica_id)},
        )

    # -------------------------------------------------------------- failover
    def mark_failed(self, replica: ReplicaId) -> None:
        self.smr.mark_failed(replica)

    def rejoin(self) -> None:
        """Announce the restarted replica to its peers and catch up the delta."""
        self.smr.rejoin()

    @property
    def is_leader(self) -> bool:
        return self.smr.is_leader


def replica_node(group_id: GroupId, index: int) -> str:
    """Network node id of replica ``index`` of group ``group_id``."""
    return f"group-{group_id}-replica-{index}"


class ReplicatedGroup:
    """A logical group made of ``replication_factor`` replicas.

    This is the deployment helper used by tests and the fault-tolerance
    example: it registers every replica on the simulated network and exposes
    the logical group through its current leader.
    """

    def __init__(
        self,
        group_id: GroupId,
        protocol: AtomicMulticastProtocol,
        network,
        site: int,
        sink: DeliverySink,
        replication_factor: int = 3,
        storage: Optional[Any] = None,
    ) -> None:
        if replication_factor < 1:
            raise ValueError("replication factor must be at least 1")
        self.group_id = group_id
        self.replicas: List[GroupReplica] = []
        self._crashed_indices: set = set()
        replica_ids = [replica_node(group_id, i) for i in range(replication_factor)]
        reported: set = set()
        # Kept for restart_replica: a rebooted replica is built from the same
        # ingredients (and the same storage) as its crashed incarnation.
        self._protocol = protocol
        self._site = site
        self._sink = sink
        self._reported = reported
        self._replica_ids = replica_ids
        self._storage = storage
        self._obs: Optional[Observability] = None
        for replica_id in replica_ids:
            transport = _ReplicaTransport(network, replica_id, group_id, replica_ids)
            replica = GroupReplica(
                group_id=group_id,
                replica_id=replica_id,
                peer_replicas=replica_ids,
                protocol=protocol,
                transport=transport,
                sink=sink,
                reported=reported,
                storage=storage,
            )
            self.replicas.append(replica)
            network.register(replica_id, site=site, handler=replica.on_message)

    def attach_obs(self, obs: Observability) -> None:
        """Attach an observability hub to every replica of this group.

        Restarted replicas (see :meth:`restart_replica`) re-attach
        automatically: callback re-registration re-binds the series to the
        new incarnation.
        """
        self._obs = obs
        for index, replica in enumerate(self.replicas):
            if index not in self._crashed_indices:
                replica.attach_obs(obs)

    @property
    def leader(self) -> GroupReplica:
        for index, replica in enumerate(self.replicas):
            if index in self._crashed_indices:
                continue
            if replica.is_leader:
                return replica
        # All replicas crashed (or none claims leadership): fall back to the
        # first survivor so callers still get a deterministic answer.
        for index, replica in enumerate(self.replicas):
            if index not in self._crashed_indices:
                return replica
        return self.replicas[0]

    def crash_replica(self, index: int, network) -> None:
        """Crash one replica: unregister it and inform the survivors."""
        victim = self.replicas[index]
        self._crashed_indices.add(index)
        victim.dead = True
        network.unregister(victim.replica_id)
        for replica in self.replicas:
            if replica is not victim:
                replica.mark_failed(victim.replica_id)

    def restart_replica(self, index: int, network) -> GroupReplica:
        """Reboot a crashed replica from its persisted state.

        A *fresh* :class:`GroupReplica` is constructed — the crashed object is
        discarded, so everything the new incarnation knows comes from the
        shared storage (acceptor WAL, commit log, and, transitively, the
        protocol state rebuilt by replaying the log).  The new replica is
        re-registered on the network, announces itself to the survivors, and
        catches up decisions made while it was down.
        """
        if index not in self._crashed_indices:
            raise ValueError(f"replica {index} is not crashed")
        replica_id = self._replica_ids[index]
        transport = _ReplicaTransport(network, replica_id, self.group_id, self._replica_ids)
        replica = GroupReplica(
            group_id=self.group_id,
            replica_id=replica_id,
            peer_replicas=self._replica_ids,
            protocol=self._protocol,
            transport=transport,
            sink=self._sink,
            reported=self._reported,
            storage=self._storage,
        )
        self.replicas[index] = replica
        self._crashed_indices.discard(index)
        network.register(replica_id, site=self._site, handler=replica.on_message)
        if self._obs is not None:
            replica.attach_obs(self._obs)
        replica.rejoin()
        self._offer_snapshot_catchup(replica)
        return replica

    def _offer_snapshot_catchup(self, rejoined: GroupReplica) -> None:
        """Order a packed history snapshot through the log for a rejoiner.

        The current leader's protocol copy packs its live history into a
        ``history-snapshot`` frame (:func:`repro.storage.recovery.snapshot_frame_for`)
        and submits it like any other envelope, so the rejoined replica
        bulk-installs the missing history in one O(affected) merge instead
        of accumulating per-entry deltas.  Routing it *through* the log
        keeps every replica's protocol state a pure function of the log
        (the recovery oracle's invariant): survivors apply the same frame
        and no-op on the idempotent merge.
        """
        leader = self.leader
        if leader is rejoined:
            return
        state = leader.protocol_state
        if not hasattr(state, "history") or len(state.history) == 0:
            return
        from ..storage.recovery import snapshot_frame_for

        frame = snapshot_frame_for(state, epoch=getattr(state, "epoch", 0))
        if not frame.delta.is_empty:
            leader.on_message("rejoin-catchup", frame)

    def delivered_sequences(self) -> Dict[ReplicaId, List[str]]:
        """Delivery order applied at each replica (for consistency checks)."""
        sequences: Dict[ReplicaId, List[str]] = {}
        for replica in self.replicas:
            ids = [
                entry.envelope.message.msg_id
                for entry in replica.applied
                if isinstance(entry.envelope, ClientRequest)
            ]
            sequences[replica.replica_id] = ids
        return sequences


class _ReplicaTransport(Transport):
    """Transport for a replica: group-level destinations go to the peer
    group's *first* replica (its default leader); replica-level destinations go
    directly to that replica."""

    def __init__(self, network, node_id: str, group_id: GroupId, peer_replicas) -> None:
        self._network = network
        self._node_id = node_id
        self._group_id = group_id
        self._peer_replicas = list(peer_replicas)

    def send(self, dst, payload) -> None:
        if isinstance(dst, str) and dst.startswith("group-") and "-replica-" in dst:
            target = dst
        elif dst in self._peer_replicas:
            target = dst
        elif isinstance(dst, int):
            # Another logical group: address its replica 0 (default leader).
            target = replica_node(dst, 0)
            if not self._network.is_registered(target):
                return
        else:
            target = dst
        if self._network.is_registered(target):
            self._network.send(self._node_id, target, payload)

    def now(self) -> float:
        return self._network.loop.now

    def schedule(self, delay_ms: float, callback: Callable[[], None]):
        return self._network.loop.schedule(delay_ms, callback)
