"""Multi-Paxos replicated log.

A group in FlexCast (and in the baseline protocols) is "a reliable entity
whose logic is replicated within the group using state machine replication"
(§4.4).  :class:`MultiPaxosReplica` provides that substrate: a set of replicas
agree on a totally ordered log of commands; each replica applies committed
commands, in log order, to an application callback.

Design points (kept simple on purpose — this is the substrate, not the paper's
contribution):

* a stable leader (lowest-id live replica) runs phase 1 lazily per instance
  and drives phase 2; followers forward client commands to the leader;
* every replica is also an acceptor and a learner;
* commit notifications are piggybacked as explicit ``Commit`` messages from
  the leader, so followers apply commands without observing quorums
  themselves;
* leader failure is handled by an explicit ``fail_over`` trigger (tests) or by
  a heartbeat timeout when running on the simulator with timers enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..obs.registry import MetricsRegistry
from ..sim.transport import Transport
from .paxos import Accept, Accepted, Acceptor, Ballot, Nack, Prepare, Promise, Proposer

ReplicaId = Hashable
ApplyCallback = Callable[[int, Any], None]


@dataclass(frozen=True)
class ClientCommand:
    """A command submitted to the replicated log."""

    payload: Any
    kind: str = field(default="smr-command", init=False)

    def size_bytes(self) -> int:
        from ..sim.network import payload_size

        return 32 + payload_size(self.payload)


@dataclass(frozen=True)
class Commit:
    """Leader -> followers: instance ``instance`` decided on ``value``."""

    instance: int
    value: Any
    kind: str = field(default="smr-commit", init=False)

    def size_bytes(self) -> int:
        from ..sim.network import payload_size

        return 40 + payload_size(self.value)


@dataclass(frozen=True)
class Heartbeat:
    """Leader liveness signal (also re-announces the current leader)."""

    leader: ReplicaId
    kind: str = field(default="smr-heartbeat", init=False)

    def size_bytes(self) -> int:
        return 24


@dataclass(frozen=True)
class CatchupRequest:
    """Rejoining replica -> peer: send me every decision from ``from_instance``."""

    from_instance: int
    from_replica: ReplicaId
    kind: str = field(default="smr-catchup", init=False)

    def size_bytes(self) -> int:
        return 32


# Decisions per CatchupReply.  A rejoining replica that lapsed for hundreds
# of thousands of instances must not receive them as one message: over the
# wire transport a single reply would exceed the frame-size cap.  Chunks are
# applied independently (``_learn`` is idempotent and order-tolerant), so
# losing one chunk degrades to a smaller catch-up, never a corrupt one.
CATCHUP_CHUNK = 2048


@dataclass(frozen=True)
class CatchupReply:
    """Peer -> rejoining replica: the requested ``(instance, value)`` decisions."""

    entries: Tuple[Tuple[int, Any], ...]
    kind: str = field(default="smr-catchup-reply", init=False)

    def size_bytes(self) -> int:
        from ..sim.network import payload_size

        return 32 + sum(12 + payload_size(value) for _, value in self.entries)


class MultiPaxosReplica:
    """One replica of a replicated log.

    Parameters
    ----------
    replica_id:
        This replica's id (hashable; ordering of ids defines the default
        leader — the smallest id).
    peers:
        Ids of *all* replicas in the group, including this one.
    transport:
        Outbound channel to the other replicas.
    apply:
        Callback ``apply(instance, command_payload)`` invoked exactly once per
        committed log position, in order.
    """

    def __init__(
        self,
        replica_id: ReplicaId,
        peers: Sequence[ReplicaId],
        transport: Transport,
        apply: ApplyCallback,
        acceptor_wal: Optional[Any] = None,
        log_wal: Optional[Any] = None,
        encode_value: Optional[Callable[[Any], Any]] = None,
        decode_value: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        if replica_id not in peers:
            raise ValueError("replica_id must be listed in peers")
        self.replica_id = replica_id
        self.peers: List[ReplicaId] = sorted(peers, key=str)
        self.transport = transport
        self._apply = apply
        self.quorum_size = len(self.peers) // 2 + 1

        self._encode_value = encode_value or (lambda value: value)
        self._decode_value = decode_value or (lambda value: value)
        # Durable acceptor state (Paxos safety across restarts) and a commit
        # log of decided instances (so a restarted replica re-applies its
        # prefix without touching the network).  Both optional.
        self.acceptor = Acceptor(
            replica_id,
            wal=acceptor_wal,
            encode_value=self._encode_value,
            decode_value=self._decode_value,
        )
        self._log_wal = log_wal
        self._proposers: Dict[int, Proposer] = {}
        self._proposer_index = self.peers.index(replica_id)
        self._next_instance = 0
        #: instance -> command this replica originally proposed there.  After
        #: a fail-over the new leader can be forced (by Paxos) to adopt an old
        #: accepted value for an instance; the command it meant to propose is
        #: then *displaced* and must be re-proposed at a fresh instance, or it
        #: would be silently lost.
        self._submitted: Dict[int, Any] = {}
        self._decided: Dict[int, Any] = {}
        self._applied_up_to = -1
        self._pending_commands: List[Any] = []
        #: Replicas believed to be alive (failure detection input).
        self.alive: Set[ReplicaId] = set(self.peers)
        self.stats = {
            "proposed": 0,
            "committed": 0,
            "forwarded": 0,
            "nacks": 0,
            # Ballot churn: instances re-run with a higher ballot after a
            # nack (contention / fail-over pressure).
            "ballot_retries": 0,
            # Catch-up traffic: requests this replica answered and entry
            # volume in both directions (rejoin cost).
            "catchup_served": 0,
            "catchup_entries_sent": 0,
            "catchup_entries_applied": 0,
        }
        #: Log length recovered from the commit WAL at construction.
        self.recovered_instances = 0
        if log_wal is not None:
            for record in log_wal.records():
                if record[0] != "c":
                    raise ValueError(f"unknown commit WAL record kind: {record[0]!r}")
                self._decided[record[1]] = self._decode_value(record[2])
            if self._decided:
                self._next_instance = max(self._decided) + 1
            self.recovered_instances = len(self._decided)
            while self._applied_up_to + 1 in self._decided:
                self._applied_up_to += 1
                self._apply(self._applied_up_to, self._decided[self._applied_up_to])

    # ---------------------------------------------------------- observability
    def register_metrics(
        self, registry: MetricsRegistry, labels: Optional[Dict[str, str]] = None
    ) -> None:
        """Expose this replica's counters on ``registry`` (repro.obs).

        All series are pull-based callbacks over :attr:`stats` and the log
        book-keeping the replica already maintains, so registration adds no
        hot-path cost.  Ballot churn shows up as ``smr_ballot_retries_total``;
        catch-up traffic as the three ``smr_catchup_*_total`` counters.
        """
        labels = dict(labels or {})
        labels.setdefault("replica", str(self.replica_id))
        for key in self.stats:
            registry.counter(
                f"smr_{key}_total",
                f"Multi-Paxos replica event count: {key.replace('_', ' ')}.",
                labels,
                fn=(lambda k=key: self.stats[k]),
            )
        registry.gauge(
            "smr_decided_instances",
            "Log instances this replica knows the decision for.",
            labels,
            fn=lambda: len(self._decided),
        )
        registry.gauge(
            "smr_applied_up_to",
            "Highest contiguously applied log instance (-1 = none).",
            labels,
            fn=lambda: self._applied_up_to,
        )
        registry.gauge(
            "smr_open_proposers",
            "Paxos instances this replica is still driving.",
            labels,
            fn=lambda: len(self._proposers),
        )
        registry.gauge(
            "smr_pending_commands",
            "Commands stashed awaiting forwarding / re-proposal.",
            labels,
            fn=lambda: len(self._pending_commands),
        )

    # ------------------------------------------------------------- leadership
    @property
    def leader(self) -> ReplicaId:
        """Current leader: the smallest replica id believed alive."""
        live = [p for p in self.peers if p in self.alive]
        return live[0] if live else self.replica_id

    @property
    def is_leader(self) -> bool:
        return self.leader == self.replica_id

    def mark_failed(self, replica: ReplicaId) -> None:
        """Failure-detector input: ``replica`` is considered crashed.

        If the crashed replica was the leader, this replica may become the new
        leader and will re-propose any undecided pending commands.
        """
        self.alive.discard(replica)
        if self.is_leader:
            commands, self._pending_commands = self._pending_commands, []
            for command in commands:
                self.submit(command)

    def mark_alive(self, replica: ReplicaId) -> None:
        self.alive.add(replica)

    def rejoin(self) -> None:
        """Announce this (restarted) replica and pull the decided suffix.

        Called after construction replayed the local WALs: peers learn we are
        alive again (their failure detectors re-admit us, possibly handing
        leadership back), and a catch-up round fills every decision made
        while we were down.  Both messages are idempotent, so racing with
        in-flight traffic is harmless.
        """
        for peer in self.peers:
            if peer == self.replica_id:
                continue
            self.transport.send(peer, Heartbeat(leader=self.replica_id))
            self.transport.send(
                peer,
                CatchupRequest(
                    from_instance=self._applied_up_to + 1,
                    from_replica=self.replica_id,
                ),
            )

    # ------------------------------------------------------------ client path
    def submit(self, command: Any) -> None:
        """Submit a command for total ordering.

        Leaders start a Paxos instance for it; followers forward it to the
        leader (and stash a copy so it can be re-proposed after fail-over).
        """
        if self.is_leader:
            self._propose(command)
        else:
            self._pending_commands.append(command)
            self.stats["forwarded"] += 1
            self.transport.send(self.leader, ClientCommand(payload=command))

    def _propose(self, command: Any) -> None:
        instance = self._next_instance
        self._next_instance += 1
        ballot = Ballot(round=0, proposer=self._proposer_index)
        proposer = Proposer(
            instance=instance, ballot=ballot, value=command, quorum_size=self.quorum_size
        )
        self._proposers[instance] = proposer
        self._submitted[instance] = command
        self.stats["proposed"] += 1
        self._broadcast(proposer.prepare_message())

    def _retry(self, instance: int) -> None:
        """Re-run an instance with a higher ballot after a nack."""
        self.stats["ballot_retries"] += 1
        old = self._proposers[instance]
        new_ballot = Ballot(
            round=max(old.ballot.round, (old.preempted_by or old.ballot).round) + 1,
            proposer=self._proposer_index,
        )
        proposer = Proposer(
            instance=instance,
            ballot=new_ballot,
            value=old.value,
            quorum_size=self.quorum_size,
        )
        self._proposers[instance] = proposer
        self._broadcast(proposer.prepare_message())

    # -------------------------------------------------------------- messaging
    def _broadcast(self, message: Any) -> None:
        for peer in self.peers:
            if peer == self.replica_id:
                self._handle_local(message)
            elif peer in self.alive:
                # Crashed replicas are skipped; quorums among the survivors
                # are enough as long as a majority remains (Paxos guarantee).
                self.transport.send(peer, message)

    def _handle_local(self, message: Any) -> None:
        # The proposer is its own acceptor; loop the message back directly.
        self.on_message(self.replica_id, message)

    def on_message(self, sender: ReplicaId, message: Any) -> None:
        """Network entry point: dispatch every SMR-related message."""
        if isinstance(message, ClientCommand):
            self.submit(message.payload)
        elif isinstance(message, Prepare):
            reply = self.acceptor.on_prepare(message)
            self._reply(sender, reply)
        elif isinstance(message, Accept):
            reply = self.acceptor.on_accept(message)
            self._reply(sender, reply)
        elif isinstance(message, Promise):
            self._on_promise(message)
        elif isinstance(message, Accepted):
            self._on_accepted(message)
        elif isinstance(message, Nack):
            self._on_nack(message)
        elif isinstance(message, Commit):
            self._learn(message.instance, message.value)
        elif isinstance(message, Heartbeat):
            self.mark_alive(message.leader)
        elif isinstance(message, CatchupRequest):
            entries = tuple(
                (instance, value)
                for instance, value in sorted(self._decided.items())
                if instance >= message.from_instance
            )
            if entries:
                self.stats["catchup_served"] += 1
                self.stats["catchup_entries_sent"] += len(entries)
                for start in range(0, len(entries), CATCHUP_CHUNK):
                    self.transport.send(
                        message.from_replica,
                        CatchupReply(entries=entries[start:start + CATCHUP_CHUNK]),
                    )
        elif isinstance(message, CatchupReply):
            self.stats["catchup_entries_applied"] += len(message.entries)
            for instance, value in message.entries:
                self._learn(instance, value)
        else:
            raise TypeError(f"unexpected SMR message {message!r}")

    def _reply(self, sender: ReplicaId, reply: Any) -> None:
        if sender == self.replica_id:
            self.on_message(self.replica_id, reply)
        else:
            self.transport.send(sender, reply)

    # ------------------------------------------------------------- proposer side
    def _on_promise(self, promise: Promise) -> None:
        proposer = self._proposers.get(promise.instance)
        if proposer is None:
            return
        if proposer.on_promise(promise):
            self._broadcast(proposer.accept_message())

    def _on_accepted(self, accepted: Accepted) -> None:
        proposer = self._proposers.get(accepted.instance)
        if proposer is None:
            return
        if proposer.on_accepted(accepted):
            self.stats["committed"] += 1
            self._learn(accepted.instance, proposer.value)
            for peer in self.peers:
                if peer != self.replica_id and peer in self.alive:
                    self.transport.send(
                        peer, Commit(instance=accepted.instance, value=proposer.value)
                    )

    def _on_nack(self, nack: Nack) -> None:
        proposer = self._proposers.get(nack.instance)
        if proposer is None or proposer.chosen:
            return
        self.stats["nacks"] += 1
        proposer.on_nack(nack)
        self._retry(nack.instance)

    # ---------------------------------------------------------------- learner
    def _learn(self, instance: int, value: Any) -> None:
        if instance in self._decided:
            return
        self._decided[instance] = value
        if self._log_wal is not None:
            # Persist the decision before applying it: after a restart the
            # replica replays exactly the prefix it already exposed.
            self._log_wal.append(["c", instance, self._encode_value(value)])
        self._next_instance = max(self._next_instance, instance + 1)
        # A follower stashes forwarded commands so it can re-propose them after
        # a leader crash; once a command is decided it must not be re-proposed.
        self._pending_commands = [c for c in self._pending_commands if c != value]
        # Apply every contiguous decided instance exactly once, in order.
        while self._applied_up_to + 1 in self._decided:
            self._applied_up_to += 1
            self._apply(self._applied_up_to, self._decided[self._applied_up_to])
        # If Paxos forced this instance to decide an *older* accepted value,
        # the command we meant to place here was displaced: give it a fresh
        # instance (unless some other instance decided it meanwhile).
        displaced = self._submitted.pop(instance, None)
        if (
            displaced is not None
            and displaced != value
            and displaced not in self._decided.values()
        ):
            self.submit(displaced)

    # ------------------------------------------------------------- inspection
    @property
    def log(self) -> List[Any]:
        """The applied prefix of the replicated log."""
        return [self._decided[i] for i in range(self._applied_up_to + 1)]

    def decided_count(self) -> int:
        return len(self._decided)
