"""State machine replication substrate: Paxos, multi-Paxos, replicated groups."""

from .multipaxos import ClientCommand, Commit, Heartbeat, MultiPaxosReplica
from .paxos import (
    Accept,
    Accepted,
    Acceptor,
    Ballot,
    Nack,
    Prepare,
    Promise,
    Proposer,
    ZERO_BALLOT,
)
from .replica import GroupReplica, OrderedEnvelope, ReplicatedGroup, replica_node

__all__ = [
    "ClientCommand",
    "Commit",
    "Heartbeat",
    "MultiPaxosReplica",
    "Accept",
    "Accepted",
    "Acceptor",
    "Ballot",
    "Nack",
    "Prepare",
    "Promise",
    "Proposer",
    "ZERO_BALLOT",
    "GroupReplica",
    "OrderedEnvelope",
    "ReplicatedGroup",
    "replica_node",
]
