"""State machine replication substrate: Paxos, multi-Paxos, replicated groups.

What lives here: the intra-group fault-tolerance layer the paper abstracts
away ("each group is a replicated state machine").  The main entry point is
:class:`ReplicatedGroup`, which wraps any protocol group in a
:class:`MultiPaxosReplica` ensemble so envelopes are applied through a
replicated log and survive leader crashes (exactly-once per logical group,
displaced commands re-proposed after fail-over — both pinned by the fuzz
crash profile).  :mod:`~repro.smr.paxos` holds the single-decree roles the
multi-Paxos log is built from.
"""

from .multipaxos import ClientCommand, Commit, Heartbeat, MultiPaxosReplica
from .paxos import (
    Accept,
    Accepted,
    Acceptor,
    Ballot,
    Nack,
    Prepare,
    Promise,
    Proposer,
    ZERO_BALLOT,
)
from .replica import GroupReplica, OrderedEnvelope, ReplicatedGroup, replica_node

__all__ = [
    "ClientCommand",
    "Commit",
    "Heartbeat",
    "MultiPaxosReplica",
    "Accept",
    "Accepted",
    "Acceptor",
    "Ballot",
    "Nack",
    "Prepare",
    "Promise",
    "Proposer",
    "ZERO_BALLOT",
    "GroupReplica",
    "OrderedEnvelope",
    "ReplicatedGroup",
    "replica_node",
]
