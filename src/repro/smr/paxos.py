"""Single-decree Paxos.

Paper §4.4: FlexCast (like the other atomic multicast protocols it is compared
against) tolerates failures by replicating each group with state machine
replication; the paper explicitly mentions Paxos as the consensus protocol
used inside a group.  This module implements the single-decree synod protocol
(prepare/promise, accept/accepted) used by the multi-Paxos log in
:mod:`repro.smr.multipaxos`.

The implementation is transport-agnostic: an :class:`Acceptor` is a pure state
machine, and :class:`Proposer` drives one ballot.  Both are deliberately free
of timers; leader election and retries live one level up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

ReplicaId = Any
ValueCodec = Callable[[Any], Any]


@dataclass(frozen=True)
class Ballot:
    """A totally ordered ballot number: (round, proposer id)."""

    round: int
    proposer: int

    def __lt__(self, other: "Ballot") -> bool:
        return (self.round, self.proposer) < (other.round, other.proposer)

    def __le__(self, other: "Ballot") -> bool:
        return (self.round, self.proposer) <= (other.round, other.proposer)

    def next(self) -> "Ballot":
        return Ballot(self.round + 1, self.proposer)


#: The "no ballot yet" sentinel, smaller than every real ballot.
ZERO_BALLOT = Ballot(-1, -1)


# ------------------------------------------------------------------ wire types
@dataclass(frozen=True)
class Prepare:
    """Phase 1a: a proposer asks acceptors to promise ballot ``ballot``."""

    instance: int
    ballot: Ballot
    kind: str = field(default="paxos-prepare", init=False)

    def size_bytes(self) -> int:
        return 48


@dataclass(frozen=True)
class Promise:
    """Phase 1b: an acceptor promises, reporting any previously accepted value."""

    instance: int
    ballot: Ballot
    accepted_ballot: Ballot
    accepted_value: Any
    from_replica: ReplicaId
    kind: str = field(default="paxos-promise", init=False)

    def size_bytes(self) -> int:
        return 64


@dataclass(frozen=True)
class Accept:
    """Phase 2a: the proposer asks acceptors to accept ``value`` at ``ballot``."""

    instance: int
    ballot: Ballot
    value: Any
    kind: str = field(default="paxos-accept", init=False)

    def size_bytes(self) -> int:
        return 64


@dataclass(frozen=True)
class Accepted:
    """Phase 2b: an acceptor accepted ``value`` at ``ballot``."""

    instance: int
    ballot: Ballot
    value: Any
    from_replica: ReplicaId
    kind: str = field(default="paxos-accepted", init=False)

    def size_bytes(self) -> int:
        return 64


@dataclass(frozen=True)
class Nack:
    """An acceptor refused a ballot because it promised a higher one."""

    instance: int
    ballot: Ballot
    promised: Ballot
    from_replica: ReplicaId
    kind: str = field(default="paxos-nack", init=False)

    def size_bytes(self) -> int:
        return 48


# --------------------------------------------------------------------- acceptor
class Acceptor:
    """Paxos acceptor state for a sequence of instances.

    When constructed with a ``wal``, the acceptor satisfies the Paxos
    stable-storage requirement: ``promised``/``accepted`` transitions are
    persisted *before* the corresponding Promise/Accepted reply is handed
    back to the caller, and a restarted acceptor replays the log on
    construction — so it can never promise or accept below a ballot it
    already answered for, no matter how many times it crashes.

    WAL records (JSON-able):

    * ``["p", instance, [round, proposer]]`` — promise made;
    * ``["a", instance, [round, proposer], value]`` — value accepted (also
      implies the promise, mirroring :meth:`on_accept`).

    ``encode_value``/``decode_value`` translate accepted values to/from their
    wire form (identity by default — fine for JSON-able commands).
    """

    def __init__(
        self,
        replica_id: ReplicaId,
        wal: Optional[Any] = None,
        encode_value: Optional[ValueCodec] = None,
        decode_value: Optional[ValueCodec] = None,
    ) -> None:
        self.replica_id = replica_id
        self._promised: Dict[int, Ballot] = {}
        self._accepted: Dict[int, Tuple[Ballot, Any]] = {}
        self._wal = wal
        self._encode = encode_value or (lambda value: value)
        self._decode = decode_value or (lambda value: value)
        if wal is not None:
            for record in wal.records():
                self._replay(record)

    # ------------------------------------------------------------- durability
    def _replay(self, record: List[Any]) -> None:
        kind = record[0]
        if kind == "p":
            self._promised[record[1]] = Ballot(*record[2])
        elif kind == "a":
            ballot = Ballot(*record[2])
            self._promised[record[1]] = ballot
            self._accepted[record[1]] = (ballot, self._decode(record[3]))
        else:
            raise ValueError(f"unknown acceptor WAL record kind: {kind!r}")

    def _persist(self, record: List[Any]) -> None:
        if self._wal is None:
            return
        self._wal.append(record)
        # The log only needs the *latest* promise/accept per instance; once it
        # holds several generations of retries, fold it to current state.
        live = 2 * (len(self._promised) + len(self._accepted)) + 64
        if len(self._wal) > live:
            self._wal.reset(self._durable_records())

    def _durable_records(self) -> List[List[Any]]:
        """Current state as a minimal record list (compaction target)."""
        records: List[List[Any]] = []
        for instance, (ballot, value) in sorted(self._accepted.items()):
            records.append(
                ["a", instance, [ballot.round, ballot.proposer], self._encode(value)]
            )
        for instance, ballot in sorted(self._promised.items()):
            accepted = self._accepted.get(instance)
            if accepted is None or accepted[0] != ballot:
                records.append(["p", instance, [ballot.round, ballot.proposer]])
        return records

    def promised_ballot(self, instance: int) -> Ballot:
        """Highest ballot promised for ``instance`` (introspection/tests)."""
        return self._promised.get(instance, ZERO_BALLOT)

    # --------------------------------------------------------------- protocol
    def on_prepare(self, prepare: Prepare):
        """Handle phase 1a; returns a :class:`Promise` or a :class:`Nack`."""
        promised = self._promised.get(prepare.instance, ZERO_BALLOT)
        if prepare.ballot <= promised and promised != ZERO_BALLOT:
            return Nack(
                instance=prepare.instance,
                ballot=prepare.ballot,
                promised=promised,
                from_replica=self.replica_id,
            )
        self._promised[prepare.instance] = prepare.ballot
        self._persist(
            ["p", prepare.instance, [prepare.ballot.round, prepare.ballot.proposer]]
        )
        accepted_ballot, accepted_value = self._accepted.get(
            prepare.instance, (ZERO_BALLOT, None)
        )
        return Promise(
            instance=prepare.instance,
            ballot=prepare.ballot,
            accepted_ballot=accepted_ballot,
            accepted_value=accepted_value,
            from_replica=self.replica_id,
        )

    def on_accept(self, accept: Accept):
        """Handle phase 2a; returns an :class:`Accepted` or a :class:`Nack`."""
        promised = self._promised.get(accept.instance, ZERO_BALLOT)
        if accept.ballot < promised:
            return Nack(
                instance=accept.instance,
                ballot=accept.ballot,
                promised=promised,
                from_replica=self.replica_id,
            )
        self._promised[accept.instance] = accept.ballot
        self._accepted[accept.instance] = (accept.ballot, accept.value)
        self._persist(
            [
                "a",
                accept.instance,
                [accept.ballot.round, accept.ballot.proposer],
                self._encode(accept.value),
            ]
        )
        return Accepted(
            instance=accept.instance,
            ballot=accept.ballot,
            value=accept.value,
            from_replica=self.replica_id,
        )

    def accepted_value(self, instance: int) -> Optional[Any]:
        entry = self._accepted.get(instance)
        return entry[1] if entry else None


# --------------------------------------------------------------------- proposer
class Proposer:
    """Drives one Paxos instance from one proposer's point of view."""

    def __init__(
        self,
        instance: int,
        ballot: Ballot,
        value: Any,
        quorum_size: int,
    ) -> None:
        self.instance = instance
        self.ballot = ballot
        self.value = value
        self.quorum_size = quorum_size
        self._promises: Dict[ReplicaId, Promise] = {}
        self._accepts: Set[ReplicaId] = set()
        self.phase2_started = False
        self.chosen = False
        self.preempted_by: Optional[Ballot] = None

    # ----------------------------------------------------------------- phase 1
    def on_promise(self, promise: Promise) -> bool:
        """Record a promise; returns True when phase 2 may start."""
        if promise.ballot != self.ballot or self.phase2_started:
            return False
        self._promises[promise.from_replica] = promise
        if len(self._promises) < self.quorum_size:
            return False
        # Adopt the highest previously accepted value, if any (Paxos rule).
        best: Tuple[Ballot, Any] = (ZERO_BALLOT, None)
        for p in self._promises.values():
            if p.accepted_value is not None and best[0] < p.accepted_ballot:
                best = (p.accepted_ballot, p.accepted_value)
        if best[1] is not None:
            self.value = best[1]
        self.phase2_started = True
        return True

    def accept_message(self) -> Accept:
        if not self.phase2_started:
            raise RuntimeError("phase 2 not started: quorum of promises missing")
        return Accept(instance=self.instance, ballot=self.ballot, value=self.value)

    def prepare_message(self) -> Prepare:
        return Prepare(instance=self.instance, ballot=self.ballot)

    # ----------------------------------------------------------------- phase 2
    def on_accepted(self, accepted: Accepted) -> bool:
        """Record an accepted; returns True exactly once, when the value is chosen."""
        if accepted.ballot != self.ballot or self.chosen:
            return False
        self._accepts.add(accepted.from_replica)
        if len(self._accepts) >= self.quorum_size:
            self.chosen = True
            return True
        return False

    def on_nack(self, nack: Nack) -> None:
        """A higher ballot exists; the caller should retry with a higher ballot."""
        if self.preempted_by is None or self.preempted_by < nack.promised:
            self.preempted_by = nack.promised
