"""Low-overhead metrics: counters, gauges, log-scale histograms, a registry.

Everything here is plain Python with no hot-path allocation beyond what
the caller already does: a counter increment is one integer add on an
attribute, a histogram observation is one :func:`bisect.bisect_left`
over a shared tuple of bucket bounds plus two adds.  Expensive work —
callback gauges, percentile estimation, Prometheus text rendering —
happens only at scrape/snapshot time.

Metric identity is ``(name, labels)`` where ``labels`` is a frozen,
sorted tuple of ``(key, value)`` pairs, matching the Prometheus data
model: the same metric name with different label sets yields distinct
series that render under one ``# HELP`` / ``# TYPE`` header.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

LabelItems = Tuple[Tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram bucket upper bounds: log-scale (powers of two) from
#: 1 microsecond to ~134 seconds when values are in milliseconds.  The
#: 28 finite buckets give <= 2x relative error on any latency the stack
#: can plausibly produce; anything beyond lands in the overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(0.001 * (2.0**i) for i in range(28))

#: Bucket bounds for *size* histograms (delta sizes, window occupancy):
#: powers of two from 1 to ~1M items.
SIZE_BUCKETS: Tuple[float, ...] = tuple(float(2**i) for i in range(21))


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(items: LabelItems) -> str:
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing integer, pushed or pulled.

    Push style: ``inc`` is the entire hot-path API — one attribute add.
    Pull style: constructed with ``fn``, the counter reads a monotonic
    value the layer already maintains (e.g. an entry of a ``stats``
    dict) at scrape time, so instrumenting an existing counter costs the
    hot path nothing at all.
    """

    __slots__ = ("name", "help", "labels", "_value", "_fn")

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: LabelItems = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labels = labels
        self._value: int = 0
        self._fn = fn

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1); invalid on a callback counter."""
        if self._fn is not None:
            raise ValueError(f"counter {self.name!r} is callback-backed")
        self._value += amount

    @property
    def value(self) -> float:
        """Current value; calls the callback for pull-based counters."""
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Gauge:
    """A point-in-time value, either pushed (``set``) or pulled (callback).

    A callback gauge never touches the hot path: the layer hands the
    registry a closure over state it already maintains (``len(pending)``,
    ``history.journal_len``, ...) and the value is computed only when a
    scrape or snapshot asks for it.
    """

    __slots__ = ("name", "help", "labels", "_value", "_fn")

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: LabelItems = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labels = labels
        self._value: float = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Set the gauge (push style); invalid on a callback gauge."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = value

    def add(self, amount: float) -> None:
        """Adjust the gauge by ``amount``; invalid on a callback gauge."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value += amount

    @property
    def value(self) -> float:
        """Current value; calls the callback for pull-based gauges."""
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Fixed-bucket log-scale histogram with cheap percentile estimates.

    Observations land in the first bucket whose upper bound is >= the
    value (one bisect over a shared bounds tuple); values above the last
    bound land in the overflow bucket.  ``percentile`` walks the
    cumulative counts and reports the matched bucket's upper bound —
    i.e. a conservative (over-) estimate with <= 2x relative error given
    the power-of-two default bounds — except for the overflow bucket,
    where the exact observed maximum is reported instead.
    """

    __slots__ = (
        "name",
        "help",
        "labels",
        "bounds",
        "counts",
        "overflow",
        "total",
        "sum",
        "min",
        "max",
    )

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: LabelItems = (),
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be sorted and distinct")
        self.name = name
        self.help = help_text
        self.labels = labels
        self.bounds = bounds
        self.counts: List[int] = [0] * len(bounds)
        self.overflow: int = 0
        self.total: int = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float, weight: int = 1) -> None:
        """Record one sample (hot path: bisect + a handful of adds).

        ``weight`` counts the sample ``weight`` times — the hook for
        hot-path callers that observe only every Nth event and want the
        histogram to keep estimating the full population (counts, sum and
        percentiles stay approximately unbiased; min/max see only the
        sampled values).
        """
        idx = bisect_left(self.bounds, value)
        if idx == len(self.bounds):
            self.overflow += weight
        else:
            self.counts[idx] += weight
        self.total += weight
        self.sum += value * weight
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 < q <= 1``); None when empty."""
        if self.total == 0:
            return None
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        # Rank of the target sample, 1-based ceiling.
        rank = max(1, int(q * self.total + 0.999999))
        seen = 0
        for bound, count in zip(self.bounds, self.counts):
            seen += count
            if seen >= rank:
                return bound
        # Landed in the overflow bucket: the exact max is the best bound.
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.overflow += other.overflow
        self.total += other.total
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def summary(self) -> Dict[str, Optional[float]]:
        """count/sum/min/max/p50/p99/p999 in one dict (snapshot helper)."""
        return {
            "count": float(self.total),
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }


class MetricsRegistry:
    """All metrics of one process, keyed by ``(name, labels)``.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers the series, later calls with the same identity return
    the same object, so layers can grab their instruments eagerly at
    construction and keep bare attribute references for the hot path.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}

    # ------------------------------------------------------------ creation
    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Counter:
        """Get or create the counter ``(name, labels)``.

        Like :meth:`gauge`, re-registering with a callback re-binds the
        series to the new component instance.
        """
        key = (self._check_name(name), _freeze_labels(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = Counter(name, help_text, key[1], fn=fn)
            self._counters[key] = metric
        elif fn is not None:
            metric._fn = fn
        return metric

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        """Get or create the gauge ``(name, labels)``.

        Re-registering an existing series with a callback replaces its
        callback — a restarted component re-binds the gauge to its new
        live state instead of leaving it pointing at the dead instance.
        """
        key = (self._check_name(name), _freeze_labels(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = Gauge(name, help_text, key[1], fn=fn)
            self._gauges[key] = metric
        elif fn is not None:
            metric._fn = fn
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``(name, labels)``."""
        key = (self._check_name(name), _freeze_labels(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = Histogram(name, help_text, key[1], bounds=bounds)
            self._histograms[key] = metric
        return metric

    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        return name

    # ------------------------------------------------------------- export
    def render_prometheus(self) -> str:
        """Render every series in the Prometheus text exposition format."""
        lines: List[str] = []
        for kind, metrics in (
            ("counter", self._counters),
            ("gauge", self._gauges),
        ):
            last_name = None
            for (name, _), metric in sorted(metrics.items()):
                if name != last_name:
                    if metric.help:
                        lines.append(f"# HELP {name} {metric.help}")
                    lines.append(f"# TYPE {name} {kind}")
                    last_name = name
                labels = _render_labels(metric.labels)
                lines.append(f"{name}{labels} {_format_number(metric.value)}")
        last_name = None
        for (name, _), hist in sorted(self._histograms.items()):
            if name != last_name:
                if hist.help:
                    lines.append(f"# HELP {name} {hist.help}")
                lines.append(f"# TYPE {name} histogram")
                last_name = name
            lines.extend(self._render_histogram(hist))
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_histogram(hist: Histogram) -> Iterable[str]:
        cumulative = 0
        base = list(hist.labels)
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            if count == 0:
                # Elide empty buckets: the cumulative `le` series stays
                # valid with any subset of bounds present (+Inf is always
                # emitted) and the payload shrinks ~10x for the typical
                # tightly-clustered latency distribution.
                continue
            items = tuple(base + [("le", _format_number(bound))])
            lines_labels = _render_labels(tuple(sorted(items)))
            yield f"{hist.name}_bucket{lines_labels} {cumulative}"
        items = tuple(base + [("le", "+Inf")])
        lines_labels = _render_labels(tuple(sorted(items)))
        yield f"{hist.name}_bucket{lines_labels} {hist.total}"
        plain = _render_labels(hist.labels)
        yield f"{hist.name}_sum{plain} {_format_number(hist.sum)}"
        yield f"{hist.name}_count{plain} {hist.total}"

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable snapshot of every series."""
        counters = {
            f"{name}{_render_labels(lbl)}": metric.value
            for (name, lbl), metric in sorted(self._counters.items())
        }
        gauges = {
            f"{name}{_render_labels(lbl)}": metric.value
            for (name, lbl), metric in sorted(self._gauges.items())
        }
        histograms = {}
        for (name, lbl), hist in sorted(self._histograms.items()):
            histograms[f"{name}{_render_labels(lbl)}"] = hist.summary()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def dump_json(self, path: str) -> None:
        """Write :meth:`snapshot` to ``path`` as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
