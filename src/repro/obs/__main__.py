"""``python -m repro.obs`` — render captured runs as text.

Two subcommands over the two artifact kinds the stack can emit:

- ``dashboard SNAPSHOT.json`` — a text dashboard over a metrics
  snapshot (``MetricsRegistry.dump_json`` / the fuzz harness /
  ``LocalCluster.scrape``-captured Prometheus text is *not* needed:
  the JSON snapshot is the canonical offline form).
- ``trace DUMP.json [--id TRACE]`` — per-message timelines from a
  trace dump (``Tracer.dump_json``), e.g. the ``trace-*.json`` file a
  failing fuzz seed writes next to its shrunk schedule.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from .trace import Tracer, find_trace, render_timeline, summarize


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}" if value != int(value) else str(int(value))
    return str(value)


def render_dashboard(snapshot: Dict[str, object]) -> str:
    """Text dashboard over a ``MetricsRegistry.snapshot()`` JSON dump."""
    lines: List[str] = []
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    if counters:
        lines.append("== counters ==")
        width = max(len(k) for k in counters)
        for name, value in sorted(counters.items()):  # type: ignore[union-attr]
            lines.append(f"  {name:<{width}}  {_fmt(value)}")
    if gauges:
        lines.append("== gauges ==")
        width = max(len(k) for k in gauges)
        for name, value in sorted(gauges.items()):  # type: ignore[union-attr]
            lines.append(f"  {name:<{width}}  {_fmt(value)}")
    if histograms:
        lines.append("== histograms (ms) ==")
        width = max(len(k) for k in histograms)
        header = (
            f"  {'series':<{width}}  {'count':>8} {'p50':>10} {'p99':>10}"
            f" {'p999':>10} {'max':>10}"
        )
        lines.append(header)
        for name, summary in sorted(histograms.items()):  # type: ignore[union-attr]
            lines.append(
                f"  {name:<{width}}  {_fmt(summary.get('count')):>8}"
                f" {_fmt(summary.get('p50')):>10}"
                f" {_fmt(summary.get('p99')):>10}"
                f" {_fmt(summary.get('p999')):>10}"
                f" {_fmt(summary.get('max')):>10}"
            )
    if not lines:
        lines.append("empty snapshot: no series recorded")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render observability artifacts captured from a run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dash = sub.add_parser(
        "dashboard", help="text dashboard over a metrics snapshot JSON"
    )
    p_dash.add_argument("snapshot", help="path to a registry snapshot JSON")

    p_trace = sub.add_parser(
        "trace", help="per-message timelines from a trace dump JSON"
    )
    p_trace.add_argument("dump", help="path to a Tracer.dump_json file")
    p_trace.add_argument(
        "--id",
        dest="trace_id",
        default=None,
        help="render one trace (exact id or unique substring); "
        "default: summary of every trace",
    )
    p_trace.add_argument(
        "--limit",
        type=int,
        default=20,
        help="max traces in the summary table (default 20)",
    )

    args = parser.parse_args(argv)

    if args.command == "dashboard":
        with open(args.snapshot, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
        print(render_dashboard(snapshot))
        return 0

    tracer = Tracer.load_json(args.dump)
    if args.trace_id is None:
        print(summarize(tracer, limit=args.limit))
        return 0
    found = find_trace(tracer, args.trace_id)
    if found is None:
        print(f"no unique trace matches {args.trace_id!r}", file=sys.stderr)
        return 1
    trace_id, events = found
    print(render_timeline(trace_id, events))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
