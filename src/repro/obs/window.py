"""A time-windowed multiset: the shared sliding-window primitive.

Extracted from ``reconfig/monitor.py``'s private plumbing (ISSUE 7
satellite): one observation carries several keys (a workload sample
increments a (home, dst) traffic cell, a pair cell and a home cell at
once), the window keeps per-key counts incrementally, and eviction is
O(expired entries) — never a rescan of the live window.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, Iterable, Tuple


class SlidingWindow:
    """Per-key counts over the trailing ``window_ms`` of observations."""

    def __init__(self, window_ms: float) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.window_ms = float(window_ms)
        self._entries: Deque[Tuple[float, Tuple[Hashable, ...]]] = deque()
        self._counts: Dict[Hashable, int] = {}
        #: Observations currently inside the window.
        self.sample_count = 0
        #: Observations ever pushed (monotonic, never evicted).
        self.total_observed = 0

    def observe(self, at: float, keys: Iterable[Hashable]) -> None:
        """Record one observation incrementing every key in ``keys``."""
        frozen = tuple(keys)
        self._entries.append((at, frozen))
        self.sample_count += 1
        self.total_observed += 1
        counts = self._counts
        for key in frozen:
            counts[key] = counts.get(key, 0) + 1

    def evict(self, now: float) -> None:
        """Expire observations older than ``now - window_ms``."""
        horizon = now - self.window_ms
        entries = self._entries
        counts = self._counts
        while entries and entries[0][0] < horizon:
            _, keys = entries.popleft()
            self.sample_count -= 1
            for key in keys:
                remaining = counts[key] - 1
                if remaining:
                    counts[key] = remaining
                else:
                    del counts[key]

    def count(self, key: Hashable) -> int:
        """Current in-window count for ``key`` (0 when absent)."""
        return self._counts.get(key, 0)

    def items(self) -> Dict[Hashable, int]:
        """Copy of all in-window ``key -> count`` pairs."""
        return dict(self._counts)

    def latest_at(self) -> float:
        """Timestamp of the newest in-window observation (0.0 if empty)."""
        return self._entries[-1][0] if self._entries else 0.0

    def clear(self) -> None:
        """Drop all state, including the monotonic observed total."""
        self._entries.clear()
        self._counts.clear()
        self.sample_count = 0
        self.total_observed = 0
