"""Message-lifecycle tracing: bounded span records keyed by trace id.

A trace is the ordered set of stage events one multicast passes through:

    submit -> batch_flush -> enqueue -> pivot_wait / ts_wait -> deliver
           -> fanout

Each event is a plain tuple ``(trace_id, stage, at_ms, site, detail)``
appended to a bounded deque — the entire hot-path cost is one tuple
allocation and one deque append behind an ``if tracer is not None``
guard.  ``at_ms`` comes from the transport clock, so simulator traces
are deterministic virtual times and asyncio traces are wall-clock
milliseconds.

The trace id rides on :class:`~repro.core.message.Message` (falling back
to ``msg_id`` when unset) and survives the wire via
:mod:`repro.runtime.codec`, so a timeline reassembled from several
nodes' dumps still groups correctly.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

# Stage names, in canonical lifecycle order (used for display sorting of
# simultaneous events; arrival order is otherwise preserved).
STAGE_SUBMIT = "submit"
STAGE_BATCH_FLUSH = "batch_flush"
STAGE_ENQUEUE = "enqueue"
STAGE_PIVOT_WAIT = "pivot_wait"
STAGE_TS_WAIT = "ts_wait"
STAGE_DELIVER = "deliver"
STAGE_FANOUT = "fanout"

STAGES: Tuple[str, ...] = (
    STAGE_SUBMIT,
    STAGE_BATCH_FLUSH,
    STAGE_ENQUEUE,
    STAGE_PIVOT_WAIT,
    STAGE_TS_WAIT,
    STAGE_DELIVER,
    STAGE_FANOUT,
)

_STAGE_ORDER = {stage: i for i, stage in enumerate(STAGES)}

TraceEvent = Tuple[str, str, float, str, str]


class Tracer:
    """Bounded recorder of lifecycle events.

    ``max_events`` caps memory on unbounded runs (oldest events fall off
    first); the fuzz harness and CLI only ever need the tail of a run to
    explain a failure.
    """

    __slots__ = ("events", "max_events")

    def __init__(self, max_events: int = 100_000) -> None:
        self.events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.max_events = max_events

    def record(
        self,
        trace_id: str,
        stage: str,
        at_ms: float,
        site: str = "",
        detail: str = "",
    ) -> None:
        """Append one event (the hot-path call)."""
        self.events.append((trace_id, stage, at_ms, site, detail))

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    # --------------------------------------------------------------- views
    def timelines(self) -> Dict[str, List[TraceEvent]]:
        """Events grouped per trace id, each group in stable time order."""
        grouped: Dict[str, List[TraceEvent]] = {}
        for event in self.events:
            grouped.setdefault(event[0], []).append(event)
        for events in grouped.values():
            events.sort(key=lambda e: (e[2], _STAGE_ORDER.get(e[1], 99)))
        return grouped

    def timeline(self, trace_id: str) -> List[TraceEvent]:
        """All events of one trace, in stable time order."""
        return self.timelines().get(trace_id, [])

    # ----------------------------------------------------------- dump/load
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (``{"events": [[...], ...]}``)."""
        return {
            "max_events": self.max_events,
            "events": [list(event) for event in self.events],
        }

    def dump_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Tracer":
        """Inverse of :meth:`to_dict`."""
        raw_max = data.get("max_events", 100_000)
        tracer = cls(max_events=int(raw_max))  # type: ignore[arg-type]
        for raw in data.get("events", []):  # type: ignore[union-attr]
            trace_id, stage, at_ms, site, detail = raw
            tracer.events.append(
                (str(trace_id), str(stage), float(at_ms), str(site), str(detail))
            )
        return tracer

    @classmethod
    def load_json(cls, path: str) -> "Tracer":
        """Read a dump written by :meth:`dump_json`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def render_timeline(
    trace_id: str, events: List[TraceEvent], width: int = 72
) -> str:
    """Render one trace as an indented text timeline.

    Times are shown absolute and as a delta from the trace's first event;
    per-site delivery is visible through the ``site`` column.
    """
    if not events:
        return f"trace {trace_id}: no events"
    t0 = events[0][2]
    lines = [f"trace {trace_id}  ({len(events)} events, t0={t0:.3f} ms)"]
    for _tid, stage, at_ms, site, detail in events:
        offset = at_ms - t0
        where = f" @{site}" if site else ""
        extra = f"  {detail}" if detail else ""
        lines.append(f"  +{offset:10.3f} ms  {stage:<12}{where}{extra}")
    span = events[-1][2] - t0
    lines.append(f"  total span: {span:.3f} ms")
    return "\n".join(lines)


def summarize(tracer: Tracer, limit: int = 20) -> str:
    """Compact per-trace summary table: stages seen and total span."""
    grouped = tracer.timelines()
    if not grouped:
        return "no trace events recorded"
    lines = [f"{len(grouped)} traces, {len(tracer.events)} events"]
    shown = 0
    for trace_id in sorted(
        grouped, key=lambda t: grouped[t][0][2]
    ):
        if shown >= limit:
            lines.append(f"... {len(grouped) - shown} more traces")
            break
        events = grouped[trace_id]
        span = events[-1][2] - events[0][2]
        stages = ",".join(
            dict.fromkeys(e[1] for e in events)
        )
        lines.append(
            f"  {trace_id:<28} span {span:9.3f} ms  [{stages}]"
        )
        shown += 1
    return "\n".join(lines)


def find_trace(
    tracer: Tracer, needle: str
) -> Optional[Tuple[str, List[TraceEvent]]]:
    """Locate a trace by exact id or unique substring match."""
    grouped = tracer.timelines()
    if needle in grouped:
        return needle, grouped[needle]
    matches = [tid for tid in grouped if needle in tid]
    if len(matches) == 1:
        return matches[0], grouped[matches[0]]
    return None
