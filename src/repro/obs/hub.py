"""The ``Observability`` bundle a process attaches to its layers.

One hub = one metrics registry + one optional tracer + the delivery
feed.  Layers receive the hub at construction (``obs=`` keyword, always
optional and defaulting to ``None``) and either grab instruments from
``hub.registry`` or register pull-based gauges over their own state.

The **delivery feed** is the instrumentation stream downstream consumers
subscribe to: every completed delivery is announced once as
``(home, destinations, at_ms)``.  ``reconfig.WorkloadMonitor`` consumes
it in place of its former private ``LatencyCollector`` observer hook,
and the SLO autopilot (ROADMAP) will consume it next.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional

from .registry import MetricsRegistry
from .trace import Tracer

DeliveryListener = Callable[[object, FrozenSet[object], float], None]


class Observability:
    """Registry + tracer + delivery feed for one process."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        #: ``None`` keeps tracing entirely off: hot paths guard on
        #: ``obs.tracer is not None`` before building an event tuple.
        self.tracer = tracer
        self._delivery_listeners: List[DeliveryListener] = []

    @classmethod
    def with_tracing(cls, max_events: int = 100_000) -> "Observability":
        """A hub with tracing enabled from the start."""
        return cls(tracer=Tracer(max_events=max_events))

    # ------------------------------------------------------- delivery feed
    def add_delivery_listener(self, listener: DeliveryListener) -> None:
        """Subscribe to completed deliveries (idempotent per listener)."""
        if listener not in self._delivery_listeners:
            self._delivery_listeners.append(listener)

    def remove_delivery_listener(self, listener: DeliveryListener) -> None:
        """Unsubscribe; unknown listeners are ignored."""
        try:
            self._delivery_listeners.remove(listener)
        except ValueError:
            pass

    def emit_delivery(
        self, home: object, destinations: FrozenSet[object], at_ms: float
    ) -> None:
        """Announce one completed delivery to every subscriber."""
        for listener in self._delivery_listeners:
            listener(home, destinations, at_ms)

    @property
    def has_delivery_listeners(self) -> bool:
        """True when at least one subscriber wants the delivery feed."""
        return bool(self._delivery_listeners)
