"""Runtime observability: metrics registry, lifecycle tracing, export surfaces.

Zero-dependency substrate the rest of the stack publishes into while it
runs (ISSUE 7).  Main pieces:

- :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges
  (including pull-based callback gauges sampled at scrape time) and
  fixed-bucket log-scale latency histograms with p50/p99/p999, rendered
  as Prometheus text or a JSON snapshot.
- :class:`~repro.obs.trace.Tracer` — bounded per-message span records
  covering submit -> batch flush -> ordering wait -> deliver -> fan-out,
  keyed by the ``trace_id`` that :mod:`repro.runtime.codec` round-trips
  on every payload envelope.
- :class:`~repro.obs.hub.Observability` — the bundle (registry + tracer
  + delivery feed) a protocol / server / harness attaches to its layers.
- ``python -m repro.obs`` — text dashboard over a JSON metrics snapshot
  and per-message timeline rendering over a trace dump.

Instrumentation is designed to be near-free when attached and exactly
free when not: hot paths guard on ``if obs is not None`` and publish
plain integer increments or tuple appends; everything expensive
(queue-depth gauges, history sizes, percentile math) is computed at
scrape time from state the layers already maintain.
"""

from .hub import Observability
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    STAGE_BATCH_FLUSH,
    STAGE_DELIVER,
    STAGE_ENQUEUE,
    STAGE_FANOUT,
    STAGE_PIVOT_WAIT,
    STAGE_SUBMIT,
    STAGE_TS_WAIT,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "STAGE_SUBMIT",
    "STAGE_BATCH_FLUSH",
    "STAGE_ENQUEUE",
    "STAGE_PIVOT_WAIT",
    "STAGE_TS_WAIT",
    "STAGE_DELIVER",
    "STAGE_FANOUT",
]
