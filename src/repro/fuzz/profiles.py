"""Deterministic fault profiles.

A profile decorates a base workload scenario with fault injection and sets
the matching oracle expectations:

* ``none`` — schedule/jitter exploration only (baseline);
* ``dup`` — a seeded fraction of FlexCast protocol envelopes is duplicated
  through ``Network.set_drop_filter`` (idempotence must absorb them; full
  delivery is still expected);
* ``loss`` — a seeded fraction of protocol envelopes is dropped.  FlexCast
  assumes reliable channels, so liveness is forfeit by design; the oracle
  switches to safety-only mode (everything that *was* delivered must still
  satisfy integrity/prefix/acyclic order and replay consistency);
* ``crash`` — the run uses a multi-Paxos replicated group
  (:class:`repro.smr.replica.ReplicatedGroup`) and crashes the current
  leader replica mid-run; surviving replicas must agree and post-fail-over
  submissions must be delivered;
* ``reconfig`` — one or two scripted overlay switches (random permutations)
  run mid-traffic through the epoch coordinator; the whole multi-epoch trace
  must satisfy the regular properties plus ``check_epochs``.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Callable, Optional

from ..core.message import (
    FlexCastAck,
    FlexCastBatch,
    FlexCastMsg,
    FlexCastNotif,
    FlexCastTsPropose,
)
from .scenario import Crash, FuzzScenario, Reconfig

PROFILES = ("none", "dup", "loss", "crash", "reconfig")

#: Envelope kinds subject to fault injection, per fault mode.  Hybrid-mode
#: timestamp proposals are *duplicated* (exercising the authority's
#: duplicate-propose absorption) but never *dropped*: FlexCast assumes
#: reliable channels either way, and a lost proposal head-of-line-blocks the
#: entire convoy — every later global message at that destination stalls
#: behind the undecided entry, so loss runs would degenerate into checking
#: ever-emptier delivery prefixes instead of exploring msg/ack/notif loss.
#: Batch submissions (client -> lca) are both droppable and duplicable: a
#: dropped batch must degrade exactly like N dropped messages (all-or-
#: nothing, checked by the harness's batch-atomicity oracle) and a
#: duplicated one must be absorbed once, like any re-submitted request.
#: Plain ClientRequests stay exempt, so the seeded fault schedule of every
#: pre-batching scenario is unchanged; batch envelopes only exist when a
#: scenario's ``batch_window`` > 1.
_DROPPABLE_ENVELOPES = (FlexCastMsg, FlexCastAck, FlexCastNotif, FlexCastBatch)
_DUPLICABLE_ENVELOPES = _DROPPABLE_ENVELOPES + (FlexCastTsPropose,)


def apply_profile(scenario: FuzzScenario, profile: str) -> FuzzScenario:
    """Attach ``profile`` to a base workload scenario (deterministic)."""
    rng = random.Random(scenario.profile_seed)
    horizon = max((s.at_ms for s in scenario.submissions), default=1_000.0)
    if profile == "none":
        return replace(scenario, profile="none")
    if profile == "dup":
        return replace(
            scenario, profile="dup", profile_rate=rng.choice([0.05, 0.15, 0.4])
        )
    if profile == "loss":
        return replace(
            scenario,
            profile="loss",
            profile_rate=rng.choice([0.01, 0.05, 0.15]),
            expect_all_delivered=False,
            # Loss keeps histories permanently incomplete; periodic flushes
            # would just stall too, so drop them for clarity.
            gc_interval_ms=None,
        )
    if profile == "crash":
        # SMR mode: a single replicated group absorbing the whole submission
        # stream, with the initial leader crashed mid-run.
        submissions = tuple(
            replace(s, dst=(0,)) for s in scenario.submissions
        )
        crash_at = round(rng.uniform(horizon * 0.2, horizon * 0.7), 3)
        return replace(
            scenario,
            profile="crash",
            order=(0,),
            submissions=submissions,
            replication_factor=3,
            crashes=(Crash(at_ms=crash_at, replica=0),),
            # In-flight requests addressed to the crashing leader are lost
            # (no client retry layer); the oracle instead asserts that every
            # post-crash submission is delivered and survivors agree.
            expect_all_delivered=False,
            gc_interval_ms=None,
            jitter_ms=min(scenario.jitter_ms, 1.0),
        )
    if profile == "reconfig":
        num_switches = rng.randint(1, 2)
        reconfigs = []
        for i in range(1, num_switches + 1):
            at = round(horizon * i / (num_switches + 1.0), 3)
            order = list(scenario.order)
            rng.shuffle(order)
            reconfigs.append(Reconfig(at_ms=at, order=tuple(order)))
        return replace(scenario, profile="reconfig", reconfigs=tuple(reconfigs))
    raise ValueError(f"unknown fault profile {profile!r}")


class EnvelopeFaultFilter:
    """Seeded drop/duplicate filter for protocol envelopes.

    Installed via ``Network.set_drop_filter``.  Duplication re-sends the same
    payload once; a re-entrancy flag lets the nested send pass through
    untouched.  All decisions come from one seeded RNG stream and nothing
    depends on object identity, so two runs of the same scenario inject the
    exact same fault schedule (the replay/shrink contract).
    """

    def __init__(
        self,
        network,
        rate: float,
        seed: int,
        mode: str,
        predicate: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        if mode not in ("drop", "dup"):
            raise ValueError(f"unknown fault mode {mode!r}")
        if predicate is None:
            kinds = _DROPPABLE_ENVELOPES if mode == "drop" else _DUPLICABLE_ENVELOPES
            predicate = lambda p: isinstance(p, kinds)  # noqa: E731
        self._network = network
        self._rate = float(rate)
        self._rng = random.Random(seed)
        self._mode = mode
        self._predicate = predicate
        self._resending = False
        self.dropped = 0
        self.duplicated = 0

    def __call__(self, src, dst, payload) -> bool:
        if self._resending or not self._predicate(payload):
            return False
        if self._mode == "drop":
            if self._rng.random() < self._rate:
                self.dropped += 1
                return True
            return False
        if self._rng.random() < self._rate:
            self.duplicated += 1
            self._resending = True
            try:
                self._network.send(src, dst, payload)
            finally:
                self._resending = False
        return False
