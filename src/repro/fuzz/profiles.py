"""Deterministic fault profiles.

A profile decorates a base workload scenario with fault injection and sets
the matching oracle expectations:

* ``none`` — schedule/jitter exploration only (baseline);
* ``dup`` — a seeded fraction of FlexCast protocol envelopes is duplicated
  through ``Network.set_drop_filter`` (idempotence must absorb them; full
  delivery is still expected);
* ``loss`` — a seeded fraction of protocol envelopes is dropped.  FlexCast
  assumes reliable channels, so liveness is forfeit by design; the oracle
  switches to safety-only mode (everything that *was* delivered must still
  satisfy integrity/prefix/acyclic order and replay consistency);
* ``crash`` — the run uses a multi-Paxos replicated group
  (:class:`repro.smr.replica.ReplicatedGroup`) and crashes a seeded victim
  replica mid-run; survivors must agree, and — thanks to the bounded client
  retry layer — *every* submission must still be delivered exactly once;
* ``crash-restart`` — like ``crash``, but the victim also reboots from its
  persisted WAL + snapshot mid-run (sometimes twice, sometimes a second
  victim).  On top of the ``crash`` oracle, the recovery oracle pins the
  rejoined replica's delivery sequence: duplicate-free, prefix-consistent
  with its own pre-crash deliveries, and convergent with the survivors;
* ``reconfig`` — one or two scripted overlay switches (random permutations)
  run mid-traffic through the epoch coordinator; the whole multi-epoch trace
  must satisfy the regular properties plus ``check_epochs``.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Callable, Optional

from ..core.message import (
    FlexCastAck,
    FlexCastBatch,
    FlexCastMsg,
    FlexCastNotif,
    FlexCastTsPropose,
)
from .scenario import Crash, FuzzScenario, Reconfig, Restart

PROFILES = ("none", "dup", "loss", "crash", "reconfig", "crash-restart")

#: Bounded resubmit attempts for crash-family profiles (see
#: :class:`repro.workload.clients.BoundedResubmitter`).
_CRASH_CLIENT_RETRIES = 4

#: Envelope kinds subject to fault injection, per fault mode.  Hybrid-mode
#: timestamp proposals are *duplicated* (exercising the authority's
#: duplicate-propose absorption) but never *dropped*: FlexCast assumes
#: reliable channels either way, and a lost proposal head-of-line-blocks the
#: entire convoy — every later global message at that destination stalls
#: behind the undecided entry, so loss runs would degenerate into checking
#: ever-emptier delivery prefixes instead of exploring msg/ack/notif loss.
#: Batch submissions (client -> lca) are both droppable and duplicable: a
#: dropped batch must degrade exactly like N dropped messages (all-or-
#: nothing, checked by the harness's batch-atomicity oracle) and a
#: duplicated one must be absorbed once, like any re-submitted request.
#: Plain ClientRequests stay exempt, so the seeded fault schedule of every
#: pre-batching scenario is unchanged; batch envelopes only exist when a
#: scenario's ``batch_window`` > 1.
_DROPPABLE_ENVELOPES = (FlexCastMsg, FlexCastAck, FlexCastNotif, FlexCastBatch)
_DUPLICABLE_ENVELOPES = _DROPPABLE_ENVELOPES + (FlexCastTsPropose,)


def apply_profile(scenario: FuzzScenario, profile: str) -> FuzzScenario:
    """Attach ``profile`` to a base workload scenario (deterministic)."""
    rng = random.Random(scenario.profile_seed)
    horizon = max((s.at_ms for s in scenario.submissions), default=1_000.0)
    if profile == "none":
        return replace(scenario, profile="none")
    if profile == "dup":
        return replace(
            scenario, profile="dup", profile_rate=rng.choice([0.05, 0.15, 0.4])
        )
    if profile == "loss":
        return replace(
            scenario,
            profile="loss",
            profile_rate=rng.choice([0.01, 0.05, 0.15]),
            expect_all_delivered=False,
            # Loss keeps histories permanently incomplete; periodic flushes
            # would just stall too, so drop them for clarity.
            gc_interval_ms=None,
        )
    if profile in ("crash", "crash-restart"):
        # SMR mode: a single replicated group absorbing the whole submission
        # stream, with a seeded victim replica crashed mid-run.  The crash
        # time is drawn before the victim so every pre-existing ``crash``
        # seed keeps its historical crash instant.
        submissions = tuple(
            replace(s, dst=(0,)) for s in scenario.submissions
        )
        crash_at = round(rng.uniform(horizon * 0.2, horizon * 0.7), 3)
        victim = rng.randrange(3)
        common = dict(
            order=(0,),
            submissions=submissions,
            replication_factor=3,
            # Bounded resubmit-on-timeout: requests lost with a crashing
            # replica are retried by the client, so full delivery is back in
            # the oracle's contract (re-submission is idempotent end to end).
            client_retries=_CRASH_CLIENT_RETRIES,
            expect_all_delivered=True,
            gc_interval_ms=None,
            jitter_ms=min(scenario.jitter_ms, 1.0),
        )
        if profile == "crash":
            return replace(
                scenario,
                profile="crash",
                crashes=(Crash(at_ms=crash_at, replica=victim),),
                **common,
            )
        # crash-restart: the victim reboots from its persisted state while
        # traffic continues; ~1 in 3 seeds follows with a second crash-and-
        # rejoin cycle (possibly of a different replica, possibly of the same
        # one again — exercising WAL reuse across incarnations).
        restart_at = round(crash_at + rng.uniform(0.15, 0.35) * horizon, 3)
        crashes = [Crash(at_ms=crash_at, replica=victim)]
        restarts = [Restart(at_ms=restart_at, replica=victim)]
        if rng.random() < 0.34:
            victim2 = rng.randrange(3)
            crash2_at = round(restart_at + rng.uniform(0.1, 0.25) * horizon, 3)
            restart2_at = round(crash2_at + rng.uniform(0.1, 0.25) * horizon, 3)
            crashes.append(Crash(at_ms=crash2_at, replica=victim2))
            restarts.append(Restart(at_ms=restart2_at, replica=victim2))
        return replace(
            scenario,
            profile="crash-restart",
            crashes=tuple(crashes),
            restarts=tuple(restarts),
            **common,
        )
    if profile == "reconfig":
        num_switches = rng.randint(1, 2)
        reconfigs = []
        for i in range(1, num_switches + 1):
            at = round(horizon * i / (num_switches + 1.0), 3)
            order = list(scenario.order)
            rng.shuffle(order)
            reconfigs.append(Reconfig(at_ms=at, order=tuple(order)))
        return replace(scenario, profile="reconfig", reconfigs=tuple(reconfigs))
    raise ValueError(f"unknown fault profile {profile!r}")


class EnvelopeFaultFilter:
    """Seeded drop/duplicate filter for protocol envelopes.

    Installed via ``Network.set_drop_filter``.  Duplication re-sends the same
    payload once; a re-entrancy flag lets the nested send pass through
    untouched.  All decisions come from one seeded RNG stream and nothing
    depends on object identity, so two runs of the same scenario inject the
    exact same fault schedule (the replay/shrink contract).
    """

    def __init__(
        self,
        network,
        rate: float,
        seed: int,
        mode: str,
        predicate: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        if mode not in ("drop", "dup"):
            raise ValueError(f"unknown fault mode {mode!r}")
        if predicate is None:
            kinds = _DROPPABLE_ENVELOPES if mode == "drop" else _DUPLICABLE_ENVELOPES
            predicate = lambda p: isinstance(p, kinds)  # noqa: E731
        self._network = network
        self._rate = float(rate)
        self._rng = random.Random(seed)
        self._mode = mode
        self._predicate = predicate
        self._resending = False
        self.dropped = 0
        self.duplicated = 0

    def __call__(self, src, dst, payload) -> bool:
        if self._resending or not self._predicate(payload):
            return False
        if self._mode == "drop":
            if self._rng.random() < self._rate:
                self.dropped += 1
                return True
            return False
        if self._rng.random() < self._rate:
            self.duplicated += 1
            self._resending = True
            try:
                self._network.send(src, dst, payload)
            finally:
                self._resending = False
        return False
