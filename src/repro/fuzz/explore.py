"""Bounded-exhaustive schedule exploration for small FlexCast instances.

The fuzz sweep *samples* schedules; this module *enumerates* them.  For a
small scenario — a destination-set shape over a handful of groups, every
message submitted up front — the only nondeterminism FlexCast sees is the
order in which channel deliveries happen.  The explorer drives the protocol
through an explicit-choice fabric instead of the timed simulator: at every
step the set of *enabled* events (the head of each non-empty FIFO channel)
is a branch point, and a depth-first search over those choices covers every
reachable interleaving.  Each leaf runs the full oracle suite
(:func:`repro.checker.properties.check_trace`, sequential replay,
conservation), so a clean exploration is an exhaustive-on-this-model proof —
the CADP-style methodology (PAPERS.md) applied to our own stack: small
instances, all behaviours, every property.

Two reductions keep small topologies tractable without losing coverage:

* **Per-channel FIFO** — links are FIFO (the simulator's channel clock, TCP
  in the process runtime), so only the *head* of each channel is ever
  enabled; interleavings that reorder one channel's messages are not real
  behaviours and are never generated.
* **Sleep sets** (Godefroid) — two enabled deliveries to *different* groups
  commute: each mutates only its receiver's state and appends to disjoint
  outgoing channels, so executing them in either order reaches the same
  state.  After exploring the subtree where independent event ``a`` precedes
  ``b``, the sibling subtree re-exploring ``b`` before ``a`` is pruned by
  putting ``a`` to sleep.  Only genuinely conflicting orders (two deliveries
  racing into the *same* group) branch.

Timers (the pivot-guard escape tick) fire deterministically and only when no
delivery is enabled: the escape hatch exists to break quiescent stand-offs,
so exploring its interleavings against in-flight traffic would multiply the
state space with schedules where the timer merely loses the race.  A leaf is
reached when no channel has traffic and no timer can make progress.

CLI (see ``python -m repro.fuzz explore --help``)::

    # exhaustive sweep of every single-shared-group shape up to 3 msgs x 3
    # groups, plain mode with order claims (the fixed protocol):
    python -m repro.fuzz explore --max-msgs 3 --max-groups 3

    # demonstrate the legacy hole: same sweep without order claims finds
    # the 3-cycle and writes each violating interleaving as a schedule:
    python -m repro.fuzz explore --max-msgs 3 --max-groups 3 \
        --no-claims --out-dir explore-artifacts

    # replay one committed interleaving:
    python -m repro.fuzz explore --replay <schedule.json>
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..checker.properties import check_trace
from ..checker.replay import check_sequential_replay, conservation_check
from ..core.flexcast import FlexCastProtocol
from ..core.message import ClientRequest, Message
from ..overlay.cdag import CDagOverlay
from ..protocols.base import RecordingSink
from ..sim.transport import Transport

CLIENT = "explore-client"

#: Schema tag for committed explorer schedules (distinct from FuzzScenario's:
#: these pin a *choice sequence* over the explicit-choice fabric, not a
#: timed simulator run).
SCHEMA = "flexcast-explore-schedule-v1"

#: Per-execution step budget; exceeding it reports a livelock violation.
MAX_STEPS = 20_000

#: A channel is identified by (sender node, receiver node); an event is the
#: delivery of the channel's head envelope.
Channel = Tuple[Hashable, Hashable]


# --------------------------------------------------------------------- model
@dataclass(frozen=True)
class ShapeCase:
    """One explored instance: a destination-set multiset over ``0..k-1``.

    The overlay rank order is the identity (group id == rank), so
    enumerating all labelled shapes covers all rank assignments — which
    group is an lca, which is the single shared group — without a separate
    rank axis.
    """

    num_groups: int
    destinations: Tuple[Tuple[int, ...], ...]
    #: Conflict-scoped order claims (the plain-mode fix) on/off.
    order_claims: bool = True
    #: Full hybrid (Skeen) mode; overrides claims.
    hybrid: bool = False
    pivot_guard: bool = True

    @property
    def order(self) -> Tuple[int, ...]:
        return tuple(range(self.num_groups))

    def label(self) -> str:
        dsts = "+".join("".join(map(str, d)) for d in self.destinations)
        mode = (
            "hybrid"
            if self.hybrid
            else ("claims" if self.order_claims else "legacy")
        )
        return f"g{self.num_groups}[{dsts}]-{mode}"

    def to_dict(self, choices: Sequence[Channel]) -> dict:
        return {
            "schema": SCHEMA,
            "num_groups": self.num_groups,
            "destinations": [list(d) for d in self.destinations],
            "order_claims": self.order_claims,
            "hybrid": self.hybrid,
            "pivot_guard": self.pivot_guard,
            "choices": [[str(s), str(d)] for s, d in choices],
        }

    @staticmethod
    def from_dict(data: dict) -> Tuple["ShapeCase", List[Channel]]:
        if data.get("schema") != SCHEMA:
            raise ValueError(f"not an explorer schedule: {data.get('schema')!r}")
        case = ShapeCase(
            num_groups=int(data["num_groups"]),
            destinations=tuple(tuple(d) for d in data["destinations"]),
            order_claims=bool(data["order_claims"]),
            hybrid=bool(data["hybrid"]),
            pivot_guard=bool(data.get("pivot_guard", True)),
        )
        choices = [_parse_node_pair(s, d, case) for s, d in data["choices"]]
        return case, choices


def _parse_node_pair(src: str, dst: str, case: ShapeCase) -> Channel:
    def node(name: str) -> Hashable:
        return int(name) if name.isdigit() else name

    return (node(src), node(dst))


# -------------------------------------------------------------------- fabric
class _Timer:
    __slots__ = ("due", "owner", "callback", "cancelled")

    def __init__(
        self, due: float, owner: Hashable, callback: Callable[[], None]
    ) -> None:
        self.due = due
        self.owner = owner
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class _Fabric:
    """Explicit-choice message fabric: FIFO channels, a step-counter clock,
    and deterministic quiescent-only timers.

    Timer due times are the *delay alone* (not arm-time + delay) and ties
    break on the owning node: the firing order is then a pure function of
    which timers are live, never of the interleaving that armed them.  That
    keeps the post-quiescence continuation a deterministic function of the
    protocol state, which the DFS's state-deduplication relies on.  The
    step-counter clock feeds only trace/sink timestamps.
    """

    def __init__(self) -> None:
        self.time = 0.0
        self.channels: Dict[Channel, Deque[object]] = {}
        self.handlers: Dict[Hashable, Callable[[Hashable, object], None]] = {}
        self.sinks: Set[Hashable] = set()
        self.timers: List[_Timer] = []

    def register(self, node: Hashable, handler) -> None:
        self.handlers[node] = handler

    def register_sink(self, node: Hashable) -> None:
        """A node whose inbound traffic is dropped (pseudo-clients): their
        deliveries cannot affect protocol state, so modelling them as branch
        points would only square the tree."""
        self.sinks.add(node)

    def enqueue(self, src: Hashable, dst: Hashable, payload: object) -> None:
        if dst in self.sinks:
            return
        self.channels.setdefault((src, dst), deque()).append(payload)

    def enabled(self) -> List[Channel]:
        """Non-empty channels in canonical order (the DFS branch alphabet)."""
        return sorted(
            (c for c, q in self.channels.items() if q),
            key=lambda c: (str(c[1]), str(c[0])),
        )

    def deliver(self, channel: Channel) -> None:
        queue = self.channels[channel]
        payload = queue.popleft()
        self.time += 1.0
        self.handlers[channel[1]](channel[0], payload)

    def fire_next_timer(self) -> bool:
        """Quiescence only: fire the first live timer in the canonical
        (due, owner) order.  Returns False when no timer is pending."""
        live = [t for t in self.timers if not t.cancelled]
        self.timers = live
        if not live:
            return False
        timer = min(live, key=lambda t: (t.due, str(t.owner)))
        self.timers.remove(timer)
        self.time += 1.0
        timer.callback()
        return True


class _ExploreTransport(Transport):
    def __init__(self, fabric: _Fabric, node_id: Hashable) -> None:
        self._fabric = fabric
        self.node_id = node_id

    def send(self, dst: Hashable, payload: object) -> None:
        self._fabric.enqueue(self.node_id, dst, payload)

    def now(self) -> float:
        return self._fabric.time

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> _Timer:
        timer = _Timer(delay_ms, self.node_id, callback)
        self._fabric.timers.append(timer)
        return timer


# ----------------------------------------------------------------- execution
@dataclass
class RunOutcome:
    """One (possibly partial) execution of a :class:`ShapeCase`."""

    case: ShapeCase
    #: Choices actually taken, in order (the full path to this state).
    path: Tuple[Channel, ...] = ()
    #: Enabled set at the stop point (empty = the run reached a leaf).
    enabled: Tuple[Channel, ...] = ()
    finished: bool = False
    violations: List[str] = field(default_factory=list)
    delivered: int = 0
    steps: int = 0
    #: How many recorded choices were honored before the trace diverged
    #: (non-strict replay only; None = every choice was honored).
    choices_honored: Optional[int] = None


def execute(
    case: ShapeCase,
    choices: Sequence[Channel] = (),
    stop_after: Optional[int] = None,
    strict_choices: bool = True,
) -> RunOutcome:
    """Run ``case`` following ``choices``, then first-enabled to the end.

    ``stop_after=N`` halts after N delivery steps and reports the enabled
    set there (the DFS uses this to expand one node without running the
    oracles); ``None`` runs to quiescence and checks every oracle.
    ``strict_choices=False`` tolerates a recorded choice that is no longer
    enabled (the replay path for committed schedules — see the loop body).
    """
    fabric = _Fabric()
    overlay = CDagOverlay(list(case.order))
    dsts = [frozenset(d) for d in case.destinations]
    conflict_shapes = dsts if (case.order_claims and not case.hybrid) else None
    protocol = FlexCastProtocol(
        overlay,
        pivot_guard=case.pivot_guard,
        hybrid=case.hybrid,
        conflict_shapes=conflict_shapes,
    )
    sink = RecordingSink(clock=lambda: fabric.time)
    groups = {}
    for gid in case.order:
        group = protocol.create_group(gid, _ExploreTransport(fabric, gid), sink)
        groups[gid] = group
        fabric.register(gid, group.on_envelope)

    # One client node (= one FIFO channel) per submission: submissions from
    # independent clients race on the wire, so two requests entering the
    # same lca must be a branch point, not a fixed arrival order.
    messages = {}
    for i, dst in enumerate(dsts):
        client = f"{CLIENT}-{i}"
        fabric.register(client, lambda s, p: None)
        fabric.register_sink(client)
        message = Message.create(dst, sender=client, msg_id=f"e{i}")
        messages[message.msg_id] = message
        entry = protocol.entry_groups(message)[0]
        fabric.enqueue(client, entry, ClientRequest(message=message))

    outcome = RunOutcome(case=case)
    path: List[Channel] = []
    step = 0
    while True:
        enabled = fabric.enabled()
        if not enabled:
            # Quiescent: let deterministic timers (guard escape) run until
            # they produce traffic or nothing can make progress.
            if fabric.fire_next_timer():
                continue
            outcome.finished = True
            break
        if stop_after is not None and step >= stop_after:
            outcome.enabled = tuple(enabled)
            break
        if step >= MAX_STEPS:
            outcome.violations.append(
                f"[livelock] exploration exceeded {MAX_STEPS} steps"
            )
            outcome.finished = True
            break
        if step < len(choices):
            channel = choices[step]
            if channel not in enabled:
                if strict_choices:
                    raise ValueError(
                        f"choice {step} {channel!r} is not enabled "
                        f"(have {enabled})"
                    )
                # Committed schedules outlive protocol changes: once the
                # recorded trace diverges from today's traffic, stop
                # following it and run the rest first-enabled — the oracles
                # still grade a complete execution.
                outcome.choices_honored = step
                choices = ()
                channel = enabled[0]
        else:
            channel = enabled[0]
        path.append(channel)
        fabric.deliver(channel)
        step += 1

    outcome.path = tuple(path)
    outcome.steps = step
    if outcome.finished:
        sequences = {gid: sink.sequence(gid) for gid in case.order}
        outcome.delivered = sum(len(s) for s in sequences.values())
        report = check_trace(sink, messages.values(), expect_all_delivered=True)
        outcome.violations.extend(str(v) for v in report.violations)
        tiebreak = {mid: i for i, mid in enumerate(messages)}
        replay = check_sequential_replay(
            sequences, messages, expect_all_delivered=True, tiebreak=tiebreak
        )
        outcome.violations.extend(str(v) for v in replay.violations)
        conservation = conservation_check(sequences, messages)
        outcome.violations.extend(str(v) for v in conservation.violations)
    return outcome


# ----------------------------------------------------------------------- DFS
@dataclass
class ExploreStats:
    """Aggregate result of exploring one shape."""

    case: ShapeCase
    leaves: int = 0
    nodes: int = 0
    pruned: int = 0
    deduped: int = 0
    max_depth: int = 0
    #: Distinct violation messages with one witness path each.
    violations: Dict[str, Tuple[Channel, ...]] = field(default_factory=dict)
    truncated: bool = False
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


def _independent(a: Channel, b: Channel) -> bool:
    """Deliveries commute iff they hit different receivers: each mutates
    only its receiver's state and appends to that receiver's *outgoing*
    channels, and popping one channel's head never disables another's."""
    return a[1] != b[1]


def _state_key(prefix: Sequence[Channel]) -> Tuple:
    """Canonical form of the state reached by ``prefix``.

    Each node's behaviour is a deterministic function of the *sequence of
    channels it consumed from* (per-channel FIFO pins which payload the k-th
    delivery from a channel carries, and timer firings are a deterministic
    function of state — see :class:`_Fabric`).  Two prefixes with equal
    per-receiver consumption sequences are therefore Mazurkiewicz-trace
    equivalent and land in the *same* global state, so the DFS can fold
    them: the interleaving of different receivers' timelines is forgotten,
    only each receiver's own history is kept.
    """
    per: Dict[Hashable, List[Hashable]] = {}
    for src, dst in prefix:
        per.setdefault(dst, []).append(src)
    return tuple(
        sorted((str(dst), tuple(map(str, srcs))) for dst, srcs in per.items())
    )


def explore_shape(
    case: ShapeCase,
    max_leaves: Optional[int] = None,
    time_cap_s: Optional[float] = None,
    prune: bool = True,
    on_violation: Optional[Callable[[ExploreStats, RunOutcome], None]] = None,
) -> ExploreStats:
    """Depth-first search over every delivery interleaving of ``case``.

    With ``prune`` on (the default), sleep sets cut commuting permutations;
    the reachable state coverage is unchanged (see the module docstring).
    ``max_leaves``/``time_cap_s`` bound the search — when either trips, the
    result is marked ``truncated`` and the caller must report it as partial,
    never as an exhaustive pass.
    """
    stats = ExploreStats(case=case)
    started = time.monotonic()
    # State dedup: visited canonical states, each with the sleep sets it was
    # expanded under.  A revisit is skipped only when some recorded sleep set
    # is a subset of the current one — then every move we would explore now
    # was explored (or transitively covered) on the recorded visit.  The
    # subset condition is what keeps sleep sets + state caching sound
    # (Godefroid): a smaller recorded sleep set means *more* transitions
    # were taken from that state, never fewer.
    memo: Dict[Tuple, List[FrozenSet[Channel]]] = {}

    def over_budget() -> bool:
        if max_leaves is not None and stats.leaves >= max_leaves:
            return True
        if time_cap_s is not None and time.monotonic() - started > time_cap_s:
            return True
        return False

    def dfs(prefix: Tuple[Channel, ...], sleep: FrozenSet[Channel]) -> None:
        if stats.truncated or over_budget():
            stats.truncated = True
            return
        if prune:
            key = _state_key(prefix)
            seen = memo.setdefault(key, [])
            if any(recorded <= sleep for recorded in seen):
                stats.deduped += 1
                return
            seen.append(sleep)
        stats.nodes += 1
        stats.max_depth = max(stats.max_depth, len(prefix))
        probe = execute(case, prefix, stop_after=len(prefix))
        if probe.finished:
            # ``prefix`` runs to quiescence with no further choice: the
            # probe above already completed the run, so grade the leaf.
            stats.leaves += 1
            for violation in probe.violations:
                if violation not in stats.violations:
                    stats.violations[violation] = probe.path
                    if on_violation is not None:
                        on_violation(stats, probe)
            return
        candidates = [c for c in probe.enabled if c not in sleep]
        if not candidates:
            # Every enabled move is asleep: each commutes with a sibling
            # subtree already explored, so this state's behaviours are
            # covered there.
            stats.pruned += 1
            return
        explored: List[Channel] = []
        for channel in candidates:
            child_sleep = frozenset(
                x
                for x in (set(sleep) | set(explored))
                if _independent(x, channel)
            )
            dfs(prefix + (channel,), child_sleep if prune else frozenset())
            explored.append(channel)

    dfs((), frozenset())
    stats.elapsed_s = time.monotonic() - started
    return stats


# --------------------------------------------------------- shape enumeration
def enumerate_shapes(
    max_msgs: int,
    max_groups: int,
    order_claims: bool = True,
    hybrid: bool = False,
    pivot_guard: bool = True,
    single_shared_only: bool = True,
) -> Iterator[ShapeCase]:
    """All labelled destination-set multisets up to the given bounds.

    Shapes are *labelled*: group id equals overlay rank, so every rank
    assignment (which group arbitrates, which is the single shared one) is
    its own case.  ``single_shared_only`` keeps the shapes in the 3-cycle's
    conflict class — some pair of destination sets intersecting in exactly
    one group; shapes without that pattern cannot expose the bug the
    explorer exists to retire (and are sampled broadly by the fuzz sweep).
    Every group must be addressed by some message, otherwise the case is a
    relabelling of a smaller ``num_groups`` instance already enumerated.
    """
    for k in range(2, max_groups + 1):
        subsets = [
            frozenset(c)
            for size in range(2, k + 1)
            for c in itertools.combinations(range(k), size)
        ]
        for m in range(2, max_msgs + 1):
            for combo in itertools.combinations_with_replacement(subsets, m):
                if frozenset().union(*combo) != frozenset(range(k)):
                    continue
                if single_shared_only and not any(
                    len(a & b) == 1 for a, b in itertools.combinations(combo, 2)
                ):
                    continue
                yield ShapeCase(
                    num_groups=k,
                    destinations=tuple(tuple(sorted(d)) for d in combo),
                    order_claims=order_claims,
                    hybrid=hybrid,
                    pivot_guard=pivot_guard,
                )


# ------------------------------------------------------------------------ CLI
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz explore",
        description="bounded-exhaustive FlexCast schedule exploration",
    )
    parser.add_argument("--max-msgs", type=int, default=3)
    parser.add_argument("--max-groups", type=int, default=3)
    parser.add_argument(
        "--no-claims",
        dest="order_claims",
        action="store_false",
        help="explore the legacy claim-free plain protocol (demonstrates "
        "the single-shared-group 3-cycle the order claims close)",
    )
    parser.add_argument(
        "--hybrid", action="store_true", help="explore full hybrid mode"
    )
    parser.add_argument(
        "--unguarded", action="store_true", help="disable the pivot guard"
    )
    parser.add_argument(
        "--all-shapes",
        action="store_true",
        help="include shapes with no single-shared-group pair",
    )
    parser.add_argument(
        "--no-prune",
        dest="prune",
        action="store_false",
        help="disable sleep-set pruning (cross-validation of the reduction)",
    )
    parser.add_argument(
        "--max-leaves", type=int, default=None, help="leaf cap per shape"
    )
    parser.add_argument(
        "--time-cap-s", type=float, default=None, help="time cap per shape"
    )
    parser.add_argument(
        "--total-time-cap-s",
        type=float,
        default=None,
        help="overall wall-clock budget for the sweep",
    )
    parser.add_argument("--out-dir", default=None, help="write violating schedules here")
    parser.add_argument("--replay", default=None, help="replay one schedule JSON")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.replay:
        data = json.loads(Path(args.replay).read_text())
        case, choices = ShapeCase.from_dict(data)
        outcome = execute(case, choices, strict_choices=False)
        honored = (
            f"{outcome.choices_honored}/{len(choices)} choices honored "
            "(trace diverged — protocol traffic changed since recording), "
            if outcome.choices_honored is not None
            else ""
        )
        print(
            f"replayed {case.label()}: {honored}steps={outcome.steps} "
            f"delivered={outcome.delivered} violations={len(outcome.violations)}"
        )
        for violation in outcome.violations:
            print(f"  {violation}")
        return 0 if not outcome.violations else 1

    out_dir = Path(args.out_dir) if args.out_dir else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    started = time.monotonic()
    shapes = list(
        enumerate_shapes(
            args.max_msgs,
            args.max_groups,
            order_claims=args.order_claims,
            hybrid=args.hybrid,
            pivot_guard=not args.unguarded,
            single_shared_only=not args.all_shapes,
        )
    )
    total_leaves = total_violations = 0
    truncated_shapes = 0
    dirty: List[ExploreStats] = []
    swept_all = True
    for index, case in enumerate(shapes):
        remaining = None
        if args.total_time_cap_s is not None:
            remaining = args.total_time_cap_s - (time.monotonic() - started)
            if remaining <= 0:
                swept_all = False
                print(
                    f"total time cap hit after {index}/{len(shapes)} shapes "
                    f"— the remaining {len(shapes) - index} were NOT explored"
                )
                break
        time_cap = args.time_cap_s
        if remaining is not None:
            time_cap = min(time_cap, remaining) if time_cap else remaining

        def save_violation(stats: ExploreStats, outcome: RunOutcome) -> None:
            if out_dir is None:
                return
            path = out_dir / f"explore-{stats.case.label()}-{len(stats.violations)}.json"
            path.write_text(
                json.dumps(stats.case.to_dict(outcome.path), indent=2) + "\n"
            )
            print(f"wrote {path}")

        stats = explore_shape(
            case,
            max_leaves=args.max_leaves,
            time_cap_s=time_cap,
            prune=args.prune,
            on_violation=save_violation,
        )
        total_leaves += stats.leaves
        total_violations += len(stats.violations)
        if stats.truncated:
            truncated_shapes += 1
        if stats.violations:
            dirty.append(stats)
        if not args.quiet:
            status = "VIOLATIONS" if stats.violations else "clean"
            extra = " (truncated)" if stats.truncated else ""
            print(
                f"{case.label():<40} leaves={stats.leaves:<7} "
                f"pruned={stats.pruned:<6} {status}{extra}",
                flush=True,
            )

    elapsed = time.monotonic() - started
    exhaustive = swept_all and truncated_shapes == 0
    print(
        f"\nexplore: {len(shapes)} shapes, {total_leaves} leaves, "
        f"{total_violations} distinct violations in {elapsed:.1f}s"
        + ("" if exhaustive else f" — PARTIAL ({truncated_shapes} shapes truncated)")
    )
    for stats in dirty:
        print(f"\n{stats.case.label()}:")
        for violation, path in list(stats.violations.items())[:5]:
            print(f"  {violation}")
            print(f"    witness: {' '.join(f'{s}->{d}' for s, d in path)}")
    return 0 if total_violations == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
