"""Deterministic schedule/fault exploration for the FlexCast stack.

This package turns the "one-off example caught a bug" workflow into a
machine-driven state-space sweep, in the spirit of the CADP line of work:

* :mod:`~repro.fuzz.scenario` — a fully serializable description of one run
  (overlay, seeds, fault profile, explicit submission schedule);
* :mod:`~repro.fuzz.workload` — seeded random scenario generation
  (destination-set shapes, burst submission, overlapping conflicts);
* :mod:`~repro.fuzz.profiles` — deterministic fault injection (message
  duplication/loss via ``Network.set_drop_filter``, leader crashes via
  ``ReplicatedGroup``, mid-run reconfiguration epochs);
* :mod:`~repro.fuzz.harness` — runs a scenario on the simulator and checks
  the full property suite plus the sequential-replay oracle (and, for
  batched scenarios, the batch-atomicity oracle);
* :mod:`~repro.fuzz.shrink` — ddmin-style reduction of failing scenarios to
  minimal, checked-in regression schedules;
* :mod:`~repro.fuzz.sweep` — the multi-seed, multi-profile sweep runner and
  its CLI (``python -m repro.fuzz.sweep``).
"""

from .harness import FuzzResult, run_scenario
from .scenario import FuzzScenario, Reconfig, Submission
from .shrink import shrink_scenario
from .sweep import SweepSummary, run_sweep
from .workload import generate_scenario

__all__ = [
    "FuzzResult",
    "FuzzScenario",
    "Reconfig",
    "Submission",
    "generate_scenario",
    "run_scenario",
    "run_sweep",
    "shrink_scenario",
    "SweepSummary",
]
