"""Multi-seed, multi-profile fuzz sweep (library + CLI).

``run_sweep`` explores ``seeds × profiles`` deterministic scenarios, runs the
full oracle suite on each, and shrinks any failure to a minimal schedule.
The CLI form powers both local exploration and the CI ``fuzz-sweep`` job::

    PYTHONPATH=src python -m repro.fuzz.sweep --seeds 50 \
        --profiles none,dup,reconfig --out-dir fuzz-artifacts

Any shrunk failing schedule is written to ``--out-dir`` as JSON (one file per
failure) so CI can upload it as an artifact and a developer can replay it::

    PYTHONPATH=src python -m repro.fuzz.sweep --replay <schedule.json>
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Sequence

from ..obs import Observability
from .harness import FuzzResult, run_scenario
from .profiles import PROFILES, apply_profile
from .scenario import FuzzScenario
from .shrink import default_predicate, shrink_scenario
from .workload import generate_scenario


@dataclass
class SweepSummary:
    """Aggregate outcome of a sweep.

    ``failures`` are violations of guaranteed properties (sweep gate);
    ``anomalies`` are runs whose only findings are global acyclic-order
    anomalies — the documented architectural limitation (DESIGN.md).  Both
    get shrunk so the artifacts stay actionable.
    """

    runs: int = 0
    clean: int = 0
    failures: List[FuzzResult] = field(default_factory=list)
    anomalies: List[FuzzResult] = field(default_factory=list)
    shrunk: List[FuzzScenario] = field(default_factory=list)
    elapsed_s: float = 0.0
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures


def run_sweep(
    seeds: Sequence[int],
    profiles: Sequence[str] = ("none", "dup", "reconfig"),
    pivot_guard: bool = True,
    shrink_failures: bool = True,
    time_cap_s: Optional[float] = None,
    progress=None,
    hybrid: Optional[bool] = None,
    batch_window: Optional[int] = None,
    order_claims: Optional[bool] = None,
) -> SweepSummary:
    """Run every ``(seed, profile)`` scenario; shrink and collect failures.

    ``hybrid`` selects the ordering mode for every run: ``True`` forces the
    Skeen-timestamp hybrid on (acyclic-order findings become hard failures),
    ``False`` forces it off, ``None`` follows each scenario's own flag.
    ``batch_window`` likewise forces the client-side batching window for
    every run (``1`` = unbatched); ``None`` follows each scenario.
    ``order_claims=None`` (the default) keeps the harness rule — claims on
    for every guarded plain run, making acyclic-order a hard failure there
    too; ``False`` is the legacy-comparison axis.
    """
    for profile in profiles:
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r} (know {PROFILES})")
    summary = SweepSummary()
    started = time.monotonic()
    for seed in seeds:
        for profile in profiles:
            if time_cap_s is not None and time.monotonic() - started > time_cap_s:
                summary.timed_out = True
                summary.elapsed_s = time.monotonic() - started
                return summary
            scenario = apply_profile(generate_scenario(seed, profile), profile)
            if hybrid is not None:
                scenario = replace(scenario, hybrid=hybrid)
            if batch_window is not None:
                scenario = replace(scenario, batch_window=batch_window)
            result = run_scenario(
                scenario, pivot_guard=pivot_guard, order_claims=order_claims
            )
            summary.runs += 1
            if result.strict_ok:
                summary.clean += 1
            else:
                if result.ok:
                    summary.anomalies.append(result)
                else:
                    summary.failures.append(result)
                if shrink_failures:
                    # Shrinking re-runs the scenario up to max_probes times;
                    # bound every probe by the sweep's remaining time budget
                    # so one finding cannot blow a CI time cap.  Probes past
                    # the deadline report "not failing", which stops the
                    # reduction quickly and keeps the best scenario so far.
                    base_fails = default_predicate(
                        pivot_guard, order_claims=order_claims
                    )
                    if time_cap_s is not None:
                        deadline = started + time_cap_s
                        if time.monotonic() >= deadline:
                            summary.timed_out = True
                            continue  # keep scanning cheaply; no more shrinks

                        def fails(candidate, _fails=base_fails, _deadline=deadline):
                            if time.monotonic() > _deadline:
                                return False
                            return _fails(candidate)

                    else:
                        fails = base_fails
                    try:
                        summary.shrunk.append(
                            shrink_scenario(scenario, fails=fails, max_probes=300)
                        )
                    except ValueError:
                        # Deadline expired between the pre-check and the
                        # shrinker's own initial failing-run validation.
                        summary.timed_out = True
            if progress is not None:
                progress(seed, profile, result)
    summary.elapsed_s = time.monotonic() - started
    return summary


# ------------------------------------------------------------------------ CLI
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="FlexCast fuzz sweep",
        epilog=(
            "Fuzzing runs in the deterministic simulator.  The same "
            "crash-restart invariants are exercised against real OS "
            "processes by the multi-process runtime and its soak benchmark "
            "(benchmarks/run_soak.py) — see docs/OPERATIONS.md."
        ),
    )
    parser.add_argument("--seeds", type=int, default=50, help="number of seeds")
    parser.add_argument("--seed-base", type=int, default=0)
    parser.add_argument(
        "--profiles",
        default="none,dup,reconfig",
        help=f"comma-separated subset of {','.join(PROFILES)}",
    )
    parser.add_argument("--out-dir", default=None, help="write shrunk failures here")
    parser.add_argument("--time-cap-s", type=float, default=None)
    parser.add_argument("--no-shrink", action="store_true")
    parser.add_argument(
        "--unguarded",
        action="store_true",
        help="run with the legacy (pre-fix) protocol, pivot guard disabled",
    )
    parser.add_argument(
        "--hybrid",
        dest="hybrid",
        action="store_true",
        default=None,
        help="force the Skeen-timestamp hybrid ordering authority ON for "
        "every run (acyclic-order findings become hard failures)",
    )
    parser.add_argument(
        "--no-hybrid",
        dest="hybrid",
        action="store_false",
        help="force hybrid mode OFF (default: follow each scenario's flag)",
    )
    parser.add_argument(
        "--batch",
        dest="batch_window",
        type=int,
        default=None,
        metavar="N",
        help="force the client-side batching window to N for every run "
        "(1 = unbatched; default: follow each scenario's batch_window)",
    )
    parser.add_argument(
        "--no-claims",
        dest="order_claims",
        action="store_false",
        default=None,
        help="disable the conflict-scoped order claims for every run "
        "(legacy-comparison axis; acyclic-order findings become reported "
        "anomalies again instead of hard failures)",
    )
    parser.add_argument("--replay", default=None, help="replay one schedule JSON")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.replay:
        scenario = FuzzScenario.load(args.replay)
        result = run_scenario(
            scenario,
            pivot_guard=not args.unguarded,
            hybrid=args.hybrid,
            order_claims=args.order_claims,
        )
        print(
            f"replayed {scenario.name}: submitted={result.submitted} "
            f"delivered={result.delivered} violations={len(result.violations)} "
            f"ordering anomalies={len(result.ordering_anomalies)}"
        )
        for violation in result.violations + result.ordering_anomalies:
            print(f"  {violation}")
        # A replayed regression schedule reports *any* checked finding.
        return 0 if result.strict_ok else 1

    profiles = [p.strip() for p in args.profiles.split(",") if p.strip()]
    seeds = range(args.seed_base, args.seed_base + args.seeds)

    def progress(seed, profile, result):
        if args.quiet:
            return
        if not result.ok:
            status = f"FAIL({len(result.violations)})"
        elif result.ordering_anomalies:
            status = f"anomaly({len(result.ordering_anomalies)})"
        else:
            status = "ok"
        print(
            f"seed={seed:<4} profile={profile:<9} delivered="
            f"{result.delivered:<5} {status}",
            flush=True,
        )

    summary = run_sweep(
        seeds,
        profiles=profiles,
        pivot_guard=not args.unguarded,
        shrink_failures=not args.no_shrink,
        time_cap_s=args.time_cap_s,
        progress=progress,
        hybrid=args.hybrid,
        batch_window=args.batch_window,
        order_claims=args.order_claims,
    )
    print(
        f"\nsweep: {summary.clean}/{summary.runs} clean, "
        f"{len(summary.failures)} guarantee violations, "
        f"{len(summary.anomalies)} ordering anomalies in "
        f"{summary.elapsed_s:.1f}s"
        + (" (time cap hit)" if summary.timed_out else "")
    )
    if args.out_dir and summary.shrunk:
        out = Path(args.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for index, scenario in enumerate(summary.shrunk):
            path = out / f"shrunk-{scenario.name}-{index}.json"
            scenario.save(path)
            print(f"wrote {path}")
            # Re-run the shrunk schedule with lifecycle tracing on and dump
            # the per-message timelines next to it (runs are deterministic,
            # so the trace describes exactly the committed failure).  Inspect
            # with: PYTHONPATH=src python -m repro.obs trace <trace.json>
            obs = Observability.with_tracing()
            run_scenario(
                scenario,
                pivot_guard=not args.unguarded,
                hybrid=args.hybrid,
                obs=obs,
                order_claims=args.order_claims,
            )
            trace_path = out / f"trace-{scenario.name}-{index}.json"
            obs.tracer.dump_json(trace_path)
            print(f"wrote {trace_path}")
            metrics_path = out / f"metrics-{scenario.name}-{index}.json"
            obs.registry.dump_json(metrics_path)
            print(f"wrote {metrics_path}")
    for failure in summary.failures:
        print(f"\n{failure.scenario.name}:")
        for violation in failure.violations[:10]:
            print(f"  {violation}")
    for anomaly in summary.anomalies:
        print(f"\n{anomaly.scenario.name} (known-limitation ordering anomaly):")
        for violation in anomaly.ordering_anomalies[:5]:
            print(f"  {violation}")
    return 0 if summary.ok else 1


if __name__ == "__main__":
    sys.exit(main())
