"""Run one fuzz scenario on the deterministic simulator and check it.

The harness deploys the scenario's protocol stack (plain FlexCast groups, the
epoch-reconfigurable variant when switches are scripted, or a multi-Paxos
replicated group for crash profiles), drives the explicit submission schedule,
then runs the *full* oracle suite over the captured trace:

* :func:`repro.checker.check_trace` — integrity, validity/agreement (when the
  profile keeps liveness), prefix order, acyclic order;
* :func:`repro.checker.check_sequential_replay` — the generic sequential
  replay oracle (state-level divergence, the form applications see bugs in);
* :func:`repro.checker.conservation_check` — exactly-once effect accounting;
* :func:`repro.checker.check_epochs` — epoch monotonic/agreement/barrier
  properties when the scenario reconfigures;
* replica agreement / post-fail-over delivery for crash scenarios;
* batch atomicity when the scenario batches (``batch_window`` > 1): the
  delivery gate splits every batch into per-member deliveries *before* the
  oracles run, so all of the above apply unchanged, and an additional check
  pins the batching contract itself — per group, a batch is delivered
  all-or-nothing, contiguously, in member order (a dropped batch degrades
  exactly like N dropped messages).

Every run is a pure function of the scenario, so a failing scenario can be
shrunk (:mod:`repro.fuzz.shrink`) and committed as a regression schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..checker.properties import check_epochs, check_trace
from ..checker.recovery import check_recovery
from ..checker.replay import check_sequential_replay, conservation_check
from ..core.batching import BatchingClient
from ..core.flexcast import FlexCastGroup, FlexCastProtocol
from ..core.message import ClientRequest, Message
from ..obs import Observability
from ..overlay.base import GroupId
from ..overlay.cdag import CDagOverlay
from ..protocols.base import RecordingSink
from ..reconfig.coordinator import EpochCoordinator
from ..reconfig.group import ReconfigurableFlexCastProtocol
from ..sim.events import EventLoop
from ..sim.latencies import LatencyMatrix, aws_latency_matrix
from ..sim.network import Network
from ..sim.transport import SimTransport
from ..smr.replica import ReplicatedGroup
from ..storage import InMemoryStorage
from ..workload.clients import BoundedResubmitter
from .profiles import EnvelopeFaultFilter
from .scenario import FuzzScenario, Submission

CLIENT = "fuzz-client"
COORDINATOR = "fuzz-coordinator"

#: Event budget per run; exceeding it is reported as a livelock violation.
MAX_EVENTS = 3_000_000


@dataclass
class FuzzResult:
    """Outcome of one scenario run.

    Violations are split into two buckets:

    * :attr:`violations` — breaches of the properties the protocol
      *guarantees*: integrity, no-loss/no-dup (validity/agreement,
      conservation), prefix order, epoch safety, liveness (no livelock).
      The sweep gate fails on any of these.
    * :attr:`ordering_anomalies` — global acyclic-order violations (and the
      replay/prefix shadows of the same underlying cycle).  Under extreme
      cross-group conflict the c-DAG's down-only information flow lets
      groups commit complementary halves of a delivery cycle no local rule
      can see in time; the pivot guard makes this rare and poison tolerance
      keeps it from ever losing messages, but it cannot be excluded — see
      DESIGN.md "anatomy of a lost delivery".  These are *reported* (and
      shrinkable) so the limitation stays measured, not hidden.

    With **hybrid mode** on, the second bucket is retired: the Skeen
    timestamp authority makes global acyclic order a guaranteed property, so
    an acyclic-order finding is a genuine violation and stays in
    :attr:`violations` (``finalize_buckets(strict=True)``).

    Since the conflict-scoped **order claims** closed the single-shared-group
    3-cycle, the same is true for guarded plain-mode runs (the harness
    default): the anomaly bucket only survives for explicitly legacy runs —
    ``order_claims=False`` or ``pivot_guard=False`` — which regression
    schedules use to demonstrate the holes the fixes close.
    """

    scenario: FuzzScenario
    violations: List[str] = field(default_factory=list)
    ordering_anomalies: List[str] = field(default_factory=list)
    submitted: int = 0
    delivered: int = 0
    events: int = 0
    #: Per-group delivery sequences (msg ids), for diagnosis and tests.
    sequences: Dict[Hashable, List[str]] = field(default_factory=dict)
    #: Batches the client shipped: ``(batch_id, member msg_ids)`` in send
    #: order (empty when the scenario runs unbatched).  Input to the
    #: batch-atomicity oracle and to tests.
    batches: List[Tuple[str, Tuple[str, ...]]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No violation of a guaranteed property."""
        return not self.violations

    @property
    def strict_ok(self) -> bool:
        """No violation of any checked property, ordering anomalies included."""
        return not self.violations and not self.ordering_anomalies

    def finalize_buckets(self, strict: bool = False) -> None:
        """Move cycle-shadow violations into :attr:`ordering_anomalies`.

        When (and only when) a run contains an acyclic-order violation, the
        replay divergence and any prefix-order disagreement are downstream
        manifestations of that same cycle (poison-tolerant delivery keeps
        going through contradictory constraints instead of losing messages).
        Without a cycle, prefix/replay failures are genuine guarantee
        breaches and stay in :attr:`violations`.

        ``strict`` (hybrid mode) disables the re-bucketing entirely: acyclic
        order is guaranteed there, so a cycle is a first-class violation and
        the sweep gate must fail on it.
        """
        if strict:
            return
        has_cycle = any("[acyclic-order]" in v for v in self.violations)
        if not has_cycle:
            return
        shadows = ("[acyclic-order]", "[prefix-order]", "[replay]")
        keep: List[str] = []
        for violation in self.violations:
            if any(violation.startswith(s) for s in shadows):
                self.ordering_anomalies.append(violation)
            else:
                keep.append(violation)
        self.violations = keep


def _latency_matrix(scenario: FuzzScenario) -> LatencyMatrix:
    if scenario.latency == "aws":
        return aws_latency_matrix()
    num_sites = max(2, len(scenario.order))
    base = scenario.uniform_ms
    matrix = [
        [0.3 if i == j else base for j in range(num_sites)]
        for i in range(num_sites)
    ]
    return LatencyMatrix(matrix=matrix, names=[f"s{i}" for i in range(num_sites)])


def _flush_submissions(scenario: FuzzScenario) -> List[Submission]:
    if not scenario.gc_interval_ms:
        return []
    horizon = max((s.at_ms for s in scenario.submissions), default=0.0)
    flushes = []
    t = scenario.gc_interval_ms
    k = 0
    while t < horizon + 2 * scenario.gc_interval_ms:
        flushes.append(
            Submission(
                at_ms=round(t, 3),
                msg_id=f"{scenario.name}-flush{k}",
                dst=tuple(scenario.order),
                payload_bytes=8,
                is_flush=True,
            )
        )
        k += 1
        t += scenario.gc_interval_ms
    return flushes


def run_scenario(
    scenario: FuzzScenario,
    pivot_guard: bool = True,
    hybrid: Optional[bool] = None,
    use_batching_client: bool = False,
    obs: Optional[Observability] = None,
    order_claims: Optional[bool] = None,
) -> FuzzResult:
    """Execute ``scenario`` deterministically and return the checked result.

    ``hybrid=None`` (the default) follows the scenario's own ``hybrid``
    field; an explicit ``True``/``False`` overrides it (the sweep's hybrid
    on/off axis).  ``use_batching_client`` forces submissions through a
    :class:`~repro.core.batching.BatchingClient` even when the scenario's
    ``batch_window`` is 1 — the differential equivalence tests use this to
    pin that a window of one is bit-identical to the unbatched client.
    ``obs`` attaches an observability hub (:mod:`repro.obs`) to every group
    and client in the run; with a tracer on the hub, the run leaves a full
    per-message lifecycle trace behind (the sweep dumps it next to a shrunk
    failing schedule).  Timestamps are virtual simulator milliseconds, so a
    trace is as deterministic as the run itself.

    ``order_claims`` controls the conflict-scoped order claims that close
    plain mode's single-shared-group 3-cycle: ``None`` (the default) enables
    them for every guarded non-hybrid run — the harness derives the declared
    shape universe from the scenario's own destination sets — making
    ``acyclic-order`` a *hard* property for plain mode; ``False`` reverts to
    the legacy claim-free protocol (regression schedules use it to
    demonstrate the 3-cycle the claims close).
    """
    if hybrid is None:
        hybrid = scenario.hybrid
    if order_claims is None:
        order_claims = pivot_guard and not hybrid
    if scenario.replication_factor > 1:
        return _run_replicated(scenario, pivot_guard, hybrid, obs)
    return _run_flexcast(
        scenario, pivot_guard, hybrid, use_batching_client, obs, order_claims
    )


# ----------------------------------------------------------- batch atomicity
def _check_batch_atomicity(
    sequences: Dict[GroupId, List[str]],
    batches: List[Tuple[str, Tuple[str, ...]]],
) -> List[str]:
    """The batching contract: per group, a batch is all-or-nothing.

    The delivery gate fans a batch carrier out atomically, so every group
    either delivers *all* members — contiguously, in member order — or none
    of them (e.g. the batch envelope was dropped on the way to that group's
    msg path).  A partial, reordered or interleaved batch means the carrier
    stopped being one ordering unit somewhere, which is exactly the failure
    mode batching must never introduce.  This holds unconditionally for the
    harness's (compliant) client: each message belongs to exactly one
    ordering unit, and in-flight member retries are absorbed by the enqueue
    guard — the gate's deliver-once fallback for *non-compliant* duplicate
    submissions is unreachable here, so any finding is a genuine bug.
    """
    violations: List[str] = []
    for batch_id, members in batches:
        member_set = set(members)
        for gid, seq in sequences.items():
            positions = [i for i, mid in enumerate(seq) if mid in member_set]
            if not positions:
                continue  # the "nothing" arm: dropped batch = N dropped messages
            delivered = [seq[i] for i in positions]
            if len(positions) != len(members):
                violations.append(
                    f"[batch-atomicity] group {gid} delivered "
                    f"{len(positions)}/{len(members)} members of batch "
                    f"{batch_id} — partial batch delivery"
                )
            elif delivered != list(members):
                violations.append(
                    f"[batch-atomicity] group {gid} delivered batch "
                    f"{batch_id} members out of batch order: {delivered}"
                )
            elif positions != list(range(positions[0], positions[0] + len(members))):
                violations.append(
                    f"[batch-atomicity] group {gid} interleaved other "
                    f"deliveries inside batch {batch_id}"
                )
    return violations


# ---------------------------------------------------------------- leak oracle
def _check_leaks(
    groups: Dict[GroupId, object], batcher: Optional[BatchingClient]
) -> List[str]:
    """End-of-run resource-leak oracle (clean runs only).

    After a run where every submission was delivered and the loop went idle,
    the per-message machinery must have wound down: no queued messages, no
    parked notifications, no undecided timestamp entries, no open windows —
    and the two standing leak invariants (pending entries the history
    forgot; member-index entries without a carrier) must hold.  The raw
    pending-set *size* is deliberately not asserted: entries legitimately
    wait for the next flush GC pass, which is exactly why the leak gauge
    isolates forgotten-but-still-pending ids instead.

    These are the same quantities :meth:`FlexCastGroup.attach_obs` exposes
    as gauges, so "the gauges read zero" and "this oracle passes" are one
    statement.
    """
    violations: List[str] = []
    for gid, group in groups.items():
        if not isinstance(group, FlexCastGroup):
            continue
        checks = [
            ("queue depth", sum(len(q) for q in group.queues.values())),
            ("open dependencies", len(group.open_dependencies())),
            ("parked notifications", len(group.pending_notifications)),
            (
                "undecided timestamp entries",
                group.ts.pending_count() if group.ts is not None else 0,
            ),
            ("leaked pending entries", group._leaked_pending_entries()),
            ("member-index orphans", group._member_index_orphans()),
        ]
        for what, count in checks:
            if count:
                violations.append(
                    f"[leak] group {gid}: {count} {what} remain after a "
                    f"clean run"
                )
    if batcher is not None and batcher.buffered:
        violations.append(
            f"[leak] client: {batcher.buffered} messages still buffered in "
            f"open batch windows after a clean run"
        )
    return violations


# ------------------------------------------------------------------ flexcast
def scenario_conflict_shapes(scenario: FuzzScenario) -> Tuple[frozenset, ...]:
    """The declared destination-shape universe for order claims: every
    global destination set the scenario can submit, plus the all-groups
    shape used by GC flushes and epoch barriers."""
    shapes = {frozenset(sub.dst) for sub in scenario.submissions}
    shapes.add(frozenset(scenario.order))
    return tuple(sorted(
        (s for s in shapes if len(s) > 1),
        key=lambda s: sorted(map(str, s)),
    ))


def _run_flexcast(
    scenario: FuzzScenario,
    pivot_guard: bool,
    hybrid: bool,
    use_batching_client: bool = False,
    obs: Optional[Observability] = None,
    order_claims: bool = False,
) -> FuzzResult:
    loop = EventLoop()
    latencies = _latency_matrix(scenario)
    network = Network(
        loop, latencies, jitter_ms=scenario.jitter_ms, seed=scenario.net_seed
    )
    overlay = CDagOverlay(list(scenario.order))
    reconfigurable = bool(scenario.reconfigs)
    conflict_shapes = (
        scenario_conflict_shapes(scenario) if order_claims and not hybrid else None
    )
    if reconfigurable:
        protocol = ReconfigurableFlexCastProtocol(
            overlay,
            pivot_guard=pivot_guard,
            hybrid=hybrid,
            conflict_shapes=conflict_shapes,
        )
    else:
        protocol = FlexCastProtocol(
            overlay,
            pivot_guard=pivot_guard,
            hybrid=hybrid,
            conflict_shapes=conflict_shapes,
        )

    sink = RecordingSink(clock=lambda: loop.now)
    groups: Dict[GroupId, object] = {}
    delivery_epochs: Dict[GroupId, List[Tuple[str, int]]] = {
        gid: [] for gid in scenario.order
    }

    def make_sink(gid):
        def epoch_sink(group_id, message):
            sink(group_id, message)
            delivery_epochs[gid].append((message.msg_id, groups[gid].epoch))

        return epoch_sink

    for gid in scenario.order:
        group = protocol.create_group(gid, SimTransport(network, gid), make_sink(gid))
        groups[gid] = group
        if obs is not None:
            group.attach_obs(obs)
        network.register(gid, site=int(gid) % latencies.num_sites, handler=group.on_envelope)
    network.register(CLIENT, site=0, handler=lambda s, p: None)

    coordinator: Optional[EpochCoordinator] = None
    if reconfigurable:
        coordinator = EpochCoordinator(
            node_id=COORDINATOR,
            transport=SimTransport(network, COORDINATOR),
            protocol=protocol,
        )
        network.register(COORDINATOR, site=0, handler=coordinator.on_message)
        for reconfig in scenario.reconfigs:
            def fire(order=reconfig.order):
                # Overlapping switches are illegal; skip if one is running.
                if coordinator.state == "idle":
                    coordinator.trigger_switch(list(order))

            loop.schedule_at(reconfig.at_ms, fire)

    if scenario.profile == "dup":
        network.set_drop_filter(
            EnvelopeFaultFilter(
                network, scenario.profile_rate, scenario.profile_seed, "dup"
            )
        )
    elif scenario.profile == "loss":
        network.set_drop_filter(
            EnvelopeFaultFilter(
                network, scenario.profile_rate, scenario.profile_seed, "drop"
            )
        )

    batcher: Optional[BatchingClient] = None
    if use_batching_client or scenario.batch_window > 1:
        batcher = BatchingClient(
            CLIENT,
            protocol,
            send_request=lambda gid, envelope: network.send(CLIENT, gid, envelope),
            clock=lambda: loop.now,
            max_batch=scenario.batch_window,
            max_delay_ms=scenario.batch_delay_ms,
            schedule=loop.schedule,
        )
        if obs is not None:
            batcher.attach_obs(obs)

    submissions = list(scenario.submissions) + _flush_submissions(scenario)
    messages: Dict[str, Message] = {}
    tiebreak: Dict[str, int] = {}
    for index, sub in enumerate(submissions):
        message = Message.create(
            destinations=sub.dst,
            sender=CLIENT,
            payload={"i": index},
            payload_bytes=sub.payload_bytes,
            msg_id=sub.msg_id,
            is_flush=sub.is_flush,
        )
        messages[message.msg_id] = message
        tiebreak[message.msg_id] = index

        def submit(message=message):
            if batcher is not None:
                batcher.submit(message)
            else:
                entry = protocol.entry_groups(message)[0]
                network.send(CLIENT, entry, ClientRequest(message=message))

        loop.schedule_at(sub.at_ms, submit)

    result = FuzzResult(scenario=scenario, submitted=len(submissions))
    try:
        result.events = loop.run_until_idle(max_events=MAX_EVENTS)
    except RuntimeError as exc:
        result.violations.append(f"[livelock] {exc}")
        return result

    if coordinator is not None:
        for barrier in coordinator.barrier_messages:
            messages[barrier.msg_id] = barrier
            tiebreak.setdefault(barrier.msg_id, len(tiebreak))

    sequences = {gid: sink.sequence(gid) for gid in scenario.order}
    result.sequences = sequences
    result.delivered = sum(len(s) for s in sequences.values())

    if batcher is not None:
        # The gate fans batches out into per-member deliveries, so the
        # sequences the standard oracle suite below sees are already
        # per-message — every existing invariant applies unchanged.  The
        # batching layer adds exactly one new obligation, checked here.
        result.batches = list(batcher.batch_log)
        result.violations.extend(
            _check_batch_atomicity(sequences, batcher.batch_log)
        )

    expect_all = scenario.expect_all_delivered
    report = check_trace(sink, messages.values(), expect_all_delivered=expect_all)
    result.violations.extend(str(v) for v in report.violations)

    replay = check_sequential_replay(
        sequences, messages, expect_all_delivered=expect_all, tiebreak=tiebreak
    )
    result.violations.extend(str(v) for v in replay.violations)

    if expect_all:
        conservation = conservation_check(sequences, messages)
        result.violations.extend(str(v) for v in conservation.violations)
        # Clean run: the per-message machinery must have wound down too.
        result.violations.extend(_check_leaks(groups, batcher))

    if coordinator is not None:
        epoch_report = check_epochs(delivery_epochs, barriers=coordinator.barriers)
        result.violations.extend(str(v) for v in epoch_report.violations)

    result.finalize_buckets(strict=hybrid or order_claims)
    return result


# ---------------------------------------------------------------- replicated
def _run_replicated(
    scenario: FuzzScenario,
    pivot_guard: bool,
    hybrid: bool,
    obs: Optional[Observability] = None,
) -> FuzzResult:
    """Crash-profile runs: one multi-Paxos replicated group.

    Replicas persist to a shared :class:`InMemoryStorage` (the simulated
    "disk" that survives a crash); scripted :class:`Restart` events tear a
    crashed replica down to that persisted state and reboot it mid-run, and
    the recovery oracle then checks its delivery sequence across the restart
    boundary.  With ``client_retries`` > 0 a bounded resubmit-on-timeout
    layer re-sends undelivered requests, so full delivery stays in the
    oracle's contract even when requests die with a crashing replica.
    """
    loop = EventLoop()
    base = scenario.uniform_ms
    latencies = LatencyMatrix(
        matrix=[[0.3, base], [base, 0.3]], names=["group", "clients"]
    )
    network = Network(
        loop, latencies, jitter_ms=scenario.jitter_ms, seed=scenario.net_seed
    )
    protocol = FlexCastProtocol(CDagOverlay([0]), pivot_guard=pivot_guard, hybrid=hybrid)

    sink = RecordingSink(clock=lambda: loop.now)
    delivered_ids: set = set()

    def recording_sink(group_id: GroupId, message: Message) -> None:
        delivered_ids.add(message.msg_id)
        sink(group_id, message)

    storage = InMemoryStorage()
    group = ReplicatedGroup(
        group_id=0,
        protocol=protocol,
        network=network,
        site=0,
        sink=recording_sink,
        replication_factor=scenario.replication_factor,
        storage=storage,
    )
    if obs is not None:
        group.attach_obs(obs)
    network.register(CLIENT, site=1, handler=lambda s, p: None)

    # Crashes first: at equal virtual times they precede submissions, so the
    # "submitted after the crash" expectation below is well defined.  Each
    # crash snapshots the victim's delivery sequence for the recovery oracle.
    crash_times = []
    pre_crash: Dict[int, List[str]] = {}
    for crash in scenario.crashes:
        def fire(index=crash.replica):
            if index not in group._crashed_indices and len(
                group._crashed_indices
            ) < scenario.replication_factor - 1:
                pre_crash[index] = list(group.replicas[index].local_deliveries)
                group.crash_replica(index, network)

        crash_times.append(crash.at_ms)
        loop.schedule_at(crash.at_ms, fire)

    # Restarts: reboot a crashed replica from its persisted state.  The new
    # incarnation is tracked so the oracle can compare it against the
    # pre-crash snapshot and against a never-crashed survivor.
    restarted: Dict[int, object] = {}
    restart_times: List[float] = []
    for restart in scenario.restarts:
        def reboot(index=restart.replica):
            if index in group._crashed_indices:
                restarted[index] = group.restart_replica(index, network)

        restart_times.append(restart.at_ms)
        loop.schedule_at(restart.at_ms, reboot)

    messages: Dict[str, Message] = {}
    resubmitter: Optional[BoundedResubmitter] = None
    if scenario.client_retries > 0:
        # One timeout period comfortably covers a client->group round trip
        # plus SMR ordering; deterministic (pure function of the scenario).
        resubmitter = BoundedResubmitter(
            resend=lambda msg_id: network.send(
                CLIENT, group.leader.replica_id, ClientRequest(message=messages[msg_id])
            ),
            is_settled=lambda msg_id: msg_id in delivered_ids,
            schedule=loop.schedule,
            timeout_ms=scenario.uniform_ms * 8 + 50.0,
            max_retries=scenario.client_retries,
        )

    for index, sub in enumerate(scenario.submissions):
        message = Message.create(
            destinations=(0,),
            sender=CLIENT,
            payload={"i": index},
            payload_bytes=sub.payload_bytes,
            msg_id=sub.msg_id,
        )
        messages[message.msg_id] = message

        def submit(message=message):
            network.send(CLIENT, group.leader.replica_id, ClientRequest(message=message))
            if resubmitter is not None:
                resubmitter.track(message.msg_id)

        loop.schedule_at(sub.at_ms, submit)

    result = FuzzResult(scenario=scenario, submitted=len(scenario.submissions))
    try:
        result.events = loop.run_until_idle(max_events=MAX_EVENTS)
    except RuntimeError as exc:
        result.violations.append(f"[livelock] {exc}")
        return result

    delivered = sink.sequence(0)
    result.sequences = {0: delivered}
    result.delivered = len(delivered)

    # Safety: exactly-once, only-submitted.
    seen = set()
    for msg_id in delivered:
        if msg_id in seen:
            result.violations.append(f"[smr-integrity] {msg_id} delivered twice")
        seen.add(msg_id)
        if msg_id not in messages:
            result.violations.append(
                f"[smr-integrity] {msg_id} delivered but never submitted"
            )

    # Agreement: every active replica's own protocol copy delivered the same
    # sequence (restarted replicas included — they are full members again).
    active = [
        replica
        for index, replica in enumerate(group.replicas)
        if index not in group._crashed_indices
    ]
    reference_seq: Optional[List[str]] = None
    for index, replica in enumerate(group.replicas):
        if index not in group._crashed_indices and index not in restarted:
            reference_seq = list(replica.local_deliveries)
            break
    for replica in active[1:]:
        if replica.local_deliveries != active[0].local_deliveries:
            result.violations.append(
                "[smr-agreement] surviving replicas applied different sequences"
            )
            break

    # Recovery oracle: each rebooted replica's sequence across its restart.
    for index, replica in restarted.items():
        report = check_recovery(
            pre_crash=pre_crash.get(index, []),
            rejoined=replica.local_deliveries,
            reference=reference_seq,
            replica=str(replica.replica_id),
        )
        result.violations.extend(str(v) for v in report.violations)

    if scenario.expect_all_delivered:
        # With the client retry layer on, *every* submission must land.
        missing = set(messages) - set(delivered)
        if missing:
            result.violations.append(
                f"[smr-validity] {len(missing)} submissions never delivered "
                f"despite retries: {sorted(missing)[:5]}"
            )
        if resubmitter is not None:
            stuck = sorted(set(resubmitter.exhausted) - set(delivered))
            if stuck:
                result.violations.append(
                    f"[smr-validity] retry budget exhausted for {stuck[:5]}"
                )
    else:
        # Liveness across fail-over: everything submitted strictly after the
        # last crash reached the application (earlier in-flight requests may
        # be lost with the crashing replica when retries are off).
        last_crash = max(crash_times, default=-1.0)
        expected_after = {
            sub.msg_id for sub in scenario.submissions if sub.at_ms > last_crash
        }
        missing = expected_after - set(delivered)
        if missing:
            result.violations.append(
                f"[smr-failover] {len(missing)} post-crash submissions never "
                f"delivered: {sorted(missing)[:5]}"
            )
    return result
