"""Serializable fuzz scenarios (schedules).

A :class:`FuzzScenario` pins *everything* that determines a run: the overlay
rank order, the latency geometry, the network jitter seed, the fault profile
(and its seed), explicit client submissions with virtual-time offsets, and
scripted reconfiguration/crash events.  Two runs of the same scenario are
bit-identical, which is what makes shrinking and checked-in regression
schedules possible.

Scenarios serialize to plain JSON (``to_dict`` / ``from_dict`` /
``save`` / ``load``) so a shrunk failing schedule can be committed under
``tests/regression/schedules/`` and replayed forever.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from ..overlay.base import GroupId

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Submission:
    """One client submission: multicast ``msg_id`` to ``dst`` at ``at_ms``."""

    at_ms: float
    msg_id: str
    dst: Tuple[GroupId, ...]
    payload_bytes: int = 64
    is_flush: bool = False


@dataclass(frozen=True)
class Reconfig:
    """A scripted mid-run overlay switch to ``order`` starting at ``at_ms``."""

    at_ms: float
    order: Tuple[GroupId, ...]


@dataclass(frozen=True)
class Crash:
    """A scripted replica crash (``replica`` index) at ``at_ms``."""

    at_ms: float
    replica: int


@dataclass(frozen=True)
class Restart:
    """A scripted reboot of crashed replica ``replica`` at ``at_ms``.

    The replica comes back with only its persisted state (WAL + snapshot)
    and must rejoin via replay + peer catch-up; a no-op if the replica is
    not down at ``at_ms``.
    """

    at_ms: float
    replica: int


@dataclass(frozen=True)
class FuzzScenario:
    """A fully deterministic schedule for one simulated run."""

    name: str
    order: Tuple[GroupId, ...]
    submissions: Tuple[Submission, ...]
    latency: str = "uniform"          # "uniform" | "aws" | "clustered"
    uniform_ms: float = 40.0
    jitter_ms: float = 2.0
    net_seed: int = 0
    profile: str = "none"             # see repro.fuzz.profiles.PROFILES
    profile_seed: int = 0
    profile_rate: float = 0.0         # loss/duplication probability
    gc_interval_ms: Optional[float] = None
    reconfigs: Tuple[Reconfig, ...] = ()
    crashes: Tuple[Crash, ...] = ()
    #: Scripted reboots of crashed replicas (crash-restart profile).  Old
    #: schedules deserialize to () — no restarts, unchanged behaviour.
    restarts: Tuple[Restart, ...] = ()
    replication_factor: int = 1       # >1 switches the harness to SMR mode
    #: Bounded client resubmit-on-timeout attempts per submission (0 = no
    #: retries).  With retries on, crash runs can assert every submission is
    #: delivered: re-submissions are idempotent end to end.
    client_retries: int = 0
    #: Safety-only mode: the profile makes liveness impossible (e.g. loss on
    #: channels FlexCast assumes reliable), so the oracle checks that what
    #: *was* delivered is consistent, not that everything was delivered.
    expect_all_delivered: bool = True
    #: Hybrid Skeen-timestamp ordering authority (see repro.core.flexcast).
    #: With hybrid on, global acyclic order is a *guaranteed* property: the
    #: harness promotes ``acyclic-order`` findings (and their replay/prefix
    #: shadows) from reported anomalies to hard violations.
    hybrid: bool = False
    #: Client-side batching window (repro.core.batching.BatchingClient):
    #: same-destination submissions are coalesced up to this many per
    #: FlexCastBatch.  ``1`` (the default, and the value every pre-batching
    #: schedule deserializes to) disables batching — behaviour is then
    #: bit-identical to the unbatched client.  Ignored by crash-profile
    #: (SMR) runs, which exercise the replication layer's own path.
    batch_window: int = 1
    #: Time trigger closing a partially filled batch window (virtual ms).
    batch_delay_ms: float = 5.0

    # ------------------------------------------------------------- transforms
    def with_submissions(self, submissions: Sequence[Submission]) -> "FuzzScenario":
        return replace(self, submissions=tuple(submissions))

    def with_order(self, order: Sequence[GroupId]) -> "FuzzScenario":
        return replace(self, order=tuple(order))

    @property
    def used_groups(self) -> Tuple[GroupId, ...]:
        used = set()
        for sub in self.submissions:
            used.update(sub.dst)
        for rec in self.reconfigs:
            used.update(rec.order)
        return tuple(g for g in self.order if g in used)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict:
        data = asdict(self)
        data["version"] = SCHEMA_VERSION
        return data

    @staticmethod
    def from_dict(data: Dict) -> "FuzzScenario":
        data = dict(data)
        version = data.pop("version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported scenario schema version {version}")
        data["order"] = tuple(data["order"])
        data["submissions"] = tuple(
            Submission(
                at_ms=s["at_ms"],
                msg_id=s["msg_id"],
                dst=tuple(s["dst"]),
                payload_bytes=s.get("payload_bytes", 64),
                is_flush=s.get("is_flush", False),
            )
            for s in data["submissions"]
        )
        data["reconfigs"] = tuple(
            Reconfig(at_ms=r["at_ms"], order=tuple(r["order"]))
            for r in data.get("reconfigs", ())
        )
        data["crashes"] = tuple(
            Crash(at_ms=c["at_ms"], replica=c["replica"])
            for c in data.get("crashes", ())
        )
        data["restarts"] = tuple(
            Restart(at_ms=r["at_ms"], replica=r["replica"])
            for r in data.get("restarts", ())
        )
        return FuzzScenario(**data)

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @staticmethod
    def load(path) -> "FuzzScenario":
        return FuzzScenario.from_dict(json.loads(Path(path).read_text()))
