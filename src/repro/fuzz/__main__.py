"""``python -m repro.fuzz`` — run the scenario-sweep CLI."""

import sys

from .sweep import main

if __name__ == "__main__":
    sys.exit(main())
