"""``python -m repro.fuzz`` — fuzz CLIs.

* ``python -m repro.fuzz [sweep] ...`` — randomized scenario sweep
  (:mod:`repro.fuzz.sweep`); the subcommand word is optional for backward
  compatibility with existing invocations.
* ``python -m repro.fuzz explore ...`` — bounded-exhaustive schedule
  exploration of small destination-set shapes (:mod:`repro.fuzz.explore`).
"""

import sys


def main(argv=None):
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "explore":
        from .explore import main as explore_main

        return explore_main(args[1:])
    if args and args[0] == "sweep":
        args = args[1:]
    from .sweep import main as sweep_main

    return sweep_main(args)


if __name__ == "__main__":
    sys.exit(main())
