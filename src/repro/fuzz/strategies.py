"""Hypothesis strategies biased toward the single-shared-group conflict class.

The random sweep (:mod:`repro.fuzz.sweep`) draws destination sets uniformly,
which makes the 3-cycle precondition — a *cycle* of message pairs whose
destination sets intersect in exactly one group each — a rare event: PR 9's
hypothesis run needed hundreds of examples to stumble into one.  The
strategies here construct that precondition *by design*: every generated
scenario contains a cycle of ``n`` messages where cyclically-adjacent pairs
meet at exactly one dedicated group and nowhere else (extra per-message
groups are drawn from disjoint pools, so they can never widen an
intersection), plus optional unconstrained filler traffic.

This is the adversarial input class for the conflict-scoped order claims
(:mod:`repro.core.flexcast`): each pairwise order in the cycle is decided at
an independent group, which is exactly what let plain mode compose a global
delivery cycle before the claims.  Property tests drive these scenarios
through plain, hybrid, and batched modes and assert ``strict_ok`` — since
the claims, ``acyclic-order`` is a hard property in all three.

Hypothesis is a dev-only dependency: this module is imported by tests, never
by the runtime package.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Set, Tuple

from hypothesis import strategies as st

from ..overlay.base import GroupId
from .scenario import FuzzScenario, Submission

#: Widest overlay the strategies generate (keeps runs fast enough for CI).
MAX_GROUPS = 7


def single_shared_pairs(
    scenario: FuzzScenario,
) -> List[Tuple[Set[GroupId], Set[GroupId]]]:
    """All submission pairs whose destination sets share exactly one group."""
    shapes = [set(s.dst) for s in scenario.submissions if len(s.dst) > 1]
    return [
        (a, b)
        for i, a in enumerate(shapes)
        for b in shapes[i + 1 :]
        if len(a & b) == 1
    ]


@st.composite
def single_shared_group_scenarios(
    draw: st.DrawFn,
    max_groups: int = MAX_GROUPS,
    max_filler: int = 4,
) -> FuzzScenario:
    """Scenarios built around a cycle of single-shared-group message pairs.

    Construction (all draws shrink toward the minimal 3-message/3-group
    triangle):

    * a cycle of ``n`` in [3, 4] messages over ``n`` dedicated *meeting*
      groups — message ``i`` targets ``{meeting[i-1], meeting[i]}``, so
      cyclically-adjacent messages intersect in exactly that one group and
      non-adjacent ones (``n`` = 4) in none;
    * up to ``max_groups - n`` extra groups, each owned by exactly one cycle
      message (disjoint pools — intersections stay single-group);
    * up to ``max_filler`` unconstrained filler messages over the same
      overlay, because the cycle must stay closed amid unrelated traffic;
    * drawn submission times (the race window) and network jitter seed.
    """
    n_cycle = draw(st.integers(3, 4))
    n_extra = draw(st.integers(0, max_groups - n_cycle))
    num_groups = n_cycle + n_extra
    meeting = list(range(n_cycle))
    extras = list(range(n_cycle, num_groups))
    owners = [draw(st.integers(0, n_cycle - 1)) for _ in extras]

    dsts: List[Tuple[GroupId, ...]] = []
    for i in range(n_cycle):
        dst = {meeting[i - 1], meeting[i]}
        dst.update(g for g, owner in zip(extras, owners) if owner == i)
        dsts.append(tuple(sorted(dst)))

    n_filler = draw(st.integers(0, max_filler))
    for _ in range(n_filler):
        filler = draw(
            st.sets(
                st.integers(0, num_groups - 1),
                min_size=2,
                max_size=min(3, num_groups),
            )
        )
        dsts.append(tuple(sorted(filler)))

    submissions = tuple(
        Submission(
            at_ms=round(draw(st.floats(0.0, 150.0, allow_nan=False)), 1),
            msg_id=f"s{i}",
            dst=dst,
        )
        for i, dst in enumerate(dsts)
    )
    return FuzzScenario(
        name="single-shared-strategy",
        order=tuple(range(num_groups)),
        submissions=submissions,
        net_seed=draw(st.integers(0, 999)),
    )


@st.composite
def batched_single_shared_group_scenarios(
    draw: st.DrawFn,
) -> FuzzScenario:
    """The same conflict class, shipped through the batching client.

    A batch carrier is one ordering unit, so coalescing same-destination
    members must not re-open the cycle the claims close (nor may a claims
    deadlock wedge a carrier and break batch atomicity).
    """
    scenario = draw(single_shared_group_scenarios())
    return replace(
        scenario,
        batch_window=draw(st.integers(2, 4)),
        batch_delay_ms=5.0,
    )
