"""Seeded random scenario generation.

Every scenario is a pure function of ``(seed, profile)``: the generator draws
the overlay size, the destination-set shape, the submission timing pattern and
the conflict structure from one ``random.Random(seed)`` stream, so a sweep is
reproducible from its seed list alone.

Shapes covered (the knobs the lost-delivery class of bugs is sensitive to):

* **destination sets** — pairs, mixed small sets, wide fan-out, and a skewed
  mode where a few "hot" groups appear in most destination sets (maximal
  conflict overlap, like the inventory example's warehouses);
* **submission timing** — uniform spread, bursts (many submissions inside a
  short window force concurrent ordering decisions), and a trickle tail;
* **garbage collection** — some scenarios run periodic flush multicasts so
  the GC-vs-in-flight-delta edges get exercised;
* **reconfiguration / crashes** — scripted events are attached by the
  profile (see :mod:`repro.fuzz.profiles`);
* **batching** — a minority of scenarios route submissions through the
  client-side batching window (:mod:`repro.core.batching`), so coalesced
  ordering units are explored against every fault profile.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .scenario import FuzzScenario, Submission

#: Destination-shape modes with relative weights.
_SHAPES = (
    ("pairs", 4),        # |dst| == 2, like cross-warehouse transfers
    ("mixed", 3),        # |dst| in 2..4
    ("wide", 1),         # |dst| up to all groups
    ("hotspot", 3),      # one hot group in most destination sets
)

_TIMINGS = (
    ("spread", 3),       # uniform over the horizon
    ("bursts", 3),       # clustered bursts
    ("front", 1),        # everything almost at once
)


def _weighted_choice(rng: random.Random, options) -> str:
    total = sum(w for _, w in options)
    pick = rng.uniform(0, total)
    acc = 0.0
    for name, weight in options:
        acc += weight
        if pick <= acc:
            return name
    return options[-1][0]


def generate_scenario(seed: int, profile: str = "none") -> FuzzScenario:
    """Build the deterministic scenario for ``(seed, profile)``.

    The profile is attached afterwards by
    :func:`repro.fuzz.profiles.apply_profile`, which may add scripted events
    and relax the delivery expectation; this function only shapes workload.
    """
    rng = random.Random(seed)
    num_groups = rng.randint(3, 8)
    order = tuple(range(num_groups))
    shape = _weighted_choice(rng, _SHAPES)
    timing = _weighted_choice(rng, _TIMINGS)
    num_messages = rng.randint(30, 120)
    horizon_ms = rng.uniform(600.0, 2_000.0)
    jitter_ms = rng.choice([0.0, 1.0, 2.0, 5.0])
    uniform_ms = rng.choice([5.0, 20.0, 40.0, 80.0])
    gc_interval = rng.choice([None, None, None, 400.0, 800.0])

    hot = rng.randrange(num_groups)

    def draw_dst() -> Tuple[int, ...]:
        if shape == "pairs":
            return tuple(rng.sample(range(num_groups), 2))
        if shape == "mixed":
            k = rng.randint(2, min(4, num_groups))
            return tuple(rng.sample(range(num_groups), k))
        if shape == "wide":
            k = rng.randint(2, num_groups)
            return tuple(rng.sample(range(num_groups), k))
        # hotspot: the hot group joins most sets, maximizing conflicts.
        k = rng.randint(1, min(3, num_groups - 1))
        others = rng.sample([g for g in range(num_groups) if g != hot], k)
        if rng.random() < 0.8:
            return tuple([hot] + others)
        return tuple(others) if len(others) >= 2 else tuple(others + [hot])

    def draw_time(index: int) -> float:
        if timing == "spread":
            return rng.uniform(0.0, horizon_ms)
        if timing == "front":
            return rng.uniform(0.0, horizon_ms * 0.05)
        # bursts: 3-6 windows of 40 ms each
        num_bursts = rng.randint(3, 6)
        burst = rng.randrange(num_bursts)
        start = burst * (horizon_ms / num_bursts)
        return start + rng.uniform(0.0, 40.0)

    submissions: List[Submission] = []
    for i in range(num_messages):
        submissions.append(
            Submission(
                at_ms=round(draw_time(i), 3),
                msg_id=f"s{seed}m{i}",
                dst=draw_dst(),
                payload_bytes=rng.choice([32, 64, 96]),
            )
        )
    submissions.sort(key=lambda s: (s.at_ms, s.msg_id))

    # Batch axis, drawn *last* so every earlier field of a given seed is
    # unchanged from pre-batching sweeps: most runs stay unbatched, the rest
    # coalesce under a small/medium/large window (bursty timings make these
    # windows actually fill).
    batch_window = rng.choice([1, 1, 1, 1, 4, 8, 16])
    batch_delay_ms = rng.choice([2.0, 5.0, 10.0]) if batch_window > 1 else 5.0

    return FuzzScenario(
        name=f"fuzz-seed{seed}-{profile}",
        order=order,
        submissions=tuple(submissions),
        latency="uniform",
        uniform_ms=uniform_ms,
        jitter_ms=jitter_ms,
        net_seed=seed * 31 + 7,
        profile="none",
        profile_seed=seed * 17 + 3,
        gc_interval_ms=gc_interval,
        batch_window=batch_window,
        batch_delay_ms=batch_delay_ms,
    )
