"""Shrink a failing scenario to a minimal regression schedule.

Classic ddmin over the submission list, followed by a group-pruning pass:

1. **ddmin** — try removing chunks of submissions (halving chunk sizes down
   to single messages); keep a removal whenever the reduced scenario still
   fails.  Because a run is a pure function of its scenario, every probe is
   deterministic.
2. **group pruning** — try dropping rank-order entries no remaining
   submission addresses.  Non-destination groups still participate in the
   protocol (Strategy (c) notifs route through them), so each candidate
   removal is re-validated against the failure predicate rather than assumed
   safe.

The predicate is "the harness reports at least one violation" by default, so
the shrinker preserves *a* failure, not necessarily the original one — which
is what a regression schedule needs (any pinned violation is a real bug).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .harness import run_scenario
from .scenario import FuzzScenario, Submission

Predicate = Callable[[FuzzScenario], bool]


def default_predicate(
    pivot_guard: bool = True,
    hybrid: Optional[bool] = None,
    order_claims: Optional[bool] = None,
) -> Predicate:
    """Fail on *any* checked property, ordering anomalies included — a
    regression schedule should pin whatever the checker can see.

    ``hybrid`` and ``order_claims`` mirror
    :func:`repro.fuzz.harness.run_scenario`: ``None`` follows the harness
    defaults, an explicit value pins the mode so a finding from a forced
    sweep shrinks under the same protocol that produced it (a legacy
    ``order_claims=False`` 3-cycle would otherwise stop failing — and stop
    shrinking — the moment the claims re-engage).
    """

    def fails(scenario: FuzzScenario) -> bool:
        return not run_scenario(
            scenario,
            pivot_guard=pivot_guard,
            hybrid=hybrid,
            order_claims=order_claims,
        ).strict_ok

    return fails


def shrink_scenario(
    scenario: FuzzScenario,
    fails: Optional[Predicate] = None,
    max_probes: int = 2_000,
) -> FuzzScenario:
    """Return a (locally) minimal scenario that still satisfies ``fails``."""
    if fails is None:
        fails = default_predicate()
    if not fails(scenario):
        raise ValueError("shrink_scenario needs a failing scenario to start from")

    probes = 0

    def probe(candidate: FuzzScenario) -> bool:
        nonlocal probes
        if probes >= max_probes:
            return False
        probes += 1
        return fails(candidate)

    current = scenario
    current = _ddmin_submissions(current, probe)
    current = _prune_groups(current, probe)
    # A second submission pass often pays off after groups shrank.
    current = _ddmin_submissions(current, probe)
    return current


def _ddmin_submissions(scenario: FuzzScenario, probe: Predicate) -> FuzzScenario:
    submissions: List[Submission] = list(scenario.submissions)
    chunk = max(1, len(submissions) // 2)
    while chunk >= 1 and len(submissions) > 1:
        removed_any = False
        start = 0
        while start < len(submissions):
            candidate = submissions[:start] + submissions[start + chunk :]
            if candidate and probe(scenario.with_submissions(candidate)):
                submissions = candidate
                removed_any = True
                # Re-test the same offset: a new chunk slid into it.
            else:
                start += chunk
        if not removed_any:
            chunk //= 2
    return scenario.with_submissions(submissions)


def _prune_groups(scenario: FuzzScenario, probe: Predicate) -> FuzzScenario:
    current = scenario
    for gid in list(current.order):
        used = set()
        for sub in current.submissions:
            used.update(sub.dst)
        if gid in used or len(current.order) <= 2:
            continue
        candidate_order = tuple(g for g in current.order if g != gid)
        candidate = current.with_order(candidate_order)
        if candidate.reconfigs:
            continue  # reconfig orders must stay permutations; skip pruning
        if probe(candidate):
            current = candidate
    return current
