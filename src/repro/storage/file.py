"""File-backed storage: CRC-framed append-only WAL segments + snapshots.

WAL file format — a sequence of frames, nothing else::

    [u32 payload length][u32 CRC-32 of payload][payload: UTF-8 JSON]

(big-endian, mirroring the runtime's length-prefixed wire framing).  A crash
can leave at most a *torn tail*: a final frame whose header, payload, or CRC
is incomplete or wrong.  :meth:`FileWAL` handles that on open by truncating
the file back to the last complete, CRC-valid frame — records before the tear
are untouched, records after it never existed durably.

Durability knob: ``fsync_every`` batches fsyncs — an fsync is issued every
N appends instead of on every append.  That caps the worst-case loss on a
*machine* crash at the last N records (a mere process crash loses nothing:
the OS still has the written pages).  Callers that need a hard durability
point (the Paxos acceptor before replying) call :meth:`FileWAL.sync`
explicitly or use ``fsync_every=1``.

Snapshots are written to a temporary file, fsynced, then atomically renamed
over the old snapshot, so a reader sees the old or the new payload — never a
torn mix.  :meth:`FileWAL.reset` replaces a WAL the same way.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from typing import Any, Dict, Iterable, List, Optional

from ..obs import Observability
from ..obs.registry import Histogram
from .base import WAL, Storage, StorageError

_HEADER = struct.Struct(">II")  # (payload length, CRC-32 of payload)

#: Refuse absurd frames (corrupt length field) instead of allocating gigabytes.
MAX_RECORD_BYTES = 16 * 1024 * 1024


def _encode_record(record: Any) -> bytes:
    try:
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise StorageError(f"record is not JSON-serializable: {exc}") from exc
    if len(payload) > MAX_RECORD_BYTES:
        raise StorageError(f"record too large: {len(payload)} bytes")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_frames(data: bytes) -> "tuple[List[Any], int]":
    """Parse frames out of ``data``; returns (records, end-of-last-good-frame).

    Stops at the first torn or corrupt frame — everything from there on is
    treated as a tail to truncate (an interior corruption also invalidates
    everything after it: frame boundaries can no longer be trusted).
    """
    records: List[Any] = []
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            break  # corrupt length field
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            break  # short read: torn payload
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # bad CRC
        try:
            records.append(json.loads(payload.decode("utf-8")))
        except (UnicodeDecodeError, ValueError):
            break  # CRC collision on garbage; treat as torn
        offset = end
    return records, offset


class FileWAL(WAL):
    """One append-only CRC-framed WAL file with batched fsyncs.

    ``append_hist`` / ``fsync_hist`` are optional latency histograms
    (milliseconds, :mod:`repro.obs`): when set, every append and fsync is
    timed with ``time.perf_counter``.  Left unset (the default), the write
    path is exactly the uninstrumented code.
    """

    def __init__(
        self,
        path: str,
        fsync_every: int = 64,
        append_hist: Optional[Histogram] = None,
        fsync_hist: Optional[Histogram] = None,
    ) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = path
        self._fsync_every = fsync_every
        self._unsynced = 0
        self.append_hist = append_hist
        self.fsync_hist = fsync_hist
        self._records = self._recover()
        self._file = open(self.path, "ab")

    # ------------------------------------------------------------------ open
    def _recover(self) -> List[Any]:
        """Load surviving records, truncating any torn tail in place."""
        if not os.path.exists(self.path):
            return []
        with open(self.path, "rb") as fh:
            data = fh.read()
        records, good_end = _scan_frames(data)
        if good_end < len(data):
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)
                fh.flush()
                os.fsync(fh.fileno())
        return records

    # ------------------------------------------------------------------- api
    def append(self, record: Any) -> None:
        started = time.perf_counter() if self.append_hist is not None else 0.0
        frame = _encode_record(record)
        self._file.write(frame)
        self._records.append(json.loads(frame[_HEADER.size :].decode("utf-8")))
        self._unsynced += 1
        if self._unsynced >= self._fsync_every:
            self.sync()
        else:
            self._file.flush()
        if self.append_hist is not None:
            self.append_hist.observe((time.perf_counter() - started) * 1000.0)

    def records(self) -> List[Any]:
        return list(self._records)

    def reset(self, records: Iterable[Any] = ()) -> None:
        new_records = list(records)
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "wb") as fh:
            for record in new_records:
                fh.write(_encode_record(record))
            fh.flush()
            os.fsync(fh.fileno())
        self._file.close()
        os.replace(tmp_path, self.path)
        _fsync_dir(os.path.dirname(self.path))
        self._file = open(self.path, "ab")
        self._records = [json.loads(json.dumps(r)) for r in new_records]
        self._unsynced = 0

    def sync(self) -> None:
        started = time.perf_counter() if self.fsync_hist is not None else 0.0
        self._file.flush()
        os.fsync(self._file.fileno())
        self._unsynced = 0
        if self.fsync_hist is not None:
            self.fsync_hist.observe((time.perf_counter() - started) * 1000.0)

    def __len__(self) -> int:
        return len(self._records)

    def close(self) -> None:
        if not self._file.closed:
            self.sync()
            self._file.close()


def _fsync_dir(path: str) -> None:
    """fsync a directory so renames/creations inside it are durable."""
    fd = os.open(path or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _safe_name(name: str) -> str:
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in name)


class FileStorage(Storage):
    """Directory-per-node storage: ``<dir>/<name>.wal`` + ``<dir>/<name>.snap``."""

    def __init__(
        self,
        root: str,
        fsync_every: int = 64,
        obs: Optional[Observability] = None,
    ) -> None:
        self.root = root
        self._fsync_every = fsync_every
        os.makedirs(root, exist_ok=True)
        self._open_wals: Dict[str, FileWAL] = {}
        self._append_hist: Optional[Histogram] = None
        self._fsync_hist: Optional[Histogram] = None
        if obs is not None:
            self.attach_obs(obs)

    def attach_obs(self, obs: Observability) -> None:
        """Register WAL latency histograms + segment gauges (repro.obs).

        All WAL files of this storage share one append and one fsync
        histogram (the interesting distribution is per device, not per
        segment); segment counts are pull-based gauges over state the
        storage already tracks.
        """
        labels = {"root": os.path.basename(self.root) or self.root}
        self._append_hist = obs.registry.histogram(
            "wal_append_ms", "FileWAL append latency (write + flush).", labels
        )
        self._fsync_hist = obs.registry.histogram(
            "wal_fsync_ms", "FileWAL fsync latency.", labels
        )
        for wal in self._open_wals.values():
            wal.append_hist = self._append_hist
            wal.fsync_hist = self._fsync_hist
        obs.registry.gauge(
            "storage_open_wal_segments",
            "WAL segments currently open in this storage.",
            labels,
            fn=lambda: sum(
                1 for w in self._open_wals.values() if not w._file.closed
            ),
        )
        obs.registry.gauge(
            "storage_wal_records",
            "Records across all open WAL segments.",
            labels,
            fn=lambda: sum(
                len(w) for w in self._open_wals.values() if not w._file.closed
            ),
        )

    def wal(self, name: str) -> FileWAL:
        # Reopening a name returns the live handle: the file backend has a
        # single process owning the directory, and two handles appending to
        # one file would interleave frames unpredictably.
        existing = self._open_wals.get(name)
        if existing is not None and not existing._file.closed:
            return existing
        wal = FileWAL(
            os.path.join(self.root, _safe_name(name) + ".wal"),
            fsync_every=self._fsync_every,
            append_hist=self._append_hist,
            fsync_hist=self._fsync_hist,
        )
        self._open_wals[name] = wal
        return wal

    def _snap_path(self, name: str) -> str:
        return os.path.join(self.root, _safe_name(name) + ".snap")

    def write_snapshot(self, name: str, payload: Any) -> None:
        path = self._snap_path(name)
        tmp_path = path + ".tmp"
        try:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise StorageError(f"snapshot is not JSON-serializable: {exc}") from exc
        with open(tmp_path, "wb") as fh:
            fh.write(_HEADER.pack(len(body), zlib.crc32(body)))
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
        _fsync_dir(self.root)

    def read_snapshot(self, name: str) -> Optional[Any]:
        path = self._snap_path(name)
        if not os.path.exists(path):
            return None
        with open(path, "rb") as fh:
            data = fh.read()
        if len(data) < _HEADER.size:
            raise StorageError(f"snapshot {name!r} is truncated")
        length, crc = _HEADER.unpack_from(data, 0)
        body = data[_HEADER.size : _HEADER.size + length]
        if len(body) != length or zlib.crc32(body) != crc:
            # Snapshots are written atomically (tmp + rename), so a bad CRC is
            # genuine corruption, not a torn write — surface it loudly.
            raise StorageError(f"snapshot {name!r} failed its CRC check")
        return json.loads(body.decode("utf-8"))

    def sync(self) -> None:
        for wal in self._open_wals.values():
            if not wal._file.closed:
                wal.sync()

    def close(self) -> None:
        for wal in self._open_wals.values():
            wal.close()
        self._open_wals.clear()
