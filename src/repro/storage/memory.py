"""Deterministic in-memory storage backend (simulator / fuzzing).

A simulated crash tears the *replica* down but leaves the
:class:`InMemoryStorage` object alive in the harness, exactly like a real
node's disk surviving its process.  To keep "works under fuzzing" equivalent
to "works on the file backend", every record is round-tripped through JSON on
append (``normalize=True``, the default): a record that the file backend could
not encode, or that would come back subtly different (tuples as lists, dict
keys as strings), fails or changes shape identically here.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from .base import WAL, Storage, StorageError


class InMemoryWAL(WAL):
    """A WAL backed by a plain list (shared across replica incarnations)."""

    def __init__(self, records: List[Any], normalize: bool) -> None:
        self._records = records
        self._normalize = normalize

    def append(self, record: Any) -> None:
        if self._normalize:
            try:
                record = json.loads(json.dumps(record))
            except (TypeError, ValueError) as exc:
                raise StorageError(f"record is not JSON-serializable: {exc}") from exc
        self._records.append(record)

    def records(self) -> List[Any]:
        return list(self._records)

    def reset(self, records: Iterable[Any] = ()) -> None:
        self._records.clear()
        for record in records:
            self.append(record)

    def sync(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._records)


class InMemoryStorage(Storage):
    """Deterministic storage that survives simulated crash/restart cycles."""

    def __init__(self, normalize: bool = True) -> None:
        self._normalize = normalize
        self._wals: Dict[str, List[Any]] = {}
        self._snapshots: Dict[str, Any] = {}
        #: Counters for tests/benchmarks: appends and snapshot writes seen.
        self.stats = {"appends": 0, "snapshots": 0}

    def wal(self, name: str) -> InMemoryWAL:
        backing = self._wals.setdefault(name, [])
        storage = self

        class _CountingWAL(InMemoryWAL):
            def append(self, record: Any) -> None:
                super().append(record)
                storage.stats["appends"] += 1

        return _CountingWAL(backing, self._normalize)

    def write_snapshot(self, name: str, payload: Any) -> None:
        if self._normalize:
            try:
                payload = json.loads(json.dumps(payload))
            except (TypeError, ValueError) as exc:
                raise StorageError(f"snapshot is not JSON-serializable: {exc}") from exc
        self._snapshots[name] = payload
        self.stats["snapshots"] += 1

    def read_snapshot(self, name: str) -> Optional[Any]:
        return self._snapshots.get(name)

    def wal_names(self) -> List[str]:
        """Names of every WAL ever opened (introspection)."""
        return sorted(self._wals)
