"""Abstract durable-storage interfaces (WAL + snapshots).

The contract is deliberately tiny so the same protocol code runs against the
deterministic in-memory backend in the simulator/fuzzer and against real
files in the asyncio runtime:

* records appended to a :class:`WAL` must be JSON-serializable values; the
  backend owns the encoding.  ``append`` is durable once :meth:`WAL.sync`
  returns (backends may batch fsyncs — see :class:`~repro.storage.file.FileWAL`
  for what that trades away);
* :meth:`WAL.records` returns every surviving record in append order — after
  a crash that may exclude a torn or unsynced tail, never reorder or invent
  records;
* :meth:`WAL.reset` atomically replaces the log's contents (used when a
  snapshot makes the prefix redundant, and by acceptor-state compaction);
* :meth:`Storage.write_snapshot` atomically replaces the named snapshot —
  a reader sees either the old or the new payload, never a torn mix.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, List, Optional


class StorageError(Exception):
    """Raised when a storage backend hits an unrecoverable problem."""


class WAL(ABC):
    """An append-only log of JSON-able records."""

    @abstractmethod
    def append(self, record: Any) -> None:
        """Append one record (durable after the next :meth:`sync`)."""

    @abstractmethod
    def records(self) -> List[Any]:
        """All surviving records, in append order."""

    @abstractmethod
    def reset(self, records: Iterable[Any] = ()) -> None:
        """Atomically replace the log's contents with ``records``."""

    @abstractmethod
    def sync(self) -> None:
        """Force everything appended so far to durable storage."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of records currently in the log."""

    def close(self) -> None:
        """Release backend resources (no-op by default)."""


class Storage(ABC):
    """A namespace of WALs plus atomically replaced snapshots."""

    @abstractmethod
    def wal(self, name: str) -> WAL:
        """Open (creating if needed) the WAL called ``name``."""

    @abstractmethod
    def write_snapshot(self, name: str, payload: Any) -> None:
        """Atomically replace snapshot ``name`` with ``payload`` (JSON-able)."""

    @abstractmethod
    def read_snapshot(self, name: str) -> Optional[Any]:
        """Return snapshot ``name``'s payload, or ``None`` if absent."""

    def sync(self) -> None:
        """Force all pending writes to durable storage (no-op by default)."""

    def close(self) -> None:
        """Release backend resources (no-op by default)."""
