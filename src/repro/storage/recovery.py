"""Boot-time recovery glue: restore a protocol group from durable storage.

The protocol factories (``protocol.create_group(group_id, transport, sink)``)
are storage-agnostic, so recovery is applied *after* construction: build the
group as usual, then :func:`attach_group_storage` swaps in the recovered
history (snapshot + WAL-suffix replay via :meth:`History.recover`) and
rebuilds the derived protocol state the history alone determines:

* the group's delivered set (``delivered_in_g`` and the base class's
  duplicate-delivery registry) from the history's locally-delivered ids;
* the pending-delivery index ``_undelivered_to_me`` (history vertices
  addressed to this group and not yet delivered);
* dependency-cache epochs are bumped so nothing stale survives the swap.

In-flight protocol exchanges (queued envelopes, unacked notifs) are *not*
durable — by design.  They are the peers' responsibility: ancestors keep
re-shipping history diffs, the SMR path replays its commit log, and clients
re-submit on timeout; every one of those paths is idempotent.
"""

from __future__ import annotations

from typing import Any

from ..core.history import SNAPSHOT_MIN_WAL_RECORDS, History
from ..core.message import HistorySnapshotFrame
from .base import Storage


def attach_group_storage(
    group: Any,
    storage: Storage,
    name: str,
    snapshot_min_wal_records: int = SNAPSHOT_MIN_WAL_RECORDS,
) -> int:
    """Restore ``group``'s durable history state from ``storage`` and attach it.

    ``group`` is any protocol group exposing a ``history`` attribute (the
    FlexCast family); protocol state derived from the history is rebuilt
    where present.  Returns the number of locally delivered messages
    restored (0 on a cold start).
    """
    if not hasattr(group, "history"):
        raise TypeError(f"{type(group).__name__} has no history to make durable")
    recovered = History.recover(
        storage, name, snapshot_min_wal_records=snapshot_min_wal_records
    )
    group.history = recovered
    delivered = set(recovered.delivered_locally)
    if hasattr(group, "delivered_in_g"):
        group.delivered_in_g |= delivered
    if hasattr(group, "_delivered_ids"):
        # The base class raises on double-delivery; seed its registry so a
        # replayed envelope for an already-delivered message is a no-op
        # upstream (the protocol checks delivered_in_g first).
        group._delivered_ids |= delivered
    if hasattr(group, "_undelivered_to_me"):
        pending = {
            mid
            for mid in recovered.messages_addressed_to(group.group_id)
            if mid not in delivered
        }
        group._undelivered_to_me |= pending
    if hasattr(group, "_dep_epoch"):
        group._dep_epoch += 1
    return len(delivered)


def snapshot_frame_for(group: Any, epoch: int = 0) -> HistorySnapshotFrame:
    """Pack ``group``'s live history into a cold-sync frame.

    The frame carries the packed snapshot + journal suffix
    (:meth:`History.cold_delta`), the same O(affected) transfer shape every
    diff path uses — ``restart_replica`` orders one through the replicated
    log so a rejoining replica bulk-installs instead of replaying per-entry
    deltas, and survivors no-op on the idempotent merge.
    """
    if not hasattr(group, "history"):
        raise TypeError(f"{type(group).__name__} has no history to snapshot")
    return HistorySnapshotFrame(
        group=getattr(group, "group_id", 0),
        delta=group.history.cold_delta(),
        epoch=epoch,
    )


def apply_snapshot_frame(group: Any, frame: HistorySnapshotFrame) -> None:
    """Bulk-install a cold-sync frame into ``group``.

    Delegates to the group's own handler when it has one (the FlexCast
    family dispatches it through ``on_envelope``), so merge side effects
    (open-dependency index, dirty queues, timestamp acquisition) happen
    exactly as they would for any received delta.
    """
    if hasattr(group, "on_envelope"):
        group.on_envelope("recovery", frame)
        return
    if not hasattr(group, "history"):
        raise TypeError(f"{type(group).__name__} cannot apply a snapshot frame")
    group.history.merge_delta(frame.delta)
