"""Pluggable durable storage for FlexCast nodes.

Production nodes restart; everything a replica needs to survive its own crash
lives behind the two small interfaces in :mod:`~repro.storage.base`:

* :class:`~repro.storage.base.WAL` — an append-only log of JSON-able records
  (the history change journal, the Paxos acceptor state, the commit log);
* :class:`~repro.storage.base.Storage` — a namespace of WALs plus atomic
  point-in-time snapshots (history snapshots piggyback on journal compaction
  so recovery replays snapshot + suffix, not the whole life of the node).

Two backends are provided:

* :class:`~repro.storage.memory.InMemoryStorage` — deterministic, survives a
  *simulated* crash (the harness keeps the storage object while tearing the
  replica down), used by the simulator and the fuzz stack;
* :class:`~repro.storage.file.FileStorage` — real files: length-prefixed
  CRC-checked frames, fsync batching, torn-tail truncation on open.

:mod:`~repro.storage.recovery` holds the glue that restores a protocol
group's history state from a :class:`Storage` at boot.
"""

from .base import WAL, Storage, StorageError
from .file import FileStorage
from .memory import InMemoryStorage
from .recovery import apply_snapshot_frame, attach_group_storage, snapshot_frame_for

__all__ = [
    "WAL",
    "Storage",
    "StorageError",
    "FileStorage",
    "InMemoryStorage",
    "attach_group_storage",
    "apply_snapshot_frame",
    "snapshot_frame_for",
]
