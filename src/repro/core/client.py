"""Client-side helper for atomic multicast.

A client in the paper's system model multicasts a message and, in the
evaluation, receives one response from each destination group when that group
delivers the message.  :class:`MulticastCall` tracks one in-flight multicast;
:class:`MulticastClient` is the reusable piece shared by the closed-loop
workload clients (:mod:`repro.workload.clients`) and by the asyncio runtime's
interactive client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..obs import STAGE_SUBMIT, Observability, Tracer
from ..overlay.base import GroupId
from ..protocols.base import AtomicMulticastProtocol
from .message import ClientRequest, Message


@dataclass
class MulticastCall:
    """Book-keeping for one multicast issued by a client."""

    message: Message
    submitted_at: float
    #: Delivery confirmations received so far: group -> response time.
    responses: Dict[GroupId, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every destination group responded."""
        return set(self.responses) >= set(self.message.dst)

    def record_response(self, group: GroupId, at: float) -> bool:
        """Record a response; returns True if it completed the call."""
        if group not in self.message.dst:
            raise ValueError(
                f"response from {group} for {self.message.msg_id}, "
                f"which is not addressed to it"
            )
        self.responses.setdefault(group, at)
        return self.complete

    def latencies_by_arrival(self) -> List[float]:
        """Per-destination latencies sorted by arrival (1st, 2nd, 3rd, ...).

        This is exactly the quantity the paper plots: "the latency of the
        first (respectively second and third) destination corresponds to the
        first (respectively second and third) response the client receives".
        """
        return sorted(t - self.submitted_at for t in self.responses.values())


class MulticastClient:
    """Protocol-agnostic client: builds requests and tracks responses.

    The transport-specific part (how a request physically reaches a group and
    how responses come back) is injected via ``send_request``; the simulator
    and the asyncio runtime provide different implementations.
    """

    def __init__(
        self,
        client_id: str,
        protocol: AtomicMulticastProtocol,
        send_request: Callable[[GroupId, ClientRequest], None],
        clock: Callable[[], float],
    ) -> None:
        self.client_id = client_id
        self._protocol = protocol
        self._send_request = send_request
        self._clock = clock
        self.inflight: Dict[str, MulticastCall] = {}
        self.completed: List[MulticastCall] = []
        #: Lifecycle tracer (``None`` = off); see :meth:`attach_obs`.
        self._tracer: Optional[Tracer] = None

    def attach_obs(self, obs: Observability) -> None:
        """Attach an observability hub: submissions get ``submit`` spans."""
        self._tracer = obs.tracer

    # ---------------------------------------------------------------- sending
    def multicast(
        self,
        destinations: Iterable[GroupId],
        payload: Any = None,
        payload_bytes: int = 64,
    ) -> Message:
        """Multicast a fresh message and start tracking its responses."""
        message = Message.create(
            destinations=destinations,
            sender=self.client_id,
            payload=payload,
            payload_bytes=payload_bytes,
        )
        self.submit(message)
        return message

    def submit(self, message: Message) -> None:
        """Submit an already-built message to the protocol's entry group(s)."""
        self._track(message)
        self._dispatch(message)

    def _track(self, message: Message) -> MulticastCall:
        """Start tracking responses for ``message`` (submission time = now)."""
        call = MulticastCall(message=message, submitted_at=self._clock())
        self.inflight[message.msg_id] = call
        if self._tracer is not None:
            self._tracer.record(
                message.trace, STAGE_SUBMIT, call.submitted_at, self.client_id
            )
        return call

    def _dispatch(self, message: Message) -> None:
        """Ship ``message`` to its entry group(s) as one client request.

        Split out from :meth:`submit` so subclasses can change *when and in
        what envelope* a tracked message reaches the protocol — the batching
        client (:class:`repro.core.batching.BatchingClient`) buffers here.
        """
        request = ClientRequest(message=message)
        for entry in self._protocol.entry_groups(message):
            self._send_request(entry, request)

    # -------------------------------------------------------------- responses
    def on_response(self, group: GroupId, msg_id: str) -> Optional[MulticastCall]:
        """Record a delivery confirmation.

        Returns the completed :class:`MulticastCall` when the last destination
        responded, else ``None``.  Unknown message ids are ignored (they belong
        to calls already accounted for, e.g. duplicate confirmations).
        """
        call = self.inflight.get(msg_id)
        if call is None:
            return None
        call.record_response(group, self._clock())
        if call.complete:
            del self.inflight[msg_id]
            self.completed.append(call)
            return call
        return None

    @property
    def outstanding(self) -> int:
        return len(self.inflight)
