"""Skeen-style timestamp ordering authority (shared core).

Extracted from the Distributed baseline (:mod:`repro.protocols.skeen`) so the
same tested implementation serves two deployments:

* :class:`~repro.protocols.skeen.SkeenGroup` — the paper's Distributed
  protocol, where *every* message is ordered by final timestamps; and
* FlexCast's **hybrid mode** (:mod:`repro.core.flexcast`), where global
  messages additionally acquire final timestamps so the delivery gate can
  order disjoint-destination chains that the c-DAG's down-only information
  flow cannot (see DESIGN.md "hybrid Skeen-timestamp ordering authority").

The authority implements the timestamp half of Skeen's algorithm for one
group:

1. :meth:`propose` assigns a local logical timestamp to a message on first
   contact (duplicate proposals are refused, which is what makes envelope
   duplication harmless);
2. :meth:`observe` max-merges remote proposals into the Lamport clock and the
   per-message proposal set; once proposals from *every* destination are in,
   the final timestamp is their maximum;
3. :meth:`deliverable` is the *convoy wait*: a decided message may only be
   delivered once no other pending message could still obtain a smaller
   ``(final timestamp, id)`` key.  Because each group's clock is max-merged
   past every final timestamp it has seen, a message proposed later can never
   undercut one already delivered — the delivered subsequence of timestamped
   messages at each group is strictly increasing in ``(ts, id)``, a *global*
   total order, which is exactly why the union delivery relation over
   timestamped messages cannot contain a cycle.

The authority is deliberately overlay-agnostic: timestamps are a property of
a message's destination set, not of any rank order, so the state survives a
live overlay reconfiguration untouched (the epoch switch installs a new
c-DAG; clocks and pending proposals carry over as-is).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..overlay.base import GroupId

#: Sort key every delivery decision uses: ``(timestamp, msg_id)``.  The id
#: component makes the order total — two messages can tie on the timestamp
#: but never on the key.
TimestampKey = Tuple[int, str]


@dataclass
class PendingTimestamp:
    """Timestamp state of one undelivered message at one group."""

    msg_id: str
    #: Destination groups whose proposals decide the final timestamp.
    dst: FrozenSet[GroupId]
    #: Timestamp this group proposed.
    local_timestamp: int
    #: Proposals received so far (this group's own included), max-merged.
    proposals: Dict[GroupId, int] = field(default_factory=dict)
    #: Final (maximum) timestamp; ``None`` while proposals are missing.
    final_timestamp: Optional[int] = None

    @property
    def decided(self) -> bool:
        return self.final_timestamp is not None

    def effective_key(self) -> TimestampKey:
        """Delivery sort key: the final timestamp when decided, otherwise the
        local proposal — a lower bound on whatever the final will be."""
        ts = (
            self.final_timestamp
            if self.final_timestamp is not None
            else self.local_timestamp
        )
        return (ts, self.msg_id)


class TimestampAuthority:
    """Per-group Skeen timestamp state: clock, proposals, convoy gate."""

    def __init__(self, group_id: GroupId) -> None:
        self.group_id = group_id
        #: Lamport-style logical clock used to propose timestamps.
        self.clock = 0
        #: msg_id -> timestamp state, for proposed-but-undelivered messages.
        self.pending: Dict[str, PendingTimestamp] = {}
        #: Proposals that arrived before this group's own first contact with
        #: the message (buffered exactly like the Skeen baseline does).
        self._early: Dict[str, Dict[GroupId, int]] = {}
        #: Messages already delivered (or garbage-collected): late or
        #: duplicated proposals for them are absorbed silently.
        self._completed: Set[str] = set()

    # ------------------------------------------------------------- lifecycle
    def propose(self, msg_id: str, dst: Iterable[GroupId]) -> Optional[int]:
        """First-contact proposal for ``msg_id``.

        Returns the local timestamp the caller must disseminate to the other
        destinations, or ``None`` when the message was already proposed or
        completed (duplicate-propose handling: re-submissions, duplicated
        envelopes and epoch re-routes must not mint a second proposal).
        """
        if msg_id in self.pending or msg_id in self._completed:
            return None
        self.clock += 1
        entry = PendingTimestamp(
            msg_id=msg_id,
            dst=frozenset(dst),
            local_timestamp=self.clock,
        )
        entry.proposals[self.group_id] = self.clock
        self.pending[msg_id] = entry
        early = self._early.pop(msg_id, None)
        if early:
            for group, timestamp in early.items():
                self._merge_proposal(entry, group, timestamp)
        self._maybe_decide(entry)
        return entry.local_timestamp

    def observe(self, msg_id: str, from_group: GroupId, timestamp: int) -> bool:
        """Max-merge a remote proposal.

        Always advances the clock (Lamport receive rule).  Returns ``True``
        when the message's state changed — a new proposal was recorded or the
        final timestamp got decided — so callers know to re-examine their
        delivery queues.
        """
        self.clock = max(self.clock, timestamp)
        if msg_id in self._completed:
            return False
        entry = self.pending.get(msg_id)
        if entry is None:
            # Raced ahead of our own first contact; buffer until propose().
            known = self._early.setdefault(msg_id, {})
            if known.get(from_group, -1) >= timestamp:
                return False
            known[from_group] = timestamp
            return False
        changed = self._merge_proposal(entry, from_group, timestamp)
        if not entry.decided:
            changed = self._maybe_decide(entry) or changed
        return changed

    def complete(self, msg_id: str) -> None:
        """The caller delivered ``msg_id``: retire it from the pending set."""
        self.pending.pop(msg_id, None)
        self._early.pop(msg_id, None)
        self._completed.add(msg_id)

    def forget(self, msg_ids: Iterable[str]) -> None:
        """Garbage collection: drop the completed-memory for pruned messages.

        A proposal for a forgotten message can in principle arrive afterwards
        and re-open a pending entry; FlexCast's history keeps its own
        forgotten set for exactly this reason, and callers gate re-proposals
        on it — the authority itself stays O(live + completed-since-last-GC).
        """
        self._completed.difference_update(msg_ids)
        for msg_id in msg_ids:
            self._early.pop(msg_id, None)

    # --------------------------------------------------------------- queries
    def is_pending(self, msg_id: str) -> bool:
        return msg_id in self.pending

    def is_completed(self, msg_id: str) -> bool:
        return msg_id in self._completed

    def decided(self, msg_id: str) -> bool:
        entry = self.pending.get(msg_id)
        return entry is not None and entry.decided

    def final_timestamp(self, msg_id: str) -> Optional[int]:
        entry = self.pending.get(msg_id)
        return entry.final_timestamp if entry is not None else None

    def proposals_of(self, msg_id: str) -> Tuple[Tuple[GroupId, int], ...]:
        """Known proposals for ``msg_id`` (piggybacked on FlexCast envelopes)."""
        entry = self.pending.get(msg_id)
        if entry is None:
            return ()
        return tuple(sorted(entry.proposals.items(), key=lambda kv: str(kv[0])))

    def pending_count(self) -> int:
        return len(self.pending)

    def deliverable(self, msg_id: str) -> bool:
        """Convoy gate: ``msg_id`` is decided and no other pending message
        could still obtain a smaller ``(final timestamp, id)`` key."""
        entry = self.pending.get(msg_id)
        if entry is None or not entry.decided:
            return False
        key = entry.effective_key()
        return all(
            other.effective_key() > key
            for other in self.pending.values()
            if other.msg_id != msg_id
        )

    def next_deliverable(self) -> Optional[str]:
        """The unique pending message currently allowed through the gate.

        Returns ``None`` while the smallest effective key belongs to an
        undecided message (it could still be undercut — the convoy wait).
        """
        if not self.pending:
            return None
        candidate = min(self.pending.values(), key=PendingTimestamp.effective_key)
        if not candidate.decided:
            return None
        return candidate.msg_id if self.deliverable(candidate.msg_id) else None

    def blocked_on(self, msg_id: str) -> List[str]:
        """Pending messages whose effective key undercuts ``msg_id``
        (diagnostics: what the convoy is waiting for)."""
        entry = self.pending.get(msg_id)
        if entry is None:
            return []
        key = entry.effective_key()
        return sorted(
            other.msg_id
            for other in self.pending.values()
            if other.msg_id != msg_id and other.effective_key() <= key
        )

    # --------------------------------------------------------------- helpers
    def _merge_proposal(
        self, entry: PendingTimestamp, from_group: GroupId, timestamp: int
    ) -> bool:
        """Record ``from_group``'s proposal, keeping the max on duplicates."""
        known = entry.proposals.get(from_group)
        if known is not None and known >= timestamp:
            return False
        entry.proposals[from_group] = timestamp
        return True

    def _maybe_decide(self, entry: PendingTimestamp) -> bool:
        if entry.decided:
            return False
        if set(entry.proposals) >= set(entry.dst):
            entry.final_timestamp = max(entry.proposals.values())
            self.clock = max(self.clock, entry.final_timestamp)
            return True
        return False
