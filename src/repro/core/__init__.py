"""FlexCast core: messages, histories, the protocol itself, GC and clients."""

from .client import MulticastCall, MulticastClient
from .flexcast import FlexCastGroup, FlexCastProtocol, PendingMessage
from .garbage import FlushCoordinator
from .history import History, HistoryDiffTracker
from .message import (
    ClientRequest,
    ClientResponse,
    EMPTY_DELTA,
    Envelope,
    FlexCastAck,
    FlexCastMsg,
    FlexCastNotif,
    HistoryDelta,
    Message,
    PAYLOAD_KINDS,
    SkeenPropose,
    SkeenTimestamp,
    TreeForward,
    fresh_message_id,
    reset_message_ids,
)

__all__ = [
    "MulticastCall",
    "MulticastClient",
    "FlexCastGroup",
    "FlexCastProtocol",
    "PendingMessage",
    "FlushCoordinator",
    "History",
    "HistoryDiffTracker",
    "ClientRequest",
    "ClientResponse",
    "EMPTY_DELTA",
    "Envelope",
    "FlexCastAck",
    "FlexCastMsg",
    "FlexCastNotif",
    "HistoryDelta",
    "Message",
    "PAYLOAD_KINDS",
    "SkeenPropose",
    "SkeenTimestamp",
    "TreeForward",
    "fresh_message_id",
    "reset_message_ids",
]
