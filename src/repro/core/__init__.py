"""FlexCast core: messages, histories, the protocol itself, GC, clients and batching.

Main entry points: :class:`FlexCastProtocol` (deploy the protocol on a C-DAG
overlay, optionally with ``hybrid=True`` for the Skeen-timestamp ordering
authority), :class:`Message` (the application multicast unit),
:class:`MulticastClient` / :class:`BatchingClient` (submission + response
tracking, unbatched and window-coalesced), and :class:`FlushCoordinator`
(periodic garbage-collection flush multicasts).
"""

from .batching import BatchingClient
from .client import MulticastCall, MulticastClient
from .flexcast import FlexCastGroup, FlexCastProtocol, PendingMessage
from .garbage import FlushCoordinator
from .history import History, HistoryDiffTracker
from .message import (
    ClientRequest,
    ClientResponse,
    EMPTY_DELTA,
    Envelope,
    FlexCastAck,
    FlexCastBatch,
    FlexCastMsg,
    FlexCastNotif,
    HistoryDelta,
    Message,
    PAYLOAD_KINDS,
    SkeenPropose,
    SkeenTimestamp,
    TreeForward,
    fresh_message_id,
    reset_message_ids,
)

__all__ = [
    "BatchingClient",
    "MulticastCall",
    "MulticastClient",
    "FlexCastGroup",
    "FlexCastProtocol",
    "PendingMessage",
    "FlushCoordinator",
    "History",
    "HistoryDiffTracker",
    "ClientRequest",
    "ClientResponse",
    "EMPTY_DELTA",
    "Envelope",
    "FlexCastAck",
    "FlexCastBatch",
    "FlexCastMsg",
    "FlexCastNotif",
    "HistoryDelta",
    "Message",
    "PAYLOAD_KINDS",
    "SkeenPropose",
    "SkeenTimestamp",
    "TreeForward",
    "fresh_message_id",
    "reset_message_ids",
]
