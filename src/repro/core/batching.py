"""Client-side adaptive message batching.

Every submission in the base client pays its own envelope: one client
request, one msg/ack round per destination, one Skeen-timestamp convoy in
hybrid mode, one codec pass and one simulator event per hop.  Under heavy
traffic that per-message overhead — not the ordering logic — dominates the
delivery path (PR 1 made the history work O(affected); PR 4 bounded the
convoy cost).  :class:`BatchingClient` amortizes it the standard middleware
way: submissions to the *same destination set* are coalesced under a
size/time window and shipped as one :class:`~repro.core.message.FlexCastBatch`
carrying a batch carrier (:meth:`~repro.core.message.Message.batch_of`).

The protocol orders the carrier exactly like a single message — one pivot,
one timestamp convoy, one history vertex, one msg/ack per destination — and
the delivery gate fans it out into per-member application deliveries
(:mod:`repro.core.flexcast`), so batching is invisible to applications, to
the checker, and to every ordering guarantee.  See DESIGN.md "batching the
delivery path" for the lifecycle and the batch=1 bit-identity argument.

Windows close on whichever trigger fires first:

* **size** — the buffer for a destination set reaches ``max_batch``;
* **time** — ``max_delay_ms`` elapsed since the buffer's first message
  (requires a ``schedule`` callback; without one, only the size trigger and
  explicit :meth:`BatchingClient.flush` calls close windows).

A window holding a single message is shipped as a plain
:class:`~repro.core.message.ClientRequest` — bit-identical to the unbatched
client, which is what makes ``max_batch=1`` a true no-op mode (pinned by
``tests/core/test_batching_equivalence.py``).  Flush (GC) multicasts bypass
the buffers entirely: they are ordering barriers and must never be delayed
or coalesced.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..obs import STAGE_BATCH_FLUSH, Observability
from ..obs.registry import SIZE_BUCKETS, Histogram
from ..overlay.base import GroupId
from ..protocols.base import AtomicMulticastProtocol
from .client import MulticastClient
from .message import ClientRequest, FlexCastBatch, Message

#: ``schedule(delay_ms, callback)`` -> handle with an optional ``cancel()``.
#: The simulator passes ``EventLoop.schedule``; the asyncio runtime wraps
#: ``loop.call_later`` (milliseconds -> seconds).
Scheduler = Callable[[float, Callable[[], None]], Any]


class BatchingClient(MulticastClient):
    """A multicast client that coalesces same-destination submissions.

    Drop-in replacement for :class:`~repro.core.client.MulticastClient`:
    response tracking (``inflight`` / ``on_response`` / ``completed``) is
    per *member* message and unchanged — only the dispatch path differs.
    Requires a protocol whose groups understand
    :class:`~repro.core.message.FlexCastBatch` (the FlexCast family; the
    envelope subclasses ``ClientRequest``, so epoch reconfiguration parks,
    re-routes and deduplicates batches like any other client request).
    """

    def __init__(
        self,
        client_id: str,
        protocol: AtomicMulticastProtocol,
        send_request: Callable[[GroupId, ClientRequest], None],
        clock: Callable[[], float],
        max_batch: int = 16,
        max_delay_ms: float = 5.0,
        schedule: Optional[Scheduler] = None,
    ) -> None:
        super().__init__(client_id, protocol, send_request, clock)
        #: Size trigger: a destination-set buffer flushes at this many
        #: messages.  ``1`` disables coalescing (every submission dispatches
        #: immediately, bit-identical to the base client).
        self.max_batch = max(1, int(max_batch))
        #: Time trigger: a buffer flushes this long after its first message.
        self.max_delay_ms = float(max_delay_ms)
        self._schedule = schedule
        self._buffers: Dict[FrozenSet[GroupId], List[Message]] = {}
        self._timers: Dict[FrozenSet[GroupId], Any] = {}
        self._batch_seq = 0
        #: Every batch shipped: ``(batch_id, member msg_ids)`` in send order.
        #: The fuzz harness uses this to run the batch-atomicity oracle (a
        #: lost batch must degrade exactly like N lost messages).
        self.batch_log: List[Tuple[str, Tuple[str, ...]]] = []
        self.stats = {
            "batches_sent": 0,
            "singles_sent": 0,
            "messages_batched": 0,
            # Why each window closed (size trigger / delay timer / explicit
            # flush call) — the knob feedback the SLO autopilot will read.
            "flush_size": 0,
            "flush_timer": 0,
            "flush_explicit": 0,
        }
        #: Window-occupancy histogram (``None`` until attach_obs).
        self._occupancy_hist: Optional[Histogram] = None

    def attach_obs(self, obs: Observability) -> None:
        """Attach an observability hub (extends the base ``submit`` spans).

        Registers callback counters over :attr:`stats` (flush reasons,
        batch/single counts) and a window-occupancy histogram observed
        once per closed window.
        """
        super().attach_obs(obs)
        labels = {"client": self.client_id}
        for key in self.stats:
            obs.registry.counter(
                f"batching_{key}_total",
                f"Batching client event count: {key.replace('_', ' ')}.",
                labels,
                fn=(lambda k=key: self.stats[k]),
            )
        obs.registry.gauge(
            "batching_buffered",
            "Messages currently waiting in open windows.",
            labels,
            fn=lambda: self.buffered,
        )
        self._occupancy_hist = obs.registry.histogram(
            "batching_window_occupancy",
            "Messages per closed window (1 = shipped as a plain request).",
            labels,
            bounds=SIZE_BUCKETS,
        )

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, message: Message) -> None:
        """Buffer ``message`` under its destination-set window."""
        if self.max_batch <= 1 or message.is_flush:
            # Flushes are GC ordering barriers: delaying one behind a window
            # would reorder it against the traffic it is meant to collect.
            self.stats["singles_sent"] += 1
            super()._dispatch(message)
            return
        key = message.dst
        buffer = self._buffers.setdefault(key, [])
        buffer.append(message)
        if len(buffer) >= self.max_batch:
            self._flush_window(key, reason="size")
        elif self._schedule is not None and key not in self._timers:
            self._timers[key] = self._schedule(
                self.max_delay_ms, lambda key=key: self._on_timer(key)
            )

    def _on_timer(self, key: FrozenSet[GroupId]) -> None:
        self._timers.pop(key, None)
        self._flush_window(key, reason="timer")

    def _flush_window(
        self, key: FrozenSet[GroupId], reason: str = "explicit"
    ) -> None:
        """Close one destination-set window and ship its contents."""
        timer = self._timers.pop(key, None)
        if timer is not None and hasattr(timer, "cancel"):
            timer.cancel()
        buffer = self._buffers.pop(key, None)
        if not buffer:
            return
        self.stats[f"flush_{reason}"] += 1
        if self._occupancy_hist is not None:
            self._occupancy_hist.observe(float(len(buffer)))
        if self._tracer is not None:
            now = self._clock()
            for member in buffer:
                self._tracer.record(
                    member.trace, STAGE_BATCH_FLUSH, now, self.client_id, reason
                )
        if len(buffer) == 1:
            # A window of one is shipped exactly as the unbatched client
            # would — same envelope, same route — so partially filled
            # windows never change protocol behaviour, only timing.
            self.stats["singles_sent"] += 1
            super()._dispatch(buffer[0])
            return
        self._batch_seq += 1
        carrier = Message.batch_of(
            buffer, batch_id=f"{self.client_id}-b{self._batch_seq}"
        )
        self.batch_log.append(
            (carrier.msg_id, tuple(m.msg_id for m in buffer))
        )
        self.stats["batches_sent"] += 1
        self.stats["messages_batched"] += len(buffer)
        request = FlexCastBatch(message=carrier)
        for entry in self._protocol.entry_groups(carrier):
            self._send_request(entry, request)

    # --------------------------------------------------------------- control
    def flush(self) -> None:
        """Close every open window immediately (e.g. before shutdown)."""
        for key in list(self._buffers):
            self._flush_window(key)

    @property
    def buffered(self) -> int:
        """Messages currently waiting in open windows."""
        return sum(len(buffer) for buffer in self._buffers.values())
