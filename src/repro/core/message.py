"""Messages and protocol envelopes.

Two layers of "message" exist in this codebase, mirroring the paper:

* :class:`Message` is the *application* multicast message — what a client
  hands to ``multicast(m)``: a unique id, a destination set of groups, and an
  opaque payload.  It is immutable; per-group protocol state about a message
  (received acks, notified groups, …) lives inside each protocol group, never
  on the shared message object.

* *Envelopes* are what protocol groups actually put on the wire: the paper's
  ``msg``, ``ack`` and ``notif`` messages (FlexCast), timestamp exchanges
  (Skeen), tree forwards (hierarchical), plus client requests and responses.
  Every envelope knows its serialized size (``size_bytes``), which feeds the
  traffic accounting behind Figure 8 and the overhead figures.

A third, optional shape sits between the two: a **batch**.  A
:class:`Message` whose :attr:`Message.members` tuple is non-empty is a
*batch carrier* — an ordering unit that stands in for N same-destination
application messages (built with :meth:`Message.batch_of`, submitted with a
:class:`FlexCastBatch` envelope).  The protocol orders the carrier exactly
like any other message — one pivot, one Skeen-timestamp convoy, one
msg/ack round, one history vertex — and the delivery gate fans it out into
per-member application deliveries (see DESIGN.md "batching the delivery
path").
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterable, Iterator, Optional, Tuple

from ..overlay.base import GroupId

# Serialized-size model (bytes).  These constants approximate a compact binary
# encoding: they only need to be *consistent* across protocols so that the
# relative traffic volumes (Figure 8) are meaningful.
_HEADER_BYTES = 40          # envelope kind, ids, addressing
_MSG_ID_BYTES = 16          # uuid-sized message identifier
_GROUP_ID_BYTES = 2         # group ids are small integers
_HISTORY_VERTEX_BYTES = _MSG_ID_BYTES + 4   # id + destination bitmap
_HISTORY_EDGE_BYTES = 2 * _MSG_ID_BYTES
_TIMESTAMP_BYTES = 8
_EPOCH_BYTES = 4            # overlay-configuration epoch carried by envelopes

_id_counter = itertools.count()


def fresh_message_id(prefix: str = "m") -> str:
    """Globally unique (per-process) message identifier."""
    return f"{prefix}{next(_id_counter)}"


def reset_message_ids() -> None:
    """Reset the id counter (tests only, to keep ids short and readable)."""
    global _id_counter
    _id_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class Message:
    """An application-level atomic multicast message.

    Attributes
    ----------
    msg_id:
        Globally unique identifier (``m.id`` in the paper).
    dst:
        Destination groups (``m.dst``).  ``|dst| == 1`` makes it a *local*
        message, ``|dst| > 1`` a *global* message.
    sender:
        Identifier of the client that multicast the message.
    payload:
        Opaque application payload; only its size matters to the protocols.
    payload_bytes:
        Declared payload size used for traffic accounting (gTPC-C transactions
        declare realistic sizes without materialising the bytes).
    is_flush:
        True for the distinguished garbage-collection messages (§4.3).
    trace_id:
        Optional observability correlation id (see :mod:`repro.obs`).
        ``None`` means "untraced"; the :attr:`trace` property falls back
        to ``msg_id`` so every message has a usable trace identity.  The
        id survives the wire (``runtime/codec.py``) so spans recorded on
        different nodes reassemble into one timeline.
    members:
        Empty for ordinary messages.  Non-empty makes this message a *batch
        carrier*: an ordering unit standing in for the member messages (all
        sharing this carrier's destination set).  The protocol orders the
        carrier; the delivery gate fans it out into per-member deliveries,
        so members — never the carrier — are what applications observe.
    """

    msg_id: str
    dst: FrozenSet[GroupId]
    sender: Any = "client"
    payload: Any = None
    payload_bytes: int = 64
    is_flush: bool = False
    trace_id: Optional[str] = None
    members: Tuple["Message", ...] = ()

    def __post_init__(self) -> None:
        # Message ids recur in every history vertex, edge, journal entry,
        # pending-set key and wire frame a deployment ever touches; interning
        # collapses the per-hop string copies a decode path would otherwise
        # mint and turns the protocol's id-equality checks into pointer
        # comparisons.
        object.__setattr__(self, "msg_id", sys.intern(self.msg_id))

    @staticmethod
    def create(
        destinations: Iterable[GroupId],
        sender: Any = "client",
        payload: Any = None,
        payload_bytes: int = 64,
        msg_id: Optional[str] = None,
        is_flush: bool = False,
        trace_id: Optional[str] = None,
    ) -> "Message":
        """Build a message with a fresh id and a normalized destination set."""
        dst = frozenset(destinations)
        if not dst:
            raise ValueError("a multicast message needs at least one destination")
        return Message(
            msg_id=msg_id if msg_id is not None else fresh_message_id(),
            dst=dst,
            sender=sender,
            payload=payload,
            payload_bytes=int(payload_bytes),
            is_flush=is_flush,
            trace_id=trace_id,
        )

    @staticmethod
    def batch_of(
        messages: Iterable["Message"],
        batch_id: Optional[str] = None,
    ) -> "Message":
        """Build a batch carrier standing in for ``messages``.

        Every member must share one destination set (the window key the
        batching client coalesces under), must not be a flush (flushes are
        GC ordering barriers and are never delayed or coalesced), and must
        not itself be a batch (no nesting: one fan-out level keeps the
        delivery gate and the oracles trivially per-message).
        """
        members = tuple(messages)
        if not members:
            raise ValueError("a batch needs at least one member message")
        dst = members[0].dst
        for member in members:
            if member.dst != dst:
                raise ValueError(
                    f"batch members must share one destination set: "
                    f"{sorted(member.dst)} != {sorted(dst)}"
                )
            if member.is_flush:
                raise ValueError(f"flush message {member.msg_id} cannot be batched")
            if member.members:
                raise ValueError(f"batch {member.msg_id} cannot be nested in a batch")
        return Message(
            msg_id=batch_id if batch_id is not None else fresh_message_id("b"),
            dst=dst,
            sender=members[0].sender,
            payload=None,
            payload_bytes=sum(m.payload_bytes for m in members),
            is_flush=False,
            members=members,
        )

    @property
    def is_local(self) -> bool:
        """True iff the message is addressed to a single group."""
        return len(self.dst) == 1

    @property
    def is_global(self) -> bool:
        """True iff the message is addressed to two or more groups."""
        return len(self.dst) > 1

    @property
    def is_batch(self) -> bool:
        """True iff this message is a batch carrier (see :meth:`batch_of`)."""
        return bool(self.members)

    @property
    def trace(self) -> str:
        """The message's trace identity: ``trace_id``, else ``msg_id``."""
        return self.trace_id if self.trace_id is not None else self.msg_id

    def size_bytes(self) -> int:
        """Serialized size of the bare message (no protocol metadata).

        A batch carrier ships its destination set once and each member as
        ``id + payload`` — the amortization the batching layer exists for.
        """
        base = _MSG_ID_BYTES + len(self.dst) * _GROUP_ID_BYTES
        if self.members:
            return base + sum(
                _MSG_ID_BYTES + member.payload_bytes for member in self.members
            )
        return base + self.payload_bytes

    def __repr__(self) -> str:  # compact, test-friendly
        if self.members:
            return f"<batch {self.msg_id} n={len(self.members)} dst={sorted(self.dst)}>"
        kind = "flush" if self.is_flush else "msg"
        return f"<{kind} {self.msg_id} dst={sorted(self.dst)}>"


# --------------------------------------------------------------------------- history delta
@dataclass(frozen=True, slots=True)
class HistorySnapshot:
    """A compact packed form of a history's entire live vertex+edge set.

    This is the cold-sync payload: when a descendant's diff watermark falls
    below the sender's retained journal (or the descendant has never been
    sent anything), the sender ships one prebuilt snapshot instead of
    re-materialising per-entry tuples of the whole live history on every
    call.  The shape is parallel arrays — ``ids[i]`` is addressed to
    ``dsts[i]``, and ``edges_a[j] -> edges_b[j]`` is a dependency edge —
    mirroring the PR-6 durable-snapshot schema, so one builder serves both
    the wire and the storage layer.

    ``version`` is the sender-side journal version the snapshot was taken
    at: journal entries past it are shipped as an ordinary suffix next to
    the snapshot inside the same :class:`HistoryDelta`, which is what makes
    a cached snapshot exact between garbage collections (the history only
    grows through the journal).
    """

    ids: Tuple[str, ...] = ()
    dsts: Tuple[FrozenSet[GroupId], ...] = ()
    edges_a: Tuple[str, ...] = ()
    edges_b: Tuple[str, ...] = ()
    last_delivered: Optional[str] = None
    version: int = 0

    @property
    def is_empty(self) -> bool:
        return not self.ids and not self.edges_a

    def __len__(self) -> int:
        return len(self.ids) + len(self.edges_a)

    def iter_vertices(self) -> Iterator[Tuple[str, FrozenSet[GroupId]]]:
        return zip(self.ids, self.dsts)

    def iter_edges(self) -> Iterator[Tuple[str, str]]:
        return zip(self.edges_a, self.edges_b)

    def size_bytes(self) -> int:
        return (
            len(self.ids) * _HISTORY_VERTEX_BYTES
            + len(self.edges_a) * _HISTORY_EDGE_BYTES
            + (_MSG_ID_BYTES if self.last_delivered else 0)
        )


@dataclass(frozen=True, slots=True)
class HistoryDelta:
    """The portion of a group's history shipped inside an envelope.

    FlexCast never sends its whole (ever-growing) history: ``diff-hst`` sends
    only the vertices and dependency edges the destination has not been sent
    yet (§4.3).  A delta is an immutable snapshot taken at send time, so the
    sender can keep mutating its own history safely.

    ``seq`` is the sender-side journal version this delta brings the receiver
    up to (the watermark contract in DESIGN.md).  It is observability
    metadata: receivers merge deltas purely by content, and the size model
    counts it as part of the envelope header, not the delta payload.

    A *cold* delta additionally carries a :class:`HistorySnapshot` — the
    sender's packed live history as of ``snapshot.version`` — with
    ``vertices``/``edges`` reduced to the journal suffix past it.  The
    logical content is ``snapshot ∪ suffix`` (:meth:`iter_vertices` /
    :meth:`iter_edges`); receivers bulk-install the snapshot and then apply
    the suffix, which is what makes the cold path O(affected) instead of a
    per-entry replay of the sender's whole history.
    """

    vertices: Tuple[Tuple[str, FrozenSet[GroupId]], ...] = ()
    edges: Tuple[Tuple[str, str], ...] = ()
    last_delivered: Optional[str] = None
    seq: Optional[int] = None
    snapshot: Optional[HistorySnapshot] = None

    @property
    def is_empty(self) -> bool:
        return (
            not self.vertices
            and not self.edges
            and (self.snapshot is None or self.snapshot.is_empty)
        )

    def iter_vertices(self) -> Iterator[Tuple[str, FrozenSet[GroupId]]]:
        """All shipped vertices: snapshot contents first, then the suffix."""
        if self.snapshot is not None:
            yield from self.snapshot.iter_vertices()
        yield from self.vertices

    def iter_edges(self) -> Iterator[Tuple[str, str]]:
        """All shipped edges: snapshot contents first, then the suffix."""
        if self.snapshot is not None:
            yield from self.snapshot.iter_edges()
        yield from self.edges

    def size_bytes(self) -> int:
        return (
            len(self.vertices) * _HISTORY_VERTEX_BYTES
            + len(self.edges) * _HISTORY_EDGE_BYTES
            + (_MSG_ID_BYTES if self.last_delivered else 0)
            + (self.snapshot.size_bytes() if self.snapshot is not None else 0)
        )

    def __len__(self) -> int:
        return (
            len(self.vertices)
            + len(self.edges)
            + (len(self.snapshot) if self.snapshot is not None else 0)
        )


EMPTY_DELTA = HistoryDelta()


# --------------------------------------------------------------------------- envelopes
@dataclass(frozen=True, slots=True)
class Envelope:
    """Base class for everything sent between nodes."""

    def size_bytes(self) -> int:  # pragma: no cover - overridden
        return _HEADER_BYTES


@dataclass(frozen=True, slots=True)
class ClientRequest(Envelope):
    """Client -> group: submit a multicast message to the protocol."""

    message: Message
    kind: str = field(default="request", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.message.size_bytes()


@dataclass(frozen=True, slots=True)
class FlexCastBatch(ClientRequest):
    """Client -> lca: a coalesced window of same-destination messages.

    The envelope's :attr:`message` is a batch *carrier*
    (:meth:`Message.batch_of`): one ordering unit standing in for N member
    messages that share a destination set.  Because a batch enters the
    protocol exactly where a client request does — at the lca of its
    destination set — this envelope *is* a :class:`ClientRequest` (the
    subclass only changes the wire ``kind`` and lets the traffic accounting
    attribute the batched payload bytes): every request-handling path
    (submission validation, reconfiguration parking/re-routing, idempotent
    re-submission) applies to batches with no further dispatch.  The
    delivery gate fans the carrier out into per-member deliveries, so the
    batch boundary is invisible to applications and to the checker.
    """

    kind: str = field(default="batch", init=False)


@dataclass(frozen=True, slots=True)
class ClientResponse(Envelope):
    """Group -> client: the group delivered the message."""

    msg_id: str
    group: GroupId
    kind: str = field(default="response", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + _MSG_ID_BYTES + _GROUP_ID_BYTES


@dataclass(frozen=True, slots=True)
class NodeHello:
    """Node -> server: register my network address before first use.

    Transport-level, **not** an :class:`Envelope`: it must never be ordered
    through a group's log — a receiving server registers the address in its
    address book and drops the frame.  The process-cluster runtime
    (:mod:`repro.runtime.proc`) uses it so clients spawned after the static
    address book was computed can still receive :class:`ClientResponse`
    frames.
    """

    node_id: str
    host: str
    port: int
    kind: str = field(default="node-hello", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + _MSG_ID_BYTES + 18


#: One piggybacked Skeen proposal: ``(proposing group, local timestamp)``.
TsProposal = Tuple[GroupId, int]
_TS_PROPOSAL_BYTES = _GROUP_ID_BYTES + _TIMESTAMP_BYTES


@dataclass(frozen=True, slots=True)
class FlexCastMsg(Envelope):
    """FlexCast ``msg``: lca -> other destinations, with a history delta."""

    message: Message
    history: HistoryDelta
    notified: FrozenSet[GroupId] = frozenset()
    #: Overlay-configuration epoch the sender was in (see repro.reconfig).
    epoch: int = 0
    #: Hybrid mode: Skeen proposals for ``message`` known to the sender,
    #: piggybacked so destinations converge on the final timestamp without
    #: waiting for every dedicated ``ts-propose`` envelope.
    ts_proposals: Tuple[TsProposal, ...] = ()
    kind: str = field(default="msg", init=False)

    def size_bytes(self) -> int:
        return (
            _HEADER_BYTES
            + _EPOCH_BYTES
            + self.message.size_bytes()
            + self.history.size_bytes()
            + len(self.notified) * _GROUP_ID_BYTES
            + len(self.ts_proposals) * _TS_PROPOSAL_BYTES
        )


@dataclass(frozen=True, slots=True)
class FlexCastAck(Envelope):
    """FlexCast ``ack``: a destination informs its descendants of its history."""

    message: Message
    history: HistoryDelta
    from_group: GroupId
    notified: FrozenSet[GroupId] = frozenset()
    #: Overlay-configuration epoch the sender was in (see repro.reconfig).
    epoch: int = 0
    #: Hybrid mode: Skeen proposals for ``message`` known to the sender.
    ts_proposals: Tuple[TsProposal, ...] = ()
    kind: str = field(default="ack", init=False)

    def size_bytes(self) -> int:
        return (
            _HEADER_BYTES
            + _EPOCH_BYTES
            + _MSG_ID_BYTES
            + _GROUP_ID_BYTES
            + self.history.size_bytes()
            + len(self.notified) * _GROUP_ID_BYTES
            + len(self.ts_proposals) * _TS_PROPOSAL_BYTES
        )


@dataclass(frozen=True, slots=True)
class FlexCastNotif(Envelope):
    """FlexCast ``notif``: ask a non-destination group to flush its dependencies."""

    message: Message
    history: HistoryDelta
    from_group: GroupId
    #: Overlay-configuration epoch the sender was in (see repro.reconfig).
    epoch: int = 0
    kind: str = field(default="notif", init=False)

    def size_bytes(self) -> int:
        return (
            _HEADER_BYTES
            + _EPOCH_BYTES
            + _MSG_ID_BYTES
            + _GROUP_ID_BYTES
            + self.history.size_bytes()
        )


@dataclass(frozen=True, slots=True)
class HistorySnapshotFrame(Envelope):
    """A group's cold-sync transfer: its packed live history as one frame.

    This is the explicit wire form of the snapshot-bearing delta the diff
    tracker already produces for far-behind descendants.  It exists so
    out-of-band catch-up paths — the asyncio runtime pushing state to a
    rebooted peer, :meth:`repro.smr.replica.ReplicatedGroup.restart_replica`
    ordering a bulk sync through the group's log — ship exactly the same
    O(affected) payload the msg/ack/notif envelopes do, instead of growing a
    second, per-entry transfer format.  Receivers merge it like any other
    delta (idempotent; forgotten ids are filtered), so duplicated or stale
    frames are harmless.
    """

    group: GroupId
    delta: HistoryDelta
    #: Overlay-configuration epoch the sender was in (observability only).
    epoch: int = 0
    kind: str = field(default="history-snapshot", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + _EPOCH_BYTES + _GROUP_ID_BYTES + self.delta.size_bytes()


@dataclass(frozen=True, slots=True)
class FlexCastTsPropose(Envelope):
    """Hybrid mode: one destination's Skeen proposal for a global message.

    Sent by a destination to every *other* destination of ``message`` on
    first contact (the lca proposes when the client submits; the others when
    the proposal or the ``msg`` envelope reaches them).  It carries the
    message's identity *and destination set* — not just its id — because a
    destination may hear a proposal *before* FlexCast's own ``msg`` envelope
    and must still be able to propose for the right destination set (Skeen's
    early-proposal path).  The payload is stripped by the sender: proposing
    never needs it, and the ``msg`` envelope remains the single payload
    carrier (see :data:`PAYLOAD_KINDS`).

    Only destinations of ``message`` exchange these, so genuineness is
    preserved.

    Timestamps are a property of the destination set, not of any overlay
    rank order, so the envelope is processed regardless of the epoch stamp
    (carried for observability only) and is neither bounced nor parked by
    the reconfiguration layer.
    """

    message: Message
    timestamp: int
    from_group: GroupId
    #: Overlay-configuration epoch the sender was in (observability only).
    epoch: int = 0
    kind: str = field(default="ts-propose", init=False)

    def size_bytes(self) -> int:
        return (
            _HEADER_BYTES
            + _EPOCH_BYTES
            + _MSG_ID_BYTES
            + len(self.message.dst) * _GROUP_ID_BYTES
            + _TIMESTAMP_BYTES
            + _GROUP_ID_BYTES
        )


# ------------------------------------------------- reconfiguration envelopes
@dataclass(frozen=True, slots=True)
class EpochPrepare(Envelope):
    """Coordinator -> group: stop admitting new client requests, start drain.

    The group parks client requests received from now on and keeps processing
    in-flight protocol envelopes of the current epoch until it quiesces.
    ``barrier_id`` pre-announces the epoch barrier: it is the *only* flush
    allowed through the closed intake (ordinary periodic GC flushes park like
    any other request, otherwise one could slip in after the drain and be
    delivered under two different epochs).
    """

    new_epoch: int
    reply_to: Any
    barrier_id: str = ""
    kind: str = field(default="epoch-prepare", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + _EPOCH_BYTES + 2 * _MSG_ID_BYTES


@dataclass(frozen=True, slots=True)
class EpochPrepareAck(Envelope):
    """Group -> coordinator: intake stopped for the old epoch."""

    new_epoch: int
    group: GroupId
    kind: str = field(default="epoch-prepare-ack", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + _EPOCH_BYTES + _GROUP_ID_BYTES


@dataclass(frozen=True, slots=True)
class QuiesceQuery(Envelope):
    """Coordinator -> group: report your drain state for ``round_id``."""

    new_epoch: int
    round_id: int
    barrier_id: str
    reply_to: Any
    kind: str = field(default="quiesce-query", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + _EPOCH_BYTES + 2 * _MSG_ID_BYTES + _TIMESTAMP_BYTES


@dataclass(frozen=True, slots=True)
class QuiesceReply(Envelope):
    """Group -> coordinator: local drain state.

    ``envelopes_sent`` / ``envelopes_received`` count group-to-group protocol
    envelopes (msg/ack/notif) only; the coordinator declares the old epoch
    drained when every group is locally quiescent, has delivered the barrier,
    and the global sent/received totals are equal and stable across two
    consecutive rounds (no envelope can still be in flight).
    """

    new_epoch: int
    round_id: int
    group: GroupId
    quiescent: bool
    barrier_delivered: bool
    envelopes_sent: int
    envelopes_received: int
    kind: str = field(default="quiesce-reply", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + _EPOCH_BYTES + _GROUP_ID_BYTES + 3 * _TIMESTAMP_BYTES


@dataclass(frozen=True, slots=True)
class EpochSwitch(Envelope):
    """Coordinator -> group: install the new overlay and enter ``new_epoch``."""

    new_epoch: int
    order: Tuple[GroupId, ...]
    reply_to: Any
    kind: str = field(default="epoch-switch", init=False)

    def size_bytes(self) -> int:
        return (
            _HEADER_BYTES
            + _EPOCH_BYTES
            + _MSG_ID_BYTES
            + len(self.order) * _GROUP_ID_BYTES
        )


@dataclass(frozen=True, slots=True)
class EpochSwitchAck(Envelope):
    """Group -> coordinator: switched to ``epoch`` and resumed intake."""

    epoch: int
    group: GroupId
    kind: str = field(default="epoch-switch-ack", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + _EPOCH_BYTES + _GROUP_ID_BYTES


@dataclass(frozen=True, slots=True)
class EpochBounce(Envelope):
    """Receiver -> sender of a stale-epoch envelope: re-route this message.

    Carries the application message so the (behind or racing) sender can
    re-submit it to the correct lca once it reaches ``epoch``.  Idempotent by
    construction: re-submission of an already-delivered message is ignored.
    """

    message: Message
    epoch: int
    from_group: GroupId
    kind: str = field(default="epoch-bounce", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + _EPOCH_BYTES + _GROUP_ID_BYTES + self.message.size_bytes()


@dataclass(frozen=True, slots=True)
class SkeenTimestamp(Envelope):
    """Skeen: a destination's local timestamp for a message."""

    msg_id: str
    timestamp: int
    from_group: GroupId
    kind: str = field(default="timestamp", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + _MSG_ID_BYTES + _TIMESTAMP_BYTES + _GROUP_ID_BYTES


@dataclass(frozen=True, slots=True)
class SkeenPropose(Envelope):
    """Skeen: the message as disseminated to every destination group."""

    message: Message
    kind: str = field(default="msg", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.message.size_bytes()


@dataclass(frozen=True, slots=True)
class TreeForward(Envelope):
    """Hierarchical: a message ordered by a group and pushed to a child."""

    message: Message
    sequence: int
    kind: str = field(default="msg", init=False)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.message.size_bytes() + _TIMESTAMP_BYTES


#: Envelope kinds that carry the application payload.  Communication overhead
#: (Figures 1 and 9) is defined over payload messages only.  ``batch`` is the
#: coalesced form of ``request``: one envelope carrying N member payloads.
PAYLOAD_KINDS = frozenset({"request", "msg", "batch"})
