"""Flush-based garbage collection (paper §4.3).

FlexCast histories grow with every delivered message.  The paper prunes them
with a *flush* mechanism: a distinguished process periodically multicasts a
``flush`` message addressed to **all** groups.  Once a group delivers the
flush it knows that every message ordered before it has been resolved wherever
it mattered, so those history entries can be forgotten.

:class:`FlushCoordinator` plays the distinguished process.  It is just another
client of the protocol (it submits ordinary multicast messages flagged
``is_flush``); the pruning itself happens inside
:meth:`repro.core.flexcast.FlexCastGroup._garbage_collect`.

Beyond the history vertices themselves, a flush also bounds the *incremental*
bookkeeping (DESIGN.md): the per-group destination index sheds the pruned
ids, the diff tracker's per-descendant watermarks stay valid as-is, and the
history's change journal is compacted up to the lowest watermark — so every
index the hot path relies on stays O(live history), making the flush interval
the single knob that trades memory for (tiny) extra protocol traffic.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..overlay.base import GroupId
from ..sim.events import EventLoop, PeriodicTimer
from .message import Message


class FlushCoordinator:
    """Periodically injects flush messages into a FlexCast deployment.

    Parameters
    ----------
    loop:
        Simulation event loop used for the periodic timer.
    groups:
        All group ids in the deployment (flushes are addressed to every group).
    submit:
        Callback that routes a message into the protocol exactly like a client
        would (the experiment runner wires this to the lca of the flush).
    interval_ms:
        Time between flushes; a lower interval keeps histories smaller at the
        cost of extra (tiny) protocol traffic.
    """

    def __init__(
        self,
        loop: EventLoop,
        groups: List[GroupId],
        submit: Callable[[Message], None],
        interval_ms: float = 2_000.0,
        sender_id: str = "flush-coordinator",
    ) -> None:
        if not groups:
            raise ValueError("flush coordinator needs at least one group")
        self._loop = loop
        self._groups = list(groups)
        self._submit = submit
        self._sender_id = sender_id
        self.flushes_sent = 0
        self._timer: Optional[PeriodicTimer] = None
        self._interval = float(interval_ms)

    def start(self) -> None:
        """Begin emitting flush messages every ``interval_ms``."""
        if self._timer is not None:
            return
        self._timer = PeriodicTimer(self._loop, self._interval, self.flush_now)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def flush_now(self) -> None:
        """Multicast a single flush message to all groups immediately."""
        flush = Message.create(
            destinations=self._groups,
            sender=self._sender_id,
            payload="flush",
            payload_bytes=8,
            is_flush=True,
        )
        self.flushes_sent += 1
        self._submit(flush)

    @property
    def running(self) -> bool:
        return self._timer is not None and self._timer.active
